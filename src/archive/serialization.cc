#include "archive/serialization.h"

#include <cstdio>
#include <cstring>

#include "common/strings.h"

namespace exstream {

namespace {

constexpr uint32_t kMagic = 0x45585331;  // "EXS1"

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

template <typename T>
void PutPod(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  Result<T> Get() {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::IOError("truncated event buffer");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  Result<std::string> GetBytes(size_t n) {
    if (pos_ + n > data_.size()) return Status::IOError("truncated string payload");
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeEvents(const std::vector<Event>& events) {
  std::string out;
  PutPod<uint32_t>(&out, kMagic);
  PutPod<uint32_t>(&out, static_cast<uint32_t>(events.size()));
  for (const Event& e : events) {
    PutPod<int64_t>(&out, e.ts);
    PutPod<uint32_t>(&out, e.type);
    PutPod<uint16_t>(&out, static_cast<uint16_t>(e.values.size()));
    for (const Value& v : e.values) {
      PutU8(&out, static_cast<uint8_t>(v.type()));
      switch (v.type()) {
        case ValueType::kInt64:
          PutPod<int64_t>(&out, v.AsInt64());
          break;
        case ValueType::kDouble:
          PutPod<double>(&out, v.AsDouble());
          break;
        case ValueType::kString: {
          const std::string& s = v.AsString();
          PutPod<uint32_t>(&out, static_cast<uint32_t>(s.size()));
          out.append(s);
          break;
        }
      }
    }
  }
  return out;
}

Result<std::vector<Event>> DeserializeEvents(std::string_view data) {
  Reader r(data);
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t magic, r.Get<uint32_t>());
  if (magic != kMagic) return Status::IOError("bad event buffer magic");
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t count, r.Get<uint32_t>());
  std::vector<Event> events;
  events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Event e;
    EXSTREAM_ASSIGN_OR_RETURN(e.ts, r.Get<int64_t>());
    EXSTREAM_ASSIGN_OR_RETURN(e.type, r.Get<uint32_t>());
    EXSTREAM_ASSIGN_OR_RETURN(const uint16_t nvals, r.Get<uint16_t>());
    e.values.reserve(nvals);
    for (uint16_t j = 0; j < nvals; ++j) {
      EXSTREAM_ASSIGN_OR_RETURN(const uint8_t tag, r.Get<uint8_t>());
      switch (static_cast<ValueType>(tag)) {
        case ValueType::kInt64: {
          EXSTREAM_ASSIGN_OR_RETURN(const int64_t v, r.Get<int64_t>());
          e.values.emplace_back(v);
          break;
        }
        case ValueType::kDouble: {
          EXSTREAM_ASSIGN_OR_RETURN(const double v, r.Get<double>());
          e.values.emplace_back(v);
          break;
        }
        case ValueType::kString: {
          EXSTREAM_ASSIGN_OR_RETURN(const uint32_t len, r.Get<uint32_t>());
          EXSTREAM_ASSIGN_OR_RETURN(std::string s, r.GetBytes(len));
          e.values.emplace_back(std::move(s));
          break;
        }
        default:
          return Status::IOError(StrFormat("bad value tag %u", tag));
      }
    }
    events.push_back(std::move(e));
  }
  if (!r.AtEnd()) return Status::IOError("trailing bytes in event buffer");
  return events;
}

Status WriteEventsFile(const std::string& path, const std::vector<Event>& events) {
  const std::string data = SerializeEvents(events);
  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp);
  const size_t written = fwrite(data.data(), 1, data.size(), f);
  fclose(f);
  if (written != data.size()) {
    remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<std::vector<Event>> ReadEventsFile(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  fclose(f);
  return DeserializeEvents(data);
}

}  // namespace exstream
