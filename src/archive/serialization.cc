#include "archive/serialization.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>

#include <unistd.h>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/strings.h"

namespace exstream {

namespace {

constexpr uint32_t kMagicV1 = 0x45585331;  // "EXS1"
constexpr uint32_t kMagicV2 = 0x45585332;  // "EXS2"

// Smallest possible event record: i64 ts + u32 type + u16 value count.
constexpr size_t kMinEventBytes = sizeof(int64_t) + sizeof(uint32_t) + sizeof(uint16_t);

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

template <typename T>
void PutPod(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  Result<T> Get() {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::Truncated(
          StrFormat("event buffer ends at offset %zu (need %zu more bytes, %zu left)",
                    pos_, sizeof(T), data_.size() - pos_));
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  Result<std::string> GetBytes(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Truncated(
          StrFormat("string payload at offset %zu needs %zu bytes, %zu left", pos_,
                    n, data_.size() - pos_));
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// Parses the per-event payload shared by both formats. `r` is positioned at
// the first event record.
Result<std::vector<Event>> ParseEventPayload(Reader* r, uint32_t count) {
  // A corrupt count must not drive a multi-GB reserve: every event occupies
  // at least kMinEventBytes, so a count the remaining bytes cannot hold is
  // corruption, detected before any allocation.
  if (static_cast<uint64_t>(count) * kMinEventBytes > r->remaining()) {
    return Status::Corruption(
        StrFormat("header count %u needs at least %llu bytes but %zu remain at offset %zu",
                  count, static_cast<unsigned long long>(count) * kMinEventBytes,
                  r->remaining(), r->pos()));
  }
  std::vector<Event> events;
  events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Event e;
    EXSTREAM_ASSIGN_OR_RETURN(e.ts, r->Get<int64_t>());
    EXSTREAM_ASSIGN_OR_RETURN(e.type, r->Get<uint32_t>());
    EXSTREAM_ASSIGN_OR_RETURN(const uint16_t nvals, r->Get<uint16_t>());
    e.values.reserve(nvals);
    for (uint16_t j = 0; j < nvals; ++j) {
      EXSTREAM_ASSIGN_OR_RETURN(const uint8_t tag, r->Get<uint8_t>());
      switch (static_cast<ValueType>(tag)) {
        case ValueType::kInt64: {
          EXSTREAM_ASSIGN_OR_RETURN(const int64_t v, r->Get<int64_t>());
          e.values.emplace_back(v);
          break;
        }
        case ValueType::kDouble: {
          EXSTREAM_ASSIGN_OR_RETURN(const double v, r->Get<double>());
          e.values.emplace_back(v);
          break;
        }
        case ValueType::kString: {
          EXSTREAM_ASSIGN_OR_RETURN(const uint32_t len, r->Get<uint32_t>());
          EXSTREAM_ASSIGN_OR_RETURN(std::string s, r->GetBytes(len));
          e.values.emplace_back(std::move(s));
          break;
        }
        default:
          return Status::Corruption(
              StrFormat("bad value tag %u at offset %zu", tag, r->pos() - 1));
      }
    }
    events.push_back(std::move(e));
  }
  if (!r->AtEnd()) {
    return Status::Corruption(
        StrFormat("%zu trailing bytes after %u events at offset %zu", r->remaining(),
                  count, r->pos()));
  }
  return events;
}

// Prefixes a (non-OK) status message with the file path, keeping the code.
Status AnnotateWithPath(const Status& st, const std::string& path) {
  return Status(st.code(), path + ": " + st.message());
}

void ApplyInjectedDelay(const FaultPlan& plan) {
  std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
}

}  // namespace

std::string SerializeEvents(const std::vector<Event>& events, SpillFormat format) {
  std::string out;
  PutPod<uint32_t>(&out, format == SpillFormat::kV2 ? kMagicV2 : kMagicV1);
  PutPod<uint32_t>(&out, static_cast<uint32_t>(events.size()));
  size_t crc_pos = 0;
  if (format == SpillFormat::kV2) {
    crc_pos = out.size();
    PutPod<uint32_t>(&out, 0);  // checksum placeholder, patched below
  }
  const size_t payload_pos = out.size();
  for (const Event& e : events) {
    PutPod<int64_t>(&out, e.ts);
    PutPod<uint32_t>(&out, e.type);
    PutPod<uint16_t>(&out, static_cast<uint16_t>(e.values.size()));
    for (const Value& v : e.values) {
      PutU8(&out, static_cast<uint8_t>(v.type()));
      switch (v.type()) {
        case ValueType::kInt64:
          PutPod<int64_t>(&out, v.AsInt64());
          break;
        case ValueType::kDouble:
          PutPod<double>(&out, v.AsDouble());
          break;
        case ValueType::kString: {
          const std::string& s = v.AsString();
          PutPod<uint32_t>(&out, static_cast<uint32_t>(s.size()));
          out.append(s);
          break;
        }
      }
    }
  }
  if (format == SpillFormat::kV2) {
    const uint32_t crc = Crc32(out.data() + payload_pos, out.size() - payload_pos);
    std::memcpy(&out[crc_pos], &crc, sizeof(crc));
  }
  return out;
}

Result<std::vector<Event>> DeserializeEvents(std::string_view data) {
  Reader r(data);
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t magic, r.Get<uint32_t>());
  if (magic != kMagicV1 && magic != kMagicV2) {
    return Status::Corruption(
        StrFormat("bad event buffer magic 0x%08x at offset 0", magic));
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t count, r.Get<uint32_t>());
  if (magic == kMagicV2) {
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t stored_crc, r.Get<uint32_t>());
    const uint32_t computed =
        Crc32(data.data() + r.pos(), data.size() - r.pos());
    if (computed != stored_crc) {
      return Status::Corruption(
          StrFormat("payload checksum mismatch: stored 0x%08x, computed 0x%08x "
                    "over %zu bytes at offset %zu",
                    stored_crc, computed, data.size() - r.pos(), r.pos()));
    }
  }
  return ParseEventPayload(&r, count);
}

Status WriteEventsFile(const std::string& path, const std::vector<Event>& events,
                       SpillFormat format) {
  std::string data = SerializeEvents(events, format);
  size_t write_bytes = data.size();

  if (auto fault = FaultInjector::Global().Intercept(FaultOp::kWrite, path)) {
    switch (fault->mode) {
      case FaultMode::kFailOpen:
        return Status::IOError("injected open failure writing " + path);
      case FaultMode::kNoSpace:
        return Status::IOError("injected ENOSPC writing " + path);
      case FaultMode::kTruncate:
        // Simulates a torn write that still reached the final name (e.g.
        // post-rename media failure): only a prefix lands on disk.
        write_bytes = std::min(write_bytes, fault->truncate_to);
        break;
      case FaultMode::kCorruptBytes: {
        const size_t off = fault->corrupt_offset == SIZE_MAX
                               ? data.size() / 2
                               : std::min(fault->corrupt_offset, data.size() - 1);
        if (!data.empty()) data[off] = static_cast<char>(data[off] ^ 0x5A);
        break;
      }
      case FaultMode::kDelay:
        ApplyInjectedDelay(*fault);
        break;
    }
  }

  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp);
  const size_t written = fwrite(data.data(), 1, write_bytes, f);
  if (written != write_bytes) {
    fclose(f);
    remove(tmp.c_str());
    return Status::IOError(StrFormat("short write to %s (%zu of %zu bytes)",
                                     tmp.c_str(), written, write_bytes));
  }
  // Flush user-space buffers and force the data to the device before the
  // rename publishes the file: a crash can lose the spill, never expose a
  // half-written one under its final name.
  if (fflush(f) != 0 || fsync(fileno(f)) != 0) {
    fclose(f);
    remove(tmp.c_str());
    return Status::IOError("cannot fsync " + tmp);
  }
  fclose(f);
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<std::vector<Event>> ReadEventsFile(const std::string& path) {
  std::optional<FaultPlan> fault = FaultInjector::Global().Intercept(FaultOp::kRead, path);
  if (fault.has_value()) {
    if (fault->mode == FaultMode::kFailOpen) {
      return Status::IOError("injected open failure reading " + path);
    }
    if (fault->mode == FaultMode::kDelay) ApplyInjectedDelay(*fault);
  }

  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  fclose(f);

  if (fault.has_value()) {
    if (fault->mode == FaultMode::kTruncate) {
      data.resize(std::min(data.size(), fault->truncate_to));
    } else if (fault->mode == FaultMode::kCorruptBytes && !data.empty()) {
      const size_t off = fault->corrupt_offset == SIZE_MAX
                             ? data.size() / 2
                             : std::min(fault->corrupt_offset, data.size() - 1);
      data[off] = static_cast<char>(data[off] ^ 0x5A);
    }
  }

  auto events = DeserializeEvents(data);
  if (!events.ok()) return AnnotateWithPath(events.status(), path);
  return events;
}

}  // namespace exstream
