#include "archive/columns.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace exstream {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

std::pair<size_t, size_t> AttributeColumn::DenseOffsetsAt(size_t row) const {
  size_t int_off = 0;
  size_t str_off = 0;
  for (size_t i = 0; i < row; ++i) {
    if (tags[i] == static_cast<uint8_t>(ValueType::kInt64)) {
      ++int_off;
    } else if (tags[i] == static_cast<uint8_t>(ValueType::kString)) {
      ++str_off;
    }
  }
  return {int_off, str_off};
}

ChunkColumns::ChunkColumns(EventTypeId type, const EventSchema* schema)
    : type_(type) {
  if (schema == nullptr) return;
  attrs_.resize(schema->num_attributes());
  dict_index_.resize(attrs_.size());
  for (size_t i = 0; i < attrs_.size(); ++i) {
    attrs_[i].declared = schema->attributes()[i].type;
  }
}

uint32_t ChunkColumns::InternString(size_t col, const std::string& s) {
  if (dict_index_.size() < attrs_.size()) dict_index_.resize(attrs_.size());
  auto& index = dict_index_[col];
  auto [it, inserted] =
      index.emplace(s, static_cast<uint32_t>(attrs_[col].dict.size()));
  if (inserted) attrs_[col].dict.push_back(s);
  return it->second;
}

void ChunkColumns::AppendEvent(const Event& event) {
  const size_t prior_rows = ts_.size();
  if (event.values.size() > attrs_.size()) {
    // A wider event than any seen so far: add columns, backfilling every
    // earlier row as missing.
    attrs_.resize(event.values.size());
    for (AttributeColumn& col : attrs_) {
      if (col.tags.size() < prior_rows) {
        col.tags.resize(prior_rows, kMissingValueTag);
        col.nums.resize(prior_rows, kNaN);
      }
    }
  }
  ts_.push_back(event.ts);
  for (size_t j = 0; j < attrs_.size(); ++j) {
    AttributeColumn& col = attrs_[j];
    if (j >= event.values.size()) {
      col.tags.push_back(kMissingValueTag);
      col.nums.push_back(kNaN);
      continue;
    }
    const Value& v = event.values[j];
    col.tags.push_back(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kInt64:
        col.ints.push_back(v.AsInt64());
        col.nums.push_back(v.AsDouble());
        break;
      case ValueType::kDouble:
        col.nums.push_back(v.AsDouble());
        break;
      case ValueType::kString:
        col.str_ids.push_back(InternString(j, v.AsString()));
        col.nums.push_back(kNaN);
        break;
    }
  }
}

void ChunkColumns::Reserve(size_t n) {
  ts_.reserve(n);
  for (AttributeColumn& col : attrs_) {
    col.tags.reserve(n);
    col.nums.reserve(n);
  }
}

void ChunkColumns::SealStorage() {
  dict_index_.clear();
  dict_index_.shrink_to_fit();
  ts_.shrink_to_fit();
  for (AttributeColumn& col : attrs_) {
    col.tags.shrink_to_fit();
    col.nums.shrink_to_fit();
    col.ints.shrink_to_fit();
    col.str_ids.shrink_to_fit();
    col.dict.shrink_to_fit();
  }
}

std::pair<size_t, size_t> ChunkColumns::RowRange(const TimeInterval& interval) const {
  const auto lo = std::lower_bound(ts_.begin(), ts_.end(), interval.lower);
  const auto hi = std::upper_bound(lo, ts_.end(), interval.upper);
  return {static_cast<size_t>(lo - ts_.begin()),
          static_cast<size_t>(hi - ts_.begin())};
}

Event ChunkColumns::MaterializeRow(size_t i, size_t* int_off, size_t* str_off) const {
  Event e;
  e.type = type_;
  e.ts = ts_[i];
  // Missing tags are always a row suffix (events carry value prefixes), so
  // the first missing column ends the row's values.
  size_t nvals = 0;
  while (nvals < attrs_.size() && attrs_[nvals].tags[i] != kMissingValueTag) {
    ++nvals;
  }
  e.values.reserve(nvals);
  for (size_t j = 0; j < nvals; ++j) {
    const AttributeColumn& col = attrs_[j];
    switch (static_cast<ValueType>(col.tags[i])) {
      case ValueType::kInt64:
        e.values.emplace_back(col.ints[int_off[j]++]);
        break;
      case ValueType::kDouble:
        e.values.emplace_back(col.nums[i]);
        break;
      case ValueType::kString:
        e.values.emplace_back(col.dict[col.str_ids[str_off[j]++]]);
        break;
    }
  }
  return e;
}

void ChunkColumns::MaterializeRows(size_t lo, size_t hi,
                                   std::vector<Event>* out) const {
  if (lo >= hi) return;
  // Dense cursors per column, positioned at row `lo` once, then advanced
  // row by row.
  std::vector<size_t> int_off(attrs_.size(), 0);
  std::vector<size_t> str_off(attrs_.size(), 0);
  for (size_t j = 0; j < attrs_.size(); ++j) {
    const auto [io, so] = attrs_[j].DenseOffsetsAt(lo);
    int_off[j] = io;
    str_off[j] = so;
  }
  out->reserve(out->size() + (hi - lo));
  for (size_t i = lo; i < hi; ++i) {
    out->push_back(MaterializeRow(i, int_off.data(), str_off.data()));
  }
}

ChunkColumns ChunkColumns::Slice(size_t lo, size_t hi) const {
  ChunkColumns out;
  out.type_ = type_;
  if (lo >= hi) return out;
  out.ts_.assign(ts_.begin() + lo, ts_.begin() + hi);
  out.attrs_.resize(attrs_.size());
  for (size_t j = 0; j < attrs_.size(); ++j) {
    const AttributeColumn& src = attrs_[j];
    AttributeColumn& dst = out.attrs_[j];
    dst.declared = src.declared;
    dst.tags.assign(src.tags.begin() + lo, src.tags.begin() + hi);
    dst.nums.assign(src.nums.begin() + lo, src.nums.begin() + hi);
    const auto [int_lo, str_lo] = src.DenseOffsetsAt(lo);
    const auto [int_hi, str_hi] = src.DenseOffsetsAt(hi);
    dst.ints.assign(src.ints.begin() + int_lo, src.ints.begin() + int_hi);
    dst.str_ids.assign(src.str_ids.begin() + str_lo, src.str_ids.begin() + str_hi);
    dst.dict = src.dict;  // ids stay valid against the full dictionary
  }
  return out;
}

Result<ChunkColumns> ChunkColumns::FromRows(const std::vector<Event>& events) {
  ChunkColumns out;
  out.Reserve(events.size());
  for (const Event& e : events) {
    if (out.ts_.empty()) {
      out.type_ = e.type;
    } else if (e.type != out.type_) {
      return Status::Corruption(
          StrFormat("mixed event types %u and %u in columnar chunk load",
                    out.type_, e.type));
    }
    out.AppendEvent(e);
  }
  return out;
}

size_t ScanView::rows() const {
  size_t n = 0;
  for (const Segment& seg : segments) n += seg.size();
  return n;
}

void ScanView::MaterializeEvents(std::vector<Event>* out) const {
  for (const Segment& seg : segments) {
    seg.columns->MaterializeRows(seg.begin, seg.end, out);
  }
}

}  // namespace exstream
