// Recursive-descent parser for SASE queries (Fig. 3 syntax).

#pragma once

#include <string>

#include "common/result.h"
#include "query/ast.h"

namespace exstream {

/// \brief Parses the Fig. 3 concrete syntax into a Query.
///
/// Accepted grammar (keywords case-insensitive):
///
///   query      := "PATTERN" "SEQ" "(" component ("," component)* ")"
///                 ["WHERE" where_item ("AND" where_item)*]
///                 ["WITHIN" integer]
///                 ["RETURN" "(" return_item ("," return_item)* ")"]
///   component  := TypeName ["+"] Var ["[" "]"]
///   where_item := "[" AttrName "]"                      -- partition attribute
///               | attr_ref op (number | string | attr_ref)
///   attr_ref   := Var ["[" ("i" | number ".." "i") "]"] "." AttrName
///   return_item:= attr_ref | agg "(" attr_ref ")"
///   agg        := "sum" | "count" | "avg" | "min" | "max"
///
/// \param text the query text
/// \param name the query id recorded in Query::name
Result<Query> ParseQuery(std::string_view text, std::string name = "");

}  // namespace exstream
