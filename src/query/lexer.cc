#include "query/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace exstream {

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenKind kind, std::string text, size_t off) {
    tokens.push_back(Token{kind, std::move(text), off});
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdent, std::string(input.substr(i, j - i)), start);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i + 1;
      bool saw_dot = false;
      while (j < n) {
        if (std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        } else if (input[j] == '.' && !saw_dot && j + 1 < n &&
                   std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
          // A dot is part of the number only when followed by a digit and we
          // have not consumed one yet; "1..i" stays three tokens.
          saw_dot = true;
          ++j;
        } else {
          break;
        }
      }
      push(TokenKind::kNumber, std::string(input.substr(i, j - i)), start);
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      size_t j = i + 1;
      while (j < n && input[j] != c) ++j;
      if (j >= n) {
        return Status::ParseError(StrFormat("unterminated string at offset %zu", start));
      }
      push(TokenKind::kString, std::string(input.substr(i + 1, j - i - 1)), start);
      i = j + 1;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, ")", start);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, "[", start);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, "]", start);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        continue;
      case '+':
        push(TokenKind::kPlus, "+", start);
        ++i;
        continue;
      case '.':
        if (i + 1 < n && input[i + 1] == '.') {
          push(TokenKind::kDotDot, "..", start);
          i += 2;
        } else {
          push(TokenKind::kDot, ".", start);
          ++i;
        }
        continue;
      case '>':
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kOp, std::string(input.substr(i, 2)), start);
          i += 2;
        } else {
          push(TokenKind::kOp, std::string(1, c), start);
          ++i;
        }
        continue;
      case '=':
        push(TokenKind::kOp, "=", start);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kOp, "!=", start);
          i += 2;
        } else {
          push(TokenKind::kBang, "!", start);
          ++i;
        }
        continue;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  push(TokenKind::kEnd, "", n);
  return tokens;
}

}  // namespace exstream
