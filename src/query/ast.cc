#include "query/ast.h"

#include "common/strings.h"

namespace exstream {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

bool EvalCompare(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

std::string AttrRef::ToString() const {
  switch (index) {
    case KleeneIndex::kNone:
      return variable + "." + attribute;
    case KleeneIndex::kCurrent:
      return variable + "[i]." + attribute;
    case KleeneIndex::kRange:
      return variable + "[1..i]." + attribute;
  }
  return {};
}

std::string QueryPredicate::ToString() const {
  std::string rhs = rhs_constant.has_value() ? rhs_constant->ToString()
                                             : rhs_attr->ToString();
  return lhs.ToString() + " " + std::string(CompareOpToString(op)) + " " + rhs;
}

std::string_view ReturnAggToString(ReturnAgg agg) {
  switch (agg) {
    case ReturnAgg::kNone:
      return "";
    case ReturnAgg::kSum:
      return "sum";
    case ReturnAgg::kCount:
      return "count";
    case ReturnAgg::kAvg:
      return "avg";
    case ReturnAgg::kMin:
      return "min";
    case ReturnAgg::kMax:
      return "max";
  }
  return "";
}

std::string ReturnItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (agg == ReturnAgg::kNone) return ref.attribute;
  return std::string(ReturnAggToString(agg)) + "_" + ref.attribute;
}

std::string ReturnItem::ToString() const {
  if (agg == ReturnAgg::kNone) return ref.ToString();
  return std::string(ReturnAggToString(agg)) + "(" + ref.ToString() + ")";
}

std::string QueryComponent::ToString() const {
  return std::string(negated ? "!" : "") + event_type + (kleene ? "+ " : " ") +
         variable + (kleene ? "[]" : "");
}

std::optional<size_t> Query::KleeneComponentIndex() const {
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i].kleene) return i;
  }
  return std::nullopt;
}

std::string Query::ToString() const {
  std::vector<std::string> comps;
  comps.reserve(components.size());
  for (const auto& c : components) comps.push_back(c.ToString());

  std::string out = "PATTERN SEQ(" + Join(comps, ", ") + ")";
  std::vector<std::string> where;
  if (!partition_attribute.empty()) where.push_back("[" + partition_attribute + "]");
  for (const auto& p : predicates) where.push_back(p.ToString());
  if (!where.empty()) out += "\nWHERE " + Join(where, " AND ");
  if (within > 0) out += StrFormat("\nWITHIN %lld", static_cast<long long>(within));
  if (!return_items.empty()) {
    std::vector<std::string> rets;
    rets.reserve(return_items.size());
    for (const auto& r : return_items) rets.push_back(r.ToString());
    out += "\nRETURN (" + Join(rets, ", ") + ")";
  }
  return out;
}

}  // namespace exstream
