#include "query/parser.h"

#include <cstdlib>

#include "common/strings.h"
#include "query/lexer.h"

namespace exstream {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse(std::string name) {
    Query q;
    q.name = std::move(name);
    EXSTREAM_RETURN_NOT_OK(ExpectKeyword("PATTERN"));
    EXSTREAM_RETURN_NOT_OK(ExpectKeyword("SEQ"));
    EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    for (;;) {
      EXSTREAM_ASSIGN_OR_RETURN(QueryComponent comp, ParseComponent());
      q.components.push_back(std::move(comp));
      if (!Accept(TokenKind::kComma)) break;
    }
    EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kRParen));

    if (AcceptKeyword("WHERE")) {
      for (;;) {
        if (Accept(TokenKind::kLBracket)) {
          EXSTREAM_ASSIGN_OR_RETURN(const std::string attr, ExpectIdent());
          EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
          if (!q.partition_attribute.empty()) {
            return Error("duplicate partition attribute");
          }
          q.partition_attribute = attr;
        } else {
          EXSTREAM_ASSIGN_OR_RETURN(QueryPredicate pred, ParsePredicate());
          q.predicates.push_back(std::move(pred));
        }
        if (!AcceptKeyword("AND")) break;
      }
    }

    if (AcceptKeyword("WITHIN")) {
      if (Cur().kind != TokenKind::kNumber ||
          Cur().text.find('.') != std::string::npos) {
        return Error("WITHIN expects an integer duration");
      }
      q.within = static_cast<Timestamp>(strtoll(Cur().text.c_str(), nullptr, 10));
      ++pos_;
      if (q.within <= 0) return Error("WITHIN duration must be positive");
    }

    if (AcceptKeyword("RETURN")) {
      EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      for (;;) {
        EXSTREAM_ASSIGN_OR_RETURN(ReturnItem item, ParseReturnItem());
        q.return_items.push_back(std::move(item));
        if (!Accept(TokenKind::kComma)) break;
      }
      EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      // Trailing "[]" after RETURN(...) in the paper's syntax is optional
      // decoration marking a streamed result; accept and ignore it.
      if (Accept(TokenKind::kLBracket)) {
        EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
      }
    }

    EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kEnd));

    // Semantic checks that need no schema: unique variables, single kleene.
    size_t kleene_count = 0;
    for (const auto& c : q.components) {
      if (c.kleene) ++kleene_count;
      size_t uses = 0;
      for (const auto& c2 : q.components) {
        if (c2.variable == c.variable) ++uses;
      }
      if (uses > 1) return Error("duplicate pattern variable '" + c.variable + "'");
    }
    if (kleene_count > 1) {
      return Error("at most one kleene component is supported");
    }
    if (q.components.front().negated || q.components.back().negated) {
      return Error("a negated component needs surrounding positive components");
    }
    return q;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }

  bool Accept(TokenKind kind) {
    if (Cur().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind kind) {
    if (!Accept(kind)) {
      return Status::ParseError(StrFormat("unexpected token '%s' at offset %zu",
                                          Cur().text.c_str(), Cur().offset));
    }
    return Status::OK();
  }

  bool AcceptKeyword(std::string_view kw) {
    if (Cur().kind == TokenKind::kIdent && EqualsIgnoreCase(Cur().text, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(StrFormat("expected '%.*s', got '%s' at offset %zu",
                                          static_cast<int>(kw.size()), kw.data(),
                                          Cur().text.c_str(), Cur().offset));
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Cur().kind != TokenKind::kIdent) {
      return Status::ParseError(StrFormat("expected identifier at offset %zu, got '%s'",
                                          Cur().offset, Cur().text.c_str()));
    }
    std::string s = Cur().text;
    ++pos_;
    return s;
  }

  Status Error(std::string msg) const {
    return Status::ParseError(StrFormat("%s (at offset %zu)", msg.c_str(), Cur().offset));
  }

  Result<QueryComponent> ParseComponent() {
    QueryComponent comp;
    comp.negated = Accept(TokenKind::kBang);
    EXSTREAM_ASSIGN_OR_RETURN(comp.event_type, ExpectIdent());
    comp.kleene = Accept(TokenKind::kPlus);
    EXSTREAM_ASSIGN_OR_RETURN(comp.variable, ExpectIdent());
    if (Accept(TokenKind::kLBracket)) {
      EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
      comp.kleene = true;
    }
    if (comp.negated && comp.kleene) {
      return Error("a component cannot be both negated and kleene");
    }
    return comp;
  }

  Result<AttrRef> ParseAttrRef() {
    AttrRef ref;
    EXSTREAM_ASSIGN_OR_RETURN(ref.variable, ExpectIdent());
    if (Accept(TokenKind::kLBracket)) {
      if (Cur().kind == TokenKind::kNumber) {
        // b[1..i].attr
        ++pos_;
        EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kDotDot));
        EXSTREAM_ASSIGN_OR_RETURN(const std::string idx, ExpectIdent());
        if (!EqualsIgnoreCase(idx, "i")) return Error("expected 'i' in kleene range");
        ref.index = KleeneIndex::kRange;
      } else {
        EXSTREAM_ASSIGN_OR_RETURN(const std::string idx, ExpectIdent());
        if (!EqualsIgnoreCase(idx, "i")) return Error("expected 'i' kleene index");
        ref.index = KleeneIndex::kCurrent;
      }
      EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
    }
    EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kDot));
    EXSTREAM_ASSIGN_OR_RETURN(ref.attribute, ExpectIdent());
    return ref;
  }

  Result<CompareOp> ParseOp() {
    if (Cur().kind != TokenKind::kOp) {
      return Status::ParseError(
          StrFormat("expected comparison operator at offset %zu", Cur().offset));
    }
    const std::string op = Cur().text;
    ++pos_;
    if (op == ">") return CompareOp::kGt;
    if (op == ">=") return CompareOp::kGe;
    if (op == "=") return CompareOp::kEq;
    if (op == "<=") return CompareOp::kLe;
    if (op == "<") return CompareOp::kLt;
    if (op == "!=") return CompareOp::kNe;
    return Status::ParseError("unknown operator " + op);
  }

  Result<QueryPredicate> ParsePredicate() {
    QueryPredicate pred;
    EXSTREAM_ASSIGN_OR_RETURN(pred.lhs, ParseAttrRef());
    EXSTREAM_ASSIGN_OR_RETURN(pred.op, ParseOp());
    if (Cur().kind == TokenKind::kNumber) {
      const std::string& text = Cur().text;
      if (text.find('.') != std::string::npos) {
        pred.rhs_constant = Value(strtod(text.c_str(), nullptr));
      } else {
        pred.rhs_constant = Value(static_cast<int64_t>(strtoll(text.c_str(), nullptr, 10)));
      }
      ++pos_;
    } else if (Cur().kind == TokenKind::kString) {
      pred.rhs_constant = Value(Cur().text);
      ++pos_;
    } else {
      EXSTREAM_ASSIGN_OR_RETURN(AttrRef rhs, ParseAttrRef());
      pred.rhs_attr = std::move(rhs);
    }
    return pred;
  }

  Result<ReturnItem> ParseReturnItem() {
    ReturnItem item;
    // Lookahead: agg ident followed by '('.
    if (Cur().kind == TokenKind::kIdent && pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokenKind::kLParen) {
      const std::string fn = ToLower(Cur().text);
      ReturnAgg agg = ReturnAgg::kNone;
      if (fn == "sum") agg = ReturnAgg::kSum;
      if (fn == "count") agg = ReturnAgg::kCount;
      if (fn == "avg") agg = ReturnAgg::kAvg;
      if (fn == "min") agg = ReturnAgg::kMin;
      if (fn == "max") agg = ReturnAgg::kMax;
      if (agg != ReturnAgg::kNone) {
        pos_ += 2;  // consume ident and '('
        item.agg = agg;
        EXSTREAM_ASSIGN_OR_RETURN(item.ref, ParseAttrRef());
        EXSTREAM_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        return item;
      }
    }
    EXSTREAM_ASSIGN_OR_RETURN(item.ref, ParseAttrRef());
    return item;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text, std::string name) {
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse(std::move(name));
}

}  // namespace exstream
