// Abstract syntax of SASE monitoring queries (paper Fig. 3).
//
//   PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c)
//   WHERE [jobId] AND b.dataSize > 0
//   RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "event/event.h"

namespace exstream {

/// \brief Comparison operators allowed in predicates and explanations
/// (Def. 2.1 uses >, >=, =, <=, <; != is accepted for completeness).
enum class CompareOp : uint8_t { kGt, kGe, kEq, kLe, kLt, kNe };

std::string_view CompareOpToString(CompareOp op);

/// \brief Evaluates `lhs op rhs` on doubles.
bool EvalCompare(double lhs, CompareOp op, double rhs);

/// \brief How a kleene variable is indexed in an attribute reference.
enum class KleeneIndex : uint8_t {
  kNone = 0,  ///< plain `a.attr` on a single-event variable
  kCurrent,   ///< `b[i].attr` — the most recent kleene element
  kRange,     ///< `b[1..i].attr` — all kleene elements so far (aggregates)
};

/// \brief Reference to an attribute of a pattern variable.
///
/// `attribute == "timestamp"` refers to the event's timestamp field.
struct AttrRef {
  std::string variable;
  std::string attribute;
  KleeneIndex index = KleeneIndex::kNone;

  std::string ToString() const;
};

/// \brief A WHERE-clause predicate: `var.attr op constant` or
/// `var.attr op var2.attr2`.
struct QueryPredicate {
  AttrRef lhs;
  CompareOp op = CompareOp::kEq;
  // Exactly one of the two is active.
  std::optional<Value> rhs_constant;
  std::optional<AttrRef> rhs_attr;

  std::string ToString() const;
};

/// \brief Aggregate functions usable in RETURN expressions.
enum class ReturnAgg : uint8_t { kNone = 0, kSum, kCount, kAvg, kMin, kMax };

std::string_view ReturnAggToString(ReturnAgg agg);

/// \brief One RETURN expression: an attribute reference, optionally wrapped in
/// a running aggregate over a kleene range.
struct ReturnItem {
  ReturnAgg agg = ReturnAgg::kNone;
  AttrRef ref;
  std::string alias;  ///< output attribute name; derived if empty

  /// Output column name: alias, or derived like "sum_dataSize".
  std::string OutputName() const;
  std::string ToString() const;
};

/// \brief One SEQ component: a single event, a kleene-plus of events, or a
/// negated component (SASE's `!B b`: no matching B may occur between the
/// surrounding positive components).
struct QueryComponent {
  std::string event_type;
  std::string variable;
  bool kleene = false;
  bool negated = false;

  std::string ToString() const;
};

/// \brief A full SASE query.
struct Query {
  std::string name;  ///< query id used by the engine and the partition table
  std::vector<QueryComponent> components;
  std::string partition_attribute;  ///< the bracketed equivalence attribute
  std::vector<QueryPredicate> predicates;
  std::vector<ReturnItem> return_items;
  /// WITHIN clause: maximum time span of a match; 0 means unbounded.
  Timestamp within = 0;

  /// Index of the (sole) kleene component, or nullopt.
  std::optional<size_t> KleeneComponentIndex() const;

  /// Round-trips to the Fig. 3 concrete syntax.
  std::string ToString() const;
};

}  // namespace exstream
