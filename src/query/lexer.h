// Tokenizer for the SASE query syntax.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace exstream {

enum class TokenKind : uint8_t {
  kIdent,     ///< identifiers and keywords (keywords resolved by the parser)
  kNumber,    ///< integer or decimal literal
  kString,    ///< single- or double-quoted literal
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kDot,
  kDotDot,    ///< ".." in kleene ranges b[1..i]
  kPlus,
  kBang,      ///< "!" prefix of a negated component
  kOp,        ///< > >= = <= < !=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset = 0;  ///< byte offset in the input, for error messages
};

/// \brief Tokenizes a query string. Fails on unknown characters or unclosed
/// string literals.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace exstream
