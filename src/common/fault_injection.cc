#include "common/fault_injection.h"

namespace exstream {

std::string_view FaultModeToString(FaultMode mode) {
  switch (mode) {
    case FaultMode::kFailOpen:
      return "fail-open";
    case FaultMode::kTruncate:
      return "truncate";
    case FaultMode::kCorruptBytes:
      return "corrupt-bytes";
    case FaultMode::kNoSpace:
      return "no-space";
    case FaultMode::kDelay:
      return "delay";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  matched_ = 0;
  injected_ = 0;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
}

size_t FaultInjector::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(injected_);
}

std::optional<FaultPlan> FaultInjector::Intercept(FaultOp op,
                                                  const std::string& path) {
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  if (plan_.op != op) return std::nullopt;
  if (!plan_.path_substring.empty() &&
      path.find(plan_.path_substring) == std::string::npos) {
    return std::nullopt;
  }
  ++matched_;
  if (matched_ <= plan_.skip) return std::nullopt;
  if (plan_.max_hits >= 0 && injected_ >= plan_.max_hits) return std::nullopt;
  ++injected_;
  return plan_;
}

}  // namespace exstream
