#include "common/fault_injection.h"

#include <algorithm>

namespace exstream {

std::string_view FaultModeToString(FaultMode mode) {
  switch (mode) {
    case FaultMode::kFailOpen:
      return "fail-open";
    case FaultMode::kTruncate:
      return "truncate";
    case FaultMode::kCorruptBytes:
      return "corrupt-bytes";
    case FaultMode::kNoSpace:
      return "no-space";
    case FaultMode::kDelay:
      return "delay";
    case FaultMode::kReset:
      return "reset";
  }
  return "unknown";
}

std::string_view FaultOpToString(FaultOp op) {
  switch (op) {
    case FaultOp::kRead:
      return "read";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kDelete:
      return "delete";
    case FaultOp::kConnect:
      return "connect";
    case FaultOp::kSend:
      return "send";
    case FaultOp::kRecv:
      return "recv";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  matched_ = 0;
  injected_ = 0;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
}

size_t FaultInjector::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(injected_);
}

void FaultInjector::RegisterSiteLocked(FaultOp op, std::string_view site) {
  if (site.empty()) return;
  const auto seen = std::find_if(sites_.begin(), sites_.end(),
                                 [&](const FaultSite& s) {
                                   return s.op == op && s.name == site;
                                 });
  if (seen == sites_.end()) {
    sites_.push_back(FaultSite{std::string(site), op});
  }
}

std::vector<FaultSite> FaultInjector::sites() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_;
}

std::optional<FaultPlan> FaultInjector::Intercept(FaultOp op,
                                                  std::string_view site,
                                                  const std::string& path) {
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  RegisterSiteLocked(op, site);
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  if (plan_.op != op) return std::nullopt;
  if (!plan_.site.empty() && plan_.site != site) return std::nullopt;
  if (!plan_.path_substring.empty() &&
      path.find(plan_.path_substring) == std::string::npos) {
    return std::nullopt;
  }
  ++matched_;
  if (matched_ <= plan_.skip) return std::nullopt;
  if (plan_.max_hits >= 0 && injected_ >= plan_.max_hits) return std::nullopt;
  ++injected_;
  return plan_;
}

}  // namespace exstream
