// Bounded single-producer single-consumer ring used for the batch router →
// shard worker handoff (cep/engine.cc). One producer thread calls Push, one
// consumer thread calls Pop; no other concurrency is allowed.
//
// The ring is lock-free on the fast path: head_ and tail_ are the only shared
// state, each written by exactly one side, with acquire/release pairing on
// the opposite side's load. A condition variable parks the consumer when the
// ring runs dry so idle shard workers cost nothing between batches; the
// producer only takes the mutex to signal wakeups, never to move data.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace exstream {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer side. Returns false when the ring is full (caller decides
  /// whether to spin, yield, or drop).
  bool TryPush(T item) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: push, spinning/yielding until space frees up, and wake a
  /// parked consumer.
  void PushWait(T item) {
    while (!TryPush(item)) std::this_thread::yield();
    // Pairs with the sleep in PopWait: the consumer re-checks emptiness under
    // the mutex before parking, so this signal cannot be lost.
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_one();
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pop, parking on the condition variable while empty.
  /// Returns false (without an item) once `closed` becomes true AND the ring
  /// has fully drained.
  bool PopWait(T* out, const std::atomic<bool>& closed) {
    for (;;) {
      if (TryPop(out)) return true;
      std::unique_lock<std::mutex> lock(wake_mu_);
      if (TryPop(out)) return true;
      if (closed.load(std::memory_order_acquire)) return false;
      wake_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }

  /// Wakes a consumer parked in PopWait (e.g. after setting its close flag).
  void Wake() {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_one();
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> head_{0};  // consumer-owned
  alignas(64) std::atomic<size_t> tail_{0};  // producer-owned
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
};

}  // namespace exstream
