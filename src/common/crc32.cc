#include "common/crc32.h"

namespace exstream {

namespace {

struct Crc32Tables {
  uint32_t t[8][256];

  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? 0xEDB88320u : 0u);
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int j = 1; j < 8; ++j) {
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFFu];
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const Crc32Tables& tb = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (len >= 8) {
    const uint32_t lo = LoadLe32(p) ^ crc;
    const uint32_t hi = LoadLe32(p + 4);
    crc = tb.t[7][lo & 0xFFu] ^ tb.t[6][(lo >> 8) & 0xFFu] ^
          tb.t[5][(lo >> 16) & 0xFFu] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xFFu] ^ tb.t[2][(hi >> 8) & 0xFFu] ^
          tb.t[1][(hi >> 16) & 0xFFu] ^ tb.t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace exstream
