// Fixed-bucket latency histogram for the efficiency experiments.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace exstream {

/// \brief Simple equal-width histogram over [lo, hi) with overflow buckets.
///
/// Used to characterize per-event processing latency while explanation
/// analysis runs concurrently with monitoring queries (Sec. C / Fig. 20-21).
class Histogram {
 public:
  /// \param lo lower bound of the tracked range
  /// \param hi upper bound of the tracked range
  /// \param buckets number of equal-width buckets between lo and hi
  Histogram(double lo, double hi, size_t buckets);

  void Add(double v);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Approximate percentile from bucket midpoints, p in [0,100].
  double ApproxPercentile(double p) const;

  /// Fraction of samples strictly above the threshold.
  double FractionAbove(double threshold) const;

  /// One-line summary for logs: count/mean/p50/p99/max.
  std::string Summary() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> bins_;  // [underflow, b0..bn-1, overflow]
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_;
  double max_;
  std::vector<double> samples_above_hint_;  // exact values kept for FractionAbove
};

}  // namespace exstream
