// Fixed-size thread pool used by the multi-query CEP engine and the
// explanation engine's background analysis (Appendix B/C).

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace exstream {

/// \brief A fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> fn);

  /// Blocks until every queued task has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace exstream
