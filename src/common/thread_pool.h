// Fixed-size thread pool used by the multi-query CEP engine and the
// explanation engine's background analysis (Appendix B/C).

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace exstream {

class CancelToken;

/// \brief A fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> fn);

  /// Blocks until every queued task has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool stop_ = false;
};

/// \brief Runs `fn(i)` for every i in [0, n), spreading indices over the pool.
///
/// Workers (and the calling thread) pull indices from a shared atomic counter,
/// so the schedule is dynamic but the work itself is index-addressed: as long
/// as `fn(i)` writes only to slot i of a pre-sized output, results are
/// identical to the serial loop regardless of thread count. Falls back to a
/// plain serial loop when `pool` is null or has a single worker.
///
/// `fn` must not throw and must not re-enter ParallelFor on the same pool
/// (nested waits could idle every worker on the outer loop).
void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn);

/// \brief Cancellable ParallelFor: once `cancel` expires, no further indices
/// are handed out (indices already claimed still finish, so slot writes stay
/// complete-or-untouched). Always waits for in-flight work before returning —
/// cancellation can never leave stragglers racing the caller. Returns the
/// number of indices actually executed (== n iff the loop was not cut short).
/// `cancel == nullptr` behaves exactly like the plain overload.
size_t ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn,
                   const CancelToken* cancel);

}  // namespace exstream
