#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"

namespace exstream {

Status RetryWithBackoff(const RetryPolicy& policy, const std::function<Status()>& op,
                        const std::function<bool(const Status&)>& is_retryable,
                        size_t* retries) {
  if (retries != nullptr) *retries = 0;
  Rng rng(policy.jitter_seed);
  const int attempts = std::max(1, policy.max_attempts);
  Status st;
  for (int attempt = 1;; ++attempt) {
    st = op();
    if (st.ok() || !is_retryable(st) || attempt >= attempts) return st;
    double sleep_ms = std::min(policy.max_backoff_ms,
                               policy.base_backoff_ms * static_cast<double>(1 << (attempt - 1)));
    if (policy.jitter_fraction > 0) {
      sleep_ms *= rng.Uniform(1.0 - policy.jitter_fraction, 1.0 + policy.jitter_fraction);
    }
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(sleep_ms * 1000.0)));
    }
    if (retries != nullptr) ++*retries;
  }
}

}  // namespace exstream
