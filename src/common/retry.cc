#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace exstream {

namespace {

// splitmix64: cheap stateful uniform stream for the decorrelated-jitter
// draws (an mt19937_64 per Backoff would be 2.5 kB of state for one double).
uint64_t NextState(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double UniformFromState(uint64_t* state, double lo, double hi) {
  const double unit =
      static_cast<double>(NextState(state) >> 11) * 0x1.0p-53;  // [0, 1)
  return lo + unit * (hi - lo);
}

}  // namespace

double Backoff::NextSleepMs() {
  if (!rng_init_) {
    rng_state_ = policy_.jitter_seed;
    rng_init_ = true;
  }
  ++attempt_;
  double sleep_ms = 0.0;
  switch (policy_.mode) {
    case BackoffMode::kExponentialJitter: {
      const int shift = std::min(attempt_ - 1, 30);
      sleep_ms = std::min(policy_.max_backoff_ms,
                          policy_.base_backoff_ms *
                              static_cast<double>(uint64_t{1} << shift));
      if (policy_.jitter_fraction > 0) {
        sleep_ms *= UniformFromState(&rng_state_, 1.0 - policy_.jitter_fraction,
                                     1.0 + policy_.jitter_fraction);
      }
      break;
    }
    case BackoffMode::kDecorrelatedJitter: {
      const double prev =
          prev_sleep_ms_ > 0 ? prev_sleep_ms_ : policy_.base_backoff_ms;
      sleep_ms = std::min(
          policy_.max_backoff_ms,
          UniformFromState(&rng_state_, policy_.base_backoff_ms, prev * 3.0));
      break;
    }
  }
  prev_sleep_ms_ = sleep_ms;
  return sleep_ms;
}

void Backoff::Reset() {
  attempt_ = 0;
  prev_sleep_ms_ = 0.0;
}

bool SleepWithCancel(double ms, const CancelToken* cancel) {
  if (ms <= 0) return cancel == nullptr || !cancel->Expired();
  if (cancel == nullptr) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)));
    return true;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0));
  while (std::chrono::steady_clock::now() < deadline) {
    if (cancel->Expired()) return false;
    const auto remaining = deadline - std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            remaining, std::chrono::milliseconds(1)));
  }
  return !cancel->Expired();
}

Status RetryWithBackoff(const RetryPolicy& policy, const std::function<Status()>& op,
                        const std::function<bool(const Status&)>& is_retryable,
                        size_t* retries, const CancelToken* cancel) {
  if (retries != nullptr) *retries = 0;
  Backoff backoff(policy);
  const int attempts = std::max(1, policy.max_attempts);
  Status st;
  for (int attempt = 1;; ++attempt) {
    st = op();
    if (st.ok() || !is_retryable(st) || attempt >= attempts) return st;
    if (cancel != nullptr && cancel->Expired()) return st;
    if (!SleepWithCancel(backoff.NextSleepMs(), cancel)) return st;
    if (retries != nullptr) ++*retries;
  }
}

}  // namespace exstream
