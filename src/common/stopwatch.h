// Wall-clock stopwatch used by the efficiency experiments (Fig. 20/21).

#pragma once

#include <chrono>

namespace exstream {

/// \brief Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace exstream
