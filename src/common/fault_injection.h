// FaultInjector: test/bench-only hook for injecting I/O faults.
//
// Hook points are identified by an op class (file read/write/delete, socket
// connect/send/recv) plus a named *site* — the specific seam the code is
// executing ("spill-write", "wal-append", "repl-send", ...). One injector
// configuration covers every subsystem: the archive's spill files, the WAL,
// checkpoint files, and the replication sockets all consult the same
// process-global registry. In production nothing is ever armed, so the cost
// is a single relaxed atomic load per operation; tests arm a FaultPlan
// (which op class, which site, which paths, which failure mode, how many
// times) to exercise the retry, quarantine, reconnect, and degraded-scan
// machinery deterministically.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace exstream {

/// \brief What an injected fault does to the intercepted operation.
enum class FaultMode {
  kFailOpen,      ///< the operation fails outright (transient I/O error)
  kTruncate,      ///< the bytes are cut short (torn write / short read /
                  ///< frame truncated mid-send)
  kCorruptBytes,  ///< payload bytes are flipped (bit rot / corrupt link)
  kNoSpace,       ///< writes fail as if the disk were full (ENOSPC)
  kDelay,         ///< the operation succeeds but takes `delay_ms` longer
  kReset,         ///< the peer drops the connection (ECONNRESET); socket ops
                  ///< only — file sites treat it like kFailOpen
};

/// \brief Operation class the fault applies to. kRead/kWrite keep their
/// original file-I/O meaning so existing plans keep working; the socket and
/// delete classes were added when injection grew past file I/O.
enum class FaultOp {
  kRead,     ///< file/buffer read
  kWrite,    ///< file/buffer write
  kDelete,   ///< file deletion (WAL truncation, checkpoint GC)
  kConnect,  ///< socket connect
  kSend,     ///< socket send
  kRecv,     ///< socket recv
};

std::string_view FaultModeToString(FaultMode mode);
std::string_view FaultOpToString(FaultOp op);

/// \brief One armed fault: mode, target, and trigger schedule.
struct FaultPlan {
  FaultMode mode = FaultMode::kFailOpen;
  FaultOp op = FaultOp::kRead;
  /// Only operations at this site are intercepted ("" = every site of `op`).
  /// Site names are registered by the hook points themselves; see
  /// FaultInjector::sites() for the live registry.
  std::string site;
  /// Only paths/endpoints containing this substring are intercepted
  /// ("" = every path).
  std::string path_substring;
  /// Let this many matching operations through untouched first.
  int skip = 0;
  /// Stop injecting after this many hits; -1 = inject forever. `max_hits = 1`
  /// models a transient fault (fails once, then the retry succeeds).
  int max_hits = -1;
  /// kTruncate: number of leading bytes that survive.
  size_t truncate_to = 8;
  /// kCorruptBytes: byte offset to flip; SIZE_MAX = middle of the buffer.
  size_t corrupt_offset = SIZE_MAX;
  /// kDelay: added latency in milliseconds.
  int delay_ms = 5;
};

/// \brief A hook point that has announced itself to the injector.
struct FaultSite {
  std::string name;
  FaultOp op = FaultOp::kRead;
};

/// \brief Process-global fault injection registry (see file comment).
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms `plan`, replacing any previous plan and resetting counters.
  void Arm(FaultPlan plan);

  /// Disarms; subsequent operations run untouched.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Number of operations actually faulted since the last Arm.
  size_t hits() const;

  /// \brief Called by hook points: returns the plan to apply to this
  /// operation, if it matches and the trigger schedule says to fire (consumes
  /// one hit). `site` names the seam (registered on first use); `path` is the
  /// file path or endpoint label.
  std::optional<FaultPlan> Intercept(FaultOp op, std::string_view site,
                                     const std::string& path);

  /// Back-compat overload for hook points predating the site registry;
  /// equivalent to an anonymous site (only plans with an empty `site` match).
  std::optional<FaultPlan> Intercept(FaultOp op, const std::string& path) {
    return Intercept(op, std::string_view(), path);
  }

  /// Every (site, op) pair that has passed through Intercept while armed, in
  /// first-seen order. Lets tests and docs enumerate the seams. (Disarmed
  /// operations skip registration so the production path stays a single
  /// relaxed atomic load.)
  std::vector<FaultSite> sites() const;

 private:
  FaultInjector() = default;

  void RegisterSiteLocked(FaultOp op, std::string_view site);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  FaultPlan plan_;
  int matched_ = 0;   ///< matching operations seen since Arm
  int injected_ = 0;  ///< faults actually delivered since Arm
  std::vector<FaultSite> sites_;
};

/// \brief RAII arm/disarm for tests.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultPlan plan) {
    FaultInjector::Global().Arm(std::move(plan));
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace exstream
