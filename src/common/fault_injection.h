// FaultInjector: test/bench-only hook for injecting spill-file I/O faults.
//
// The archive's serialization layer consults the process-global injector on
// every spill read and write. In production nothing is ever armed, so the
// cost is a single relaxed atomic load per file operation; tests arm a
// FaultPlan (which paths, which operation, which failure mode, how many
// times) to exercise the retry, quarantine, and degraded-scan machinery
// deterministically.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace exstream {

/// \brief What an injected fault does to the intercepted file operation.
enum class FaultMode {
  kFailOpen,      ///< the open/read/write fails outright (transient I/O error)
  kTruncate,      ///< the file's bytes are cut short (torn write / short read)
  kCorruptBytes,  ///< payload bytes are flipped (bit rot)
  kNoSpace,       ///< writes fail as if the disk were full (ENOSPC)
  kDelay,         ///< the operation succeeds but takes `delay_ms` longer
};

/// \brief Which side of the I/O the fault applies to.
enum class FaultOp { kRead, kWrite };

std::string_view FaultModeToString(FaultMode mode);

/// \brief One armed fault: mode, target, and trigger schedule.
struct FaultPlan {
  FaultMode mode = FaultMode::kFailOpen;
  FaultOp op = FaultOp::kRead;
  /// Only paths containing this substring are intercepted ("" = every path).
  std::string path_substring;
  /// Let this many matching operations through untouched first.
  int skip = 0;
  /// Stop injecting after this many hits; -1 = inject forever. `max_hits = 1`
  /// models a transient fault (fails once, then the retry succeeds).
  int max_hits = -1;
  /// kTruncate: number of leading bytes that survive.
  size_t truncate_to = 8;
  /// kCorruptBytes: byte offset to flip; SIZE_MAX = middle of the buffer.
  size_t corrupt_offset = SIZE_MAX;
  /// kDelay: added latency in milliseconds.
  int delay_ms = 5;
};

/// \brief Process-global fault injection registry (see file comment).
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms `plan`, replacing any previous plan and resetting counters.
  void Arm(FaultPlan plan);

  /// Disarms; subsequent operations run untouched.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Number of operations actually faulted since the last Arm.
  size_t hits() const;

  /// Called by I/O sites: returns the plan to apply to this operation, if it
  /// matches and the trigger schedule says to fire (consumes one hit).
  std::optional<FaultPlan> Intercept(FaultOp op, const std::string& path);

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  FaultPlan plan_;
  int matched_ = 0;   ///< matching operations seen since Arm
  int injected_ = 0;  ///< faults actually delivered since Arm
};

/// \brief RAII arm/disarm for tests.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultPlan plan) {
    FaultInjector::Global().Arm(std::move(plan));
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace exstream
