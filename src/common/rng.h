// Deterministic random number generation for simulators and benchmarks.

#pragma once

#include <cstdint>
#include <random>

namespace exstream {

/// \brief Seedable RNG wrapper with the distributions the simulators need.
///
/// All randomness in EXstream flows through explicitly seeded Rng instances so
/// that every experiment table is reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Exponential with the given rate (events per unit time).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(gen_);
  }

  /// Bernoulli draw.
  bool Chance(double p) { return std::bernoulli_distribution(p)(gen_); }

  /// Forks a derived, independent RNG; used to give each simulated node or
  /// job its own stream without coupling their draw sequences.
  Rng Fork() { return Rng(gen_()); }

  std::mt19937_64& gen() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace exstream
