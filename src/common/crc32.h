// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
// archive spill files (spill format v2).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace exstream {

/// \brief CRC-32 of `len` bytes at `data`, continuing from `seed` (0 for a
/// fresh checksum). Slice-by-8 table lookup: fast enough that checksummed
/// spill I/O stays within a few percent of the unchecksummed path.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace exstream
