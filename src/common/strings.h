// Small string utilities shared across modules.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace exstream {

/// \brief Splits `s` on `sep`, trimming ASCII whitespace from each piece.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Lowercases ASCII characters.
std::string ToLower(std::string_view s);

/// \brief Joins the pieces with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace exstream
