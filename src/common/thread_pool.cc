#include "common/thread_pool.h"

#include <atomic>

#include "common/deadline.h"

namespace exstream {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Index claiming and completion are tracked separately from task execution,
  // and the calling thread drains indices itself: a helper task that never
  // gets scheduled (e.g. every worker is busy with an outer loop) is a no-op
  // when it eventually runs, so nested ParallelFor cannot deadlock.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto shared = std::make_shared<Shared>();
  auto drain = [shared, n, &fn] {
    for (;;) {
      const size_t i = shared->next.fetch_add(1);
      if (i >= n) return;  // late stragglers never touch fn
      fn(i);
      if (shared->done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->cv.notify_all();
      }
    }
  };
  const size_t helpers = std::min(pool->num_threads(), n - 1);
  for (size_t i = 0; i < helpers; ++i) (void)pool->Submit(drain);
  drain();  // the calling thread works too instead of blocking idle
  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] { return shared->done.load() == n; });
}

size_t ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn,
                   const CancelToken* cancel) {
  if (cancel == nullptr) {
    ParallelFor(pool, n, fn);
    return n;
  }
  if (n == 0) return 0;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    size_t executed = 0;
    for (size_t i = 0; i < n; ++i) {
      if (cancel->Expired()) break;
      fn(i);
      ++executed;
    }
    return executed;
  }
  // Same shape as the plain overload; an expired token turns every unclaimed
  // index into a no-op, but `done` still reaches n so the wait below cannot
  // hang. The pool itself is untouched — helper tasks drain and exit.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<size_t> executed{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto shared = std::make_shared<Shared>();
  auto drain = [shared, n, &fn, cancel] {
    for (;;) {
      const size_t i = shared->next.fetch_add(1);
      if (i >= n) return;
      if (!cancel->Expired()) {
        fn(i);
        shared->executed.fetch_add(1);
      }
      if (shared->done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->cv.notify_all();
      }
    }
  };
  const size_t helpers = std::min(pool->num_threads(), n - 1);
  for (size_t i = 0; i < helpers; ++i) (void)pool->Submit(drain);
  drain();
  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] { return shared->done.load() == n; });
  return shared->executed.load();
}

}  // namespace exstream
