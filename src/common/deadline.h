// CancelToken: cooperative deadline/cancellation threaded through the
// explanation pipeline's parallel stages, so a runaway Explain yields a
// Status::DeadlineExceeded instead of stalling monitoring indefinitely.

#pragma once

#include <atomic>
#include <chrono>

namespace exstream {

/// \brief Latching deadline + cancellation flag.
///
/// A default-constructed token never expires. Expired() is safe to poll from
/// any thread; once it observes the deadline passing (or an explicit
/// Cancel()) it latches, so workers racing each other all agree. Checks are
/// cooperative: code holding a token polls it between units of work.
class CancelToken {
 public:
  CancelToken() = default;

  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  /// A token that expires `ms` milliseconds from now.
  static CancelToken AfterMillis(double ms) {
    return CancelToken(std::chrono::steady_clock::now() +
                       std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)));
  }

  /// Forces expiry regardless of the deadline.
  void Cancel() const { cancelled_.store(true, std::memory_order_release); }

  /// True once cancelled or past the deadline.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  bool has_deadline() const { return has_deadline_; }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  mutable std::atomic<bool> cancelled_{false};
};

}  // namespace exstream
