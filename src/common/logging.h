// Minimal leveled logging to stderr.

#pragma once

#include <sstream>
#include <string>

namespace exstream {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace exstream

#define EXSTREAM_LOG(level)                                            \
  ::exstream::internal::LogMessage(::exstream::LogLevel::k##level, __FILE__, \
                                   __LINE__)
