#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace exstream {

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    out.emplace_back(TrimWhitespace(s.substr(start, pos - start)));
    start = pos + 1;
    if (pos == s.size()) break;
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

}  // namespace exstream
