// Retry with capped exponential backoff + jitter, for transient spill-file
// I/O errors (the archive's failure model treats IOError as transient and
// Corruption/Truncated as permanent).

#pragma once

#include <functional>

#include "common/status.h"

namespace exstream {

/// \brief Backoff schedule for retrying a fallible operation.
struct RetryPolicy {
  /// Total attempts, including the first; 1 disables retries.
  int max_attempts = 3;
  /// Sleep before retry k (1-based) is base * 2^(k-1), capped at `max_backoff_ms`.
  double base_backoff_ms = 1.0;
  double max_backoff_ms = 50.0;
  /// Uniform jitter fraction: each sleep is scaled by [1-j, 1+j] to decorrelate
  /// concurrent retriers hitting the same device.
  double jitter_fraction = 0.25;
  /// Seed for the deterministic jitter stream.
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
};

/// \brief Runs `op` until it succeeds, fails permanently, or attempts run out.
///
/// `is_retryable` classifies a non-OK status; a non-retryable status is
/// returned immediately. `retries`, when non-null, receives the number of
/// retries performed (attempts beyond the first).
Status RetryWithBackoff(const RetryPolicy& policy, const std::function<Status()>& op,
                        const std::function<bool(const Status&)>& is_retryable,
                        size_t* retries = nullptr);

}  // namespace exstream
