// Retry with capped backoff + jitter, for transient I/O errors (the
// archive's failure model treats IOError as transient and
// Corruption/Truncated as permanent; the replication sender treats every
// link error as transient and retries forever).

#pragma once

#include <cstdint>
#include <functional>

#include "common/deadline.h"
#include "common/status.h"

namespace exstream {

/// \brief How successive backoff sleeps are derived.
enum class BackoffMode {
  /// base * 2^(k-1), scaled by uniform jitter in [1-j, 1+j], capped.
  kExponentialJitter,
  /// AWS-style decorrelated jitter: sleep_k = min(cap, U(base, 3*sleep_{k-1})).
  /// Spreads a thundering herd of reconnecting clients much better than
  /// scaled exponential jitter because successive sleeps forget their phase.
  kDecorrelatedJitter,
};

/// \brief Backoff schedule for retrying a fallible operation.
struct RetryPolicy {
  /// Total attempts, including the first; 1 disables retries.
  int max_attempts = 3;
  /// First sleep (and decorrelated-jitter floor), in milliseconds.
  double base_backoff_ms = 1.0;
  double max_backoff_ms = 50.0;
  BackoffMode mode = BackoffMode::kExponentialJitter;
  /// kExponentialJitter only: each sleep is scaled by [1-j, 1+j] to
  /// decorrelate concurrent retriers hitting the same device.
  double jitter_fraction = 0.25;
  /// Seed for the deterministic jitter stream.
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
};

/// \brief Iterator over a RetryPolicy's sleep sequence, for callers that run
/// their own retry loop (the replication sender's reconnect machinery, which
/// retries forever instead of max_attempts times).
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy) : policy_(policy) {}

  /// The next sleep in milliseconds (advances the schedule).
  double NextSleepMs();

  /// Restarts the schedule (call after a success).
  void Reset();

 private:
  RetryPolicy policy_;
  int attempt_ = 0;
  double prev_sleep_ms_ = 0.0;
  uint64_t rng_state_ = 0;
  bool rng_init_ = false;
};

/// \brief Sleeps for `ms`, waking early (and returning false) if `cancel`
/// expires. Polls the token every millisecond — cooperative cancellation, so
/// a deadline'd caller never oversleeps by more than the poll interval.
/// Returns true when the full sleep elapsed.
bool SleepWithCancel(double ms, const CancelToken* cancel);

/// \brief Runs `op` until it succeeds, fails permanently, attempts run out,
/// or `cancel` expires.
///
/// `is_retryable` classifies a non-OK status; a non-retryable status is
/// returned immediately. `retries`, when non-null, receives the number of
/// retries performed (attempts beyond the first). `cancel`, when non-null,
/// is honored across backoff sleeps: an expired token aborts the remaining
/// schedule and returns the last failure — a deadline'd Explain must not
/// sleep past its deadline inside a spill-read retry loop.
Status RetryWithBackoff(const RetryPolicy& policy, const std::function<Status()>& op,
                        const std::function<bool(const Status&)>& is_retryable,
                        size_t* retries = nullptr,
                        const CancelToken* cancel = nullptr);

}  // namespace exstream
