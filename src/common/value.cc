#include "common/value.h"

#include <cmath>
#include <limits>

namespace exstream {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

int64_t Value::AsInt64() const {
  if (const auto* i = std::get_if<int64_t>(&v_)) return *i;
  if (const auto* d = std::get_if<double>(&v_)) return static_cast<int64_t>(*d);
  return 0;
}

double Value::AsDouble() const {
  if (const auto* i = std::get_if<int64_t>(&v_)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  return std::numeric_limits<double>::quiet_NaN();
}

const std::string& Value::AsString() const {
  static const std::string kEmpty;
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  return kEmpty;
}

Result<int> Value::Compare(const Value& other) const {
  if (is_string() != other.is_string()) {
    return Status::InvalidArgument("cannot compare string with numeric value");
  }
  if (is_string()) {
    const int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  const double a = AsDouble();
  const double b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

bool Value::operator==(const Value& other) const {
  auto cmp = Compare(other);
  return cmp.ok() && *cmp == 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(v_));
    case ValueType::kDouble: {
      char buf[64];
      snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(v_);
  }
  return {};
}

}  // namespace exstream
