// Descriptive statistics over double vectors.

#pragma once

#include <cstddef>
#include <vector>

namespace exstream {

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// \brief Mean over a contiguous range; same accumulation order as the
/// vector overload, so results are bit-identical.
double Mean(const double* xs, size_t n);

/// \brief Population standard deviation; 0 for fewer than 2 points.
double StdDev(const std::vector<double>& xs);

/// \brief StdDev over a contiguous range; bit-identical to the vector
/// overload (lets hot loops aggregate a window without copying it out).
double StdDev(const double* xs, size_t n);

/// \brief Minimum; +inf for empty input.
double Min(const std::vector<double>& xs);

/// \brief Maximum; -inf for empty input.
double Max(const std::vector<double>& xs);

/// \brief Sum of the values.
double Sum(const std::vector<double>& xs);

/// \brief Linear-interpolated percentile, p in [0,100]; 0 for empty input.
double Percentile(std::vector<double> xs, double p);

/// \brief Pearson correlation coefficient of two equal-length vectors.
///
/// Returns 0 when either side has zero variance or lengths mismatch.
double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b);

/// \brief Harmonic mean of precision and recall; 0 when both are 0.
double FMeasure(double precision, double recall);

}  // namespace exstream
