// Status: the error-handling primitive used throughout EXstream.
//
// Follows the Arrow/RocksDB convention: functions that can fail return a
// Status (or Result<T>, see result.h) instead of throwing. A Status is cheap
// to copy in the OK case (no allocation) and carries a code plus a message
// otherwise.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace exstream {

/// \brief Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kParseError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  /// Stored data fails an integrity check (bad magic, checksum mismatch,
  /// impossible header). Permanent: retrying the read cannot help.
  kCorruption = 9,
  /// Stored data ends before its declared contents (torn write, short file).
  /// Permanent, but distinguishable from corruption for triage.
  kTruncated = 10,
  /// A cooperative deadline expired before the operation completed.
  kDeadlineExceeded = 11,
};

/// \brief Human-readable name of a status code (e.g. "Invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Operation outcome: OK or an error code with a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Truncated(std::string msg) {
    return Status(StatusCode::kTruncated, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsTruncated() const { return code() == StatusCode::kTruncated; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // nullptr <=> OK
};

}  // namespace exstream

/// Propagates a non-OK Status to the caller.
#define EXSTREAM_RETURN_NOT_OK(expr)                \
  do {                                              \
    ::exstream::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Evaluates a Result<T> expression and assigns its value, or propagates.
#define EXSTREAM_ASSIGN_OR_RETURN_IMPL(name, lhs, rexpr) \
  auto name = (rexpr);                                   \
  if (!name.ok()) return name.status();                  \
  lhs = std::move(name).MoveValue();

#define EXSTREAM_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define EXSTREAM_ASSIGN_OR_RETURN_NAME(a, b) EXSTREAM_ASSIGN_OR_RETURN_CONCAT(a, b)
#define EXSTREAM_ASSIGN_OR_RETURN(lhs, rexpr) \
  EXSTREAM_ASSIGN_OR_RETURN_IMPL(             \
      EXSTREAM_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)
