// Value: the dynamically-typed attribute value carried by events.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace exstream {

/// \brief Attribute value types supported by event schemas.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

std::string_view ValueTypeToString(ValueType t);

/// \brief A dynamically typed value: int64, double, or string.
///
/// Numeric values coerce to double via AsDouble() so that any numeric
/// attribute can feed a time series. Comparisons between two numerics compare
/// as double; strings compare lexicographically; comparing a string against
/// a numeric is an error surfaced through Compare()'s Result.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}               // NOLINT(runtime/explicit)
  Value(int v) : v_(int64_t{v}) {}          // NOLINT(runtime/explicit)
  Value(double v) : v_(v) {}                // NOLINT(runtime/explicit)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kInt64;
      case 1:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_numeric() const { return v_.index() <= 1; }
  bool is_string() const { return v_.index() == 2; }

  int64_t AsInt64() const;
  /// Numeric view of the value; strings yield NaN.
  double AsDouble() const;
  const std::string& AsString() const;

  /// \brief Three-way comparison: negative / zero / positive.
  ///
  /// Errors when comparing a string with a numeric.
  Result<int> Compare(const Value& other) const;

  bool operator==(const Value& other) const;

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace exstream
