#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace exstream {

double Mean(const double* xs, size_t n) {
  if (n == 0) return 0.0;
  return std::accumulate(xs, xs + n, 0.0) / static_cast<double>(n);
}

double Mean(const std::vector<double>& xs) { return Mean(xs.data(), xs.size()); }

double StdDev(const double* xs, size_t n) {
  if (n < 2) return 0.0;
  const double m = Mean(xs, n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += (xs[i] - m) * (xs[i] - m);
  return std::sqrt(acc / static_cast<double>(n));
}

double StdDev(const std::vector<double>& xs) {
  return StdDev(xs.data(), xs.size());
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::infinity();
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  return *std::max_element(xs.begin(), xs.end());
}

double Sum(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0) return xs.front();
  if (p >= 100) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double FMeasure(double precision, double recall) {
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

}  // namespace exstream
