// BytesWriter / BytesReader: the little-endian POD + length-prefixed-string
// codec shared by the WAL record framing and the checkpoint manifest.
//
// The spill serializer (archive/serialization.cc) keeps its own private
// reader because its error messages are format-specific; this header is the
// general-purpose variant for new binary surfaces. Same conventions:
// Truncated when the buffer ends early, no exceptions, no allocation on the
// happy POD path.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "common/strings.h"

namespace exstream {

/// \brief Appends PODs, strings, and POD vectors onto a growing byte buffer.
class BytesWriter {
 public:
  template <typename T>
  void Put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out_.append(buf, sizeof(T));
  }

  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s) {
    Put<uint32_t>(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }

  /// u32 count prefix + packed elements.
  template <typename T>
  void PutPodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Put<uint32_t>(static_cast<uint32_t>(v.size()));
    out_.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
  }

  /// Raw bytes, no prefix (caller frames them).
  void PutRaw(std::string_view s) { out_.append(s); }

  size_t size() const { return out_.size(); }
  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// \brief Sequential reader over a BytesWriter buffer; every getter validates
/// bounds and returns Truncated past the end.
class BytesReader {
 public:
  explicit BytesReader(std::string_view data) : data_(data) {}

  template <typename T>
  Result<T> Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::Truncated(
          StrFormat("buffer ends at offset %zu (need %zu more bytes, %zu left)",
                    pos_, sizeof(T), data_.size() - pos_));
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  Result<std::string> GetString() {
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t len, Get<uint32_t>());
    if (pos_ + len > data_.size()) {
      return Status::Truncated(
          StrFormat("string at offset %zu needs %u bytes, %zu left", pos_, len,
                    data_.size() - pos_));
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  template <typename T>
  Status GetPodVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n, Get<uint32_t>());
    const size_t bytes = static_cast<size_t>(n) * sizeof(T);
    if (pos_ + bytes > data_.size()) {
      return Status::Truncated(
          StrFormat("vector at offset %zu needs %zu bytes, %zu left", pos_,
                    bytes, data_.size() - pos_));
    }
    out->resize(n);
    std::memcpy(out->data(), data_.data() + pos_, bytes);
    pos_ += bytes;
    return Status::OK();
  }

  Result<std::string_view> GetView(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Truncated(
          StrFormat("block at offset %zu needs %zu bytes, %zu left", pos_, n,
                    data_.size() - pos_));
    }
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace exstream
