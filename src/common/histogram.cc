#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace exstream {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets > 0 ? buckets : 1)),
      bins_(buckets + 2, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::Add(double v) {
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  size_t idx;
  if (v < lo_) {
    idx = 0;
  } else if (v >= hi_) {
    idx = bins_.size() - 1;
  } else {
    idx = 1 + static_cast<size_t>((v - lo_) / width_);
    idx = std::min(idx, bins_.size() - 2);
  }
  ++bins_[idx];
  samples_above_hint_.push_back(v);
}

double Histogram::ApproxPercentile(double p) const {
  if (count_ == 0) return 0.0;
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  uint64_t acc = 0;
  for (size_t i = 0; i < bins_.size(); ++i) {
    acc += bins_[i];
    if (acc >= target) {
      if (i == 0) return lo_;
      if (i == bins_.size() - 1) return max_;
      return lo_ + (static_cast<double>(i - 1) + 0.5) * width_;
    }
  }
  return max_;
}

double Histogram::FractionAbove(double threshold) const {
  if (samples_above_hint_.empty()) return 0.0;
  const auto n = std::count_if(samples_above_hint_.begin(), samples_above_hint_.end(),
                               [&](double v) { return v > threshold; });
  return static_cast<double>(n) / static_cast<double>(samples_above_hint_.size());
}

std::string Histogram::Summary() const {
  return StrFormat("n=%llu mean=%.4g p50=%.4g p99=%.4g max=%.4g",
                   static_cast<unsigned long long>(count_), mean(),
                   ApproxPercentile(50), ApproxPercentile(99), max_);
}

}  // namespace exstream
