// Result<T>: value-or-Status, the return type of fallible factory functions.

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace exstream {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Construct from a T (implicitly OK) or from a
/// non-OK Status. Accessing the value of an errored Result aborts in debug
/// builds (assert); callers must check ok() first or use the
/// EXSTREAM_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: OK result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a (non-OK) status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& ValueOrDie() const {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() {
    assert(ok());
    return *value_;
  }

  /// Moves the value out; Result must be OK.
  T MoveValue() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const { return ValueOrDie(); }
  T& operator*() { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace exstream
