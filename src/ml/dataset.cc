#include "ml/dataset.h"

#include <cmath>

#include "common/stats.h"
#include "common/strings.h"

namespace exstream {

void Standardizer::FitTransform(Dataset* data) {
  const size_t nf = data->num_features();
  mean.assign(nf, 0.0);
  stddev.assign(nf, 0.0);
  std::vector<double> col;
  col.reserve(data->num_rows());
  for (size_t f = 0; f < nf; ++f) {
    col.clear();
    for (const auto& row : data->rows) col.push_back(row[f]);
    mean[f] = Mean(col);
    stddev[f] = StdDev(col);
  }
  Transform(data);
}

void Standardizer::Transform(Dataset* data) const {
  for (auto& row : data->rows) row = TransformRow(row);
}

std::vector<double> Standardizer::TransformRow(const std::vector<double>& row) const {
  std::vector<double> out(row.size(), 0.0);
  for (size_t f = 0; f < row.size() && f < mean.size(); ++f) {
    out[f] = stddev[f] > 0 ? (row[f] - mean[f]) / stddev[f] : 0.0;
  }
  return out;
}

namespace {

// Appends rows sampled from one interval's feature set.
void SampleRows(const std::vector<Feature>& features, size_t samples, int label,
                Dataset* out) {
  // The sampling span is the union of the feature series' spans.
  Timestamp lo = 0;
  Timestamp hi = 0;
  bool have_span = false;
  for (const Feature& f : features) {
    if (f.series.empty()) continue;
    if (!have_span) {
      lo = f.series.start_time();
      hi = f.series.end_time();
      have_span = true;
    } else {
      lo = std::min(lo, f.series.start_time());
      hi = std::max(hi, f.series.end_time());
    }
  }
  if (!have_span || samples == 0) return;
  for (size_t i = 0; i < samples; ++i) {
    const double frac =
        samples == 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(samples - 1);
    const Timestamp t = lo + static_cast<Timestamp>(
                                 std::llround(frac * static_cast<double>(hi - lo)));
    std::vector<double> row;
    row.reserve(features.size());
    for (const Feature& f : features) {
      row.push_back(f.series.empty() ? 0.0 : f.series.InterpolateAt(t));
    }
    out->rows.push_back(std::move(row));
    out->labels.push_back(label);
  }
}

}  // namespace

Result<Dataset> BuildDataset(const std::vector<Feature>& abnormal,
                             const std::vector<Feature>& reference,
                             size_t samples_per_interval) {
  if (abnormal.size() != reference.size()) {
    return Status::InvalidArgument(
        StrFormat("feature count mismatch: %zu abnormal vs %zu reference",
                  abnormal.size(), reference.size()));
  }
  Dataset out;
  out.feature_names.reserve(abnormal.size());
  for (size_t i = 0; i < abnormal.size(); ++i) {
    if (!(abnormal[i].spec == reference[i].spec)) {
      return Status::InvalidArgument("feature specs must align across intervals");
    }
    out.feature_names.push_back(abnormal[i].spec.Name());
  }
  SampleRows(abnormal, samples_per_interval, 1, &out);
  SampleRows(reference, samples_per_interval, 0, &out);
  return out;
}

void SplitDataset(const Dataset& data, size_t test_every_k, Dataset* train,
                  Dataset* test) {
  train->feature_names = data.feature_names;
  test->feature_names = data.feature_names;
  train->rows.clear();
  train->labels.clear();
  test->rows.clear();
  test->labels.clear();
  size_t per_class_count[2] = {0, 0};
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const int label = data.labels[i];
    Dataset* dst =
        (test_every_k > 0 && per_class_count[label] % test_every_k == test_every_k - 1)
            ? test
            : train;
    dst->rows.push_back(data.rows[i]);
    dst->labels.push_back(label);
    ++per_class_count[label];
  }
}

}  // namespace exstream
