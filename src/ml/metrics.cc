#include "ml/metrics.h"

#include "common/stats.h"

namespace exstream {

double ConfusionCounts::Precision() const {
  return (tp + fp) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
}

double ConfusionCounts::Recall() const {
  return (tp + fn) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
}

double ConfusionCounts::F1() const { return FMeasure(Precision(), Recall()); }

double ConfusionCounts::Accuracy() const {
  const size_t total = tp + fp + tn + fn;
  return total > 0 ? static_cast<double>(tp + tn) / static_cast<double>(total) : 0.0;
}

ConfusionCounts EvaluatePredictions(const std::vector<int>& labels,
                                    const std::vector<int>& predictions) {
  ConfusionCounts c;
  const size_t n = std::min(labels.size(), predictions.size());
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] == 1) {
      if (predictions[i] == 1) {
        ++c.tp;
      } else {
        ++c.fn;
      }
    } else {
      if (predictions[i] == 1) {
        ++c.fp;
      } else {
        ++c.tn;
      }
    }
  }
  return c;
}

bool SameUnderlyingSignal(const std::string& a, const std::string& b) {
  // Canonical names are "EventType.attribute.aggregate[@window]"; the signal
  // identity is the first two dot-separated pieces.
  auto signal_prefix = [](const std::string& name) {
    const size_t first = name.find('.');
    if (first == std::string::npos) return name;
    const size_t second = name.find('.', first + 1);
    if (second == std::string::npos) return name;
    return name.substr(0, second);
  };
  return signal_prefix(a) == signal_prefix(b);
}

double ExplanationConsistency(const std::vector<std::string>& selected,
                              const std::vector<std::string>& ground_truth) {
  if (selected.empty() && ground_truth.empty()) return 1.0;
  if (selected.empty() || ground_truth.empty()) return 0.0;

  size_t matched_selected = 0;
  for (const std::string& s : selected) {
    for (const std::string& g : ground_truth) {
      if (SameUnderlyingSignal(s, g)) {
        ++matched_selected;
        break;
      }
    }
  }
  size_t covered_truth = 0;
  for (const std::string& g : ground_truth) {
    for (const std::string& s : selected) {
      if (SameUnderlyingSignal(s, g)) {
        ++covered_truth;
        break;
      }
    }
  }
  const double precision =
      static_cast<double>(matched_selected) / static_cast<double>(selected.size());
  const double recall =
      static_cast<double>(covered_truth) / static_cast<double>(ground_truth.size());
  return FMeasure(precision, recall);
}

}  // namespace exstream
