#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

namespace exstream {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Result<LogisticRegression> LogisticRegression::Fit(const Dataset& train,
                                                   LogisticRegressionOptions options) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit logistic regression on empty data");
  }
  LogisticRegression model;
  model.feature_names_ = train.feature_names;

  Dataset data = train;
  model.standardizer_.FitTransform(&data);

  const size_t n = data.num_rows();
  const size_t d = data.num_features();
  model.weights_.assign(d, 0.0);
  model.bias_ = 0.0;

  std::vector<double> grad(d, 0.0);
  double prev_loss = std::numeric_limits<double>::infinity();

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = model.bias_;
      const auto& row = data.rows[i];
      for (size_t f = 0; f < d; ++f) z += model.weights_[f] * row[f];
      const double p = Sigmoid(z);
      const double y = static_cast<double>(data.labels[i]);
      const double err = p - y;
      for (size_t f = 0; f < d; ++f) grad[f] += err * row[f];
      grad_bias += err;
      // Numerically-safe log loss.
      loss += y > 0.5 ? -std::log(std::max(p, 1e-15))
                      : -std::log(std::max(1.0 - p, 1e-15));
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    loss *= inv_n;
    for (size_t f = 0; f < d; ++f) {
      loss += 0.5 * options.l2 * model.weights_[f] * model.weights_[f] +
              options.l1 * std::fabs(model.weights_[f]);
    }

    // Gradient step on the smooth part (log loss + L2), then the proximal
    // (soft-threshold) step for L1.
    for (size_t f = 0; f < d; ++f) {
      double w = model.weights_[f] -
                 options.learning_rate * (grad[f] * inv_n + options.l2 * model.weights_[f]);
      const double shrink = options.learning_rate * options.l1;
      if (w > shrink) {
        w -= shrink;
      } else if (w < -shrink) {
        w += shrink;
      } else {
        w = 0.0;
      }
      model.weights_[f] = w;
    }
    model.bias_ -= options.learning_rate * grad_bias * inv_n;

    model.final_loss_ = loss;
    if (std::fabs(prev_loss - loss) < options.tolerance) break;
    prev_loss = loss;
  }
  return model;
}

double LogisticRegression::PredictProbability(const std::vector<double>& row) const {
  const std::vector<double> x = standardizer_.TransformRow(row);
  double z = bias_;
  for (size_t f = 0; f < x.size() && f < weights_.size(); ++f) z += weights_[f] * x[f];
  return Sigmoid(z);
}

std::vector<int> LogisticRegression::Predict(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.num_rows());
  for (const auto& row : data.rows) {
    out.push_back(PredictProbability(row) >= 0.5 ? 1 : 0);
  }
  return out;
}

std::vector<std::pair<std::string, double>> LogisticRegression::RankedWeights() const {
  std::vector<std::pair<std::string, double>> out;
  for (size_t f = 0; f < weights_.size(); ++f) {
    if (weights_[f] != 0.0) out.emplace_back(feature_names_[f], weights_[f]);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::fabs(a.second) > std::fabs(b.second);
  });
  return out;
}

std::vector<std::string> LogisticRegression::SelectedFeatures() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : RankedWeights()) out.push_back(name);
  return out;
}

}  // namespace exstream
