#include "ml/discretize.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace exstream {

namespace {

double Log2(double x) { return std::log(x) / std::log(2.0); }

// Class entropy of a (n0, n1) count pair.
double ClassEntropy(size_t n0, size_t n1) {
  const double n = static_cast<double>(n0 + n1);
  if (n == 0) return 0.0;
  double h = 0.0;
  for (size_t c : {n0, n1}) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * Log2(p);
  }
  return h;
}

// Number of distinct classes present.
int NumClasses(size_t n0, size_t n1) { return (n0 > 0 ? 1 : 0) + (n1 > 0 ? 1 : 0); }

struct Sample {
  double value;
  int label;
};

// Recursive MDL splitting on [begin, end) of the sorted sample array.
void SplitRecursive(const std::vector<Sample>& samples, size_t begin, size_t end,
                    int remaining_cuts, std::vector<double>* cuts) {
  const size_t n = end - begin;
  if (n < 4 || remaining_cuts <= 0) return;

  size_t total1 = 0;
  for (size_t i = begin; i < end; ++i) total1 += static_cast<size_t>(samples[i].label);
  const size_t total0 = n - total1;
  const double h_all = ClassEntropy(total0, total1);
  if (h_all == 0.0) return;  // pure already

  // Scan candidate boundaries (between distinct values) for the best
  // information gain.
  double best_gain = -1.0;
  size_t best_idx = 0;  // split between best_idx-1 and best_idx
  double best_h1 = 0.0;
  double best_h2 = 0.0;
  size_t best_left0 = 0;
  size_t best_left1 = 0;

  size_t left0 = 0;
  size_t left1 = 0;
  for (size_t i = begin + 1; i < end; ++i) {
    if (samples[i - 1].label == 1) {
      ++left1;
    } else {
      ++left0;
    }
    if (samples[i].value == samples[i - 1].value) continue;
    const size_t right0 = total0 - left0;
    const size_t right1 = total1 - left1;
    const double h1 = ClassEntropy(left0, left1);
    const double h2 = ClassEntropy(right0, right1);
    const double nleft = static_cast<double>(left0 + left1);
    const double nright = static_cast<double>(right0 + right1);
    const double h_split =
        (nleft * h1 + nright * h2) / static_cast<double>(n);
    const double gain = h_all - h_split;
    if (gain > best_gain) {
      best_gain = gain;
      best_idx = i;
      best_h1 = h1;
      best_h2 = h2;
      best_left0 = left0;
      best_left1 = left1;
    }
  }
  if (best_gain <= 0.0) return;

  // Fayyad-Irani MDL acceptance criterion.
  const int k = NumClasses(total0, total1);
  const int k1 = NumClasses(best_left0, best_left1);
  const int k2 = NumClasses(total0 - best_left0, total1 - best_left1);
  const double delta = Log2(std::pow(3.0, k) - 2.0) -
                       (static_cast<double>(k) * h_all -
                        static_cast<double>(k1) * best_h1 -
                        static_cast<double>(k2) * best_h2);
  const double threshold =
      (Log2(static_cast<double>(n) - 1.0) + delta) / static_cast<double>(n);
  if (best_gain <= threshold) return;

  const double cut = (samples[best_idx - 1].value + samples[best_idx].value) / 2.0;
  cuts->push_back(cut);
  SplitRecursive(samples, begin, best_idx, remaining_cuts - 1, cuts);
  SplitRecursive(samples, best_idx, end, remaining_cuts - 1, cuts);
}

}  // namespace

std::vector<int> EqualWidthBins(const std::vector<double>& values, int bins) {
  std::vector<int> out(values.size(), 0);
  if (values.empty() || bins <= 1) return out;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(hi > lo)) return out;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (size_t i = 0; i < values.size(); ++i) {
    int b = static_cast<int>((values[i] - lo) / width);
    out[i] = std::clamp(b, 0, bins - 1);
  }
  return out;
}

std::vector<double> FayyadIraniCuts(const std::vector<double>& values,
                                    const std::vector<int>& labels, int max_cuts) {
  std::vector<Sample> samples;
  const size_t n = std::min(values.size(), labels.size());
  samples.reserve(n);
  for (size_t i = 0; i < n; ++i) samples.push_back({values[i], labels[i]});
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.value < b.value; });
  std::vector<double> cuts;
  SplitRecursive(samples, 0, samples.size(), max_cuts, &cuts);
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

std::vector<int> ApplyCuts(const std::vector<double>& values,
                           const std::vector<double>& cuts) {
  std::vector<int> out(values.size(), 0);
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = static_cast<int>(
        std::upper_bound(cuts.begin(), cuts.end(), values[i]) - cuts.begin());
  }
  return out;
}

}  // namespace exstream
