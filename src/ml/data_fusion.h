// Data fusion baseline [21] (paper Sec. 6.1): "fuses the prediction result
// from each feature based on their precision, recall and correlations."
//
// Each feature's stump acts as a source; sources vote with Bayesian log-odds
// weights derived from their training precision/recall, and correlated
// sources are discounted so a cluster of near-duplicate features does not
// dominate the fused posterior (the correlation handling of Pochampally et
// al.).

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "ml/stump.h"

namespace exstream {

struct DataFusionOptions {
  /// |Pearson| at or above which two feature columns count as correlated.
  double correlation_threshold = 0.9;
  /// Clamp for estimated precision/recall to keep log-odds finite.
  double probability_clamp = 0.99;
};

/// \brief Precision/recall-weighted fusion of per-feature stump votes.
class DataFusion {
 public:
  static Result<DataFusion> Fit(const Dataset& train, DataFusionOptions options = {});

  int PredictRow(const std::vector<double>& row) const;
  std::vector<int> Predict(const Dataset& data) const;

  /// All features (fusion weights them but never drops them).
  std::vector<std::string> SelectedFeatures() const { return feature_names_; }

  /// The fused log-odds contribution weights (diagnostics).
  const std::vector<double>& vote_weights() const { return weight_vote_; }

 private:
  std::vector<std::string> feature_names_;
  std::vector<DecisionStump> stumps_;
  std::vector<double> weight_vote_;     ///< log-odds weight for an abnormal vote
  std::vector<double> weight_no_vote_;  ///< log-odds weight for a normal vote
  double prior_log_odds_ = 0.0;
};

}  // namespace exstream
