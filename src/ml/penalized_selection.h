// Appendix A: "Other ways of finding minimum explanations" — the paper's
// negative result, reproduced.
//
// Before settling on the heuristic pipeline, the authors tried formulating
// feature selection as penalized optimization over selection vectors Theta:
//
//   Function 5:  argmax ||Theta (V_C0 - V_C1)||_2^2 - lambda ||Theta||_1
//     is CONVEX (proved via Jensen's inequality), so maximizing it greedily
//     only finds boundary points — useless for subset selection.
//
//   Function 8:  argmax ||Theta d||_2^2 - lambda1 ||Theta||_2^2
//                                      + lambda2 ||Theta||_1   (lambda1 > lambda2)
//     its maximizer is exactly { i : d_i^2 > lambda1 - lambda2 } — i.e. the
//     "optimization" degenerates to thresholding the per-feature distance,
//     "equal to uninteresting thresholds".
//
// This module implements Function 8's closed-form maximizer plus a
// brute-force optimizer over all selection vectors, so the degeneracy can be
// verified mechanically (see penalized_selection_test.cc and
// bench_appendix_a).

#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace exstream {

/// \brief Objective value of Function 8 for a 0/1 selection over per-feature
/// distances d: sum(sel_i * d_i^2) - lambda1 * |sel| + lambda2 * |sel|
/// (for 0/1 selection vectors, ||Theta||_2^2 == ||Theta||_1 == |sel|).
double PenalizedObjective(const std::vector<double>& distances,
                          const std::vector<bool>& selection, double lambda1,
                          double lambda2);

/// \brief The closed-form maximizer of Function 8: selects exactly the
/// features with d_i^2 > lambda1 - lambda2.
///
/// Requires lambda1 > lambda2 >= 0 (the paper's constraint).
Result<std::vector<bool>> PenalizedSelectionClosedForm(
    const std::vector<double>& distances, double lambda1, double lambda2);

/// \brief Exhaustive maximization of Function 8 over all 2^n selections
/// (n <= 20). Exists to demonstrate that the optimum equals the closed form.
Result<std::vector<bool>> PenalizedSelectionBruteForce(
    const std::vector<double>& distances, double lambda1, double lambda2);

}  // namespace exstream
