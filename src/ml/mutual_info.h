// Mutual information machinery for the Sec. 2.4 analysis (Fig. 8):
// greedy maximization of the joint mutual information between a selected
// feature set and the class label, plus strawman selection orders.
//
// The paper uses this analysis to show that even the best greedy MI strategy
// selects 20-30 features before the gain levels off — too many for a human —
// motivating XStream's heuristic instead.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace exstream {

/// \brief MI (bits) between one discretized feature and the binary label.
double MutualInformation(const std::vector<int>& feature, const std::vector<int>& labels);

/// \brief Joint MI (bits) between a set of discretized features (as one
/// composite variable: the tuple of their bins) and the binary label.
///
/// Estimated by hashing the bin tuple per row; with n rows the estimate
/// saturates near H(label) as the tuple space grows, which produces the
/// characteristic leveling-off of Fig. 8.
double JointMutualInformation(const std::vector<const std::vector<int>*>& features,
                              const std::vector<int>& labels);

/// \brief Feature-ordering strategies compared in Fig. 8.
enum class MiStrategy : uint8_t {
  kGreedyFirstTie = 0,  ///< greedy joint-MI; ties -> lowest feature index
  kGreedyLastTie,       ///< greedy joint-MI; ties -> highest feature index
  kSingleMiRank,        ///< rank once by single-feature MI (descending)
  kRandom,              ///< random order (seeded)
  kReverseRank,         ///< ascending single-feature MI (anti-greedy strawman)
};

std::string_view MiStrategyToString(MiStrategy s);

/// \brief The accumulative MI gain curve of one strategy.
struct MiGainCurve {
  MiStrategy strategy;
  std::vector<std::string> order;        ///< selected feature names, in order
  std::vector<double> accumulated_mi;    ///< joint MI after each selection
};

/// \brief Options for ComputeMiGainCurve.
struct MiCurveOptions {
  int bins = 8;               ///< equal-width discretization granularity
  size_t max_features = 40;   ///< curve length cap
  uint64_t random_seed = 7;   ///< for MiStrategy::kRandom
};

/// \brief Computes the accumulative joint-MI curve for one strategy.
MiGainCurve ComputeMiGainCurve(const Dataset& data, MiStrategy strategy,
                               MiCurveOptions options = {});

/// \brief Number of selections needed before the curve "levels off": the
/// first index after which every marginal gain stays below `epsilon` bits.
size_t LevelOffIndex(const MiGainCurve& curve, double epsilon = 1e-3);

}  // namespace exstream
