// Evaluation metrics: prediction quality and explanation consistency.

#pragma once

#include <string>
#include <vector>

#include "ml/dataset.h"

namespace exstream {

/// \brief Binary confusion counts (positive class = abnormal = 1).
struct ConfusionCounts {
  size_t tp = 0;
  size_t fp = 0;
  size_t tn = 0;
  size_t fn = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
  double Accuracy() const;
};

/// \brief Scores predictions against labels.
ConfusionCounts EvaluatePredictions(const std::vector<int>& labels,
                                    const std::vector<int>& predictions);

/// \brief Consistency metric (Sec. 6.2, Fig. 14): the F-measure of the
/// selected explanation features against the expert ground-truth features.
///
/// A selected feature counts as a true positive if its name matches a ground
/// truth name exactly, OR if it is correlated-equivalent: same event type and
/// attribute with a different aggregate/window (the paper's expert names
/// "free memory size"; any smoothing of it is the same signal).
double ExplanationConsistency(const std::vector<std::string>& selected,
                              const std::vector<std::string>& ground_truth);

/// \brief True if two canonical feature names refer to the same underlying
/// signal (same "EventType.attribute." prefix).
bool SameUnderlyingSignal(const std::string& a, const std::string& b);

}  // namespace exstream
