// Dataset assembly: turning per-interval feature series into labeled
// training examples for the baseline prediction techniques (Sec. 2.2).
//
// The two annotated intervals (abnormal I_A, reference I_R) are sampled at
// regular time points; each sample is a dense row of feature values obtained
// by interpolating every feature's series at that time.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "features/feature.h"

namespace exstream {

/// \brief A dense labeled dataset (label 1 = abnormal, 0 = reference).
struct Dataset {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> rows;  ///< rows x features
  std::vector<int> labels;                ///< 0/1 per row

  size_t num_rows() const { return rows.size(); }
  size_t num_features() const { return feature_names.size(); }
};

/// \brief Per-feature standardization parameters fitted on a dataset.
struct Standardizer {
  std::vector<double> mean;
  std::vector<double> stddev;

  /// Fits on `data` and transforms it in place.
  void FitTransform(Dataset* data);
  /// Applies previously fitted parameters (test data).
  void Transform(Dataset* data) const;
  /// Applies to a single row.
  std::vector<double> TransformRow(const std::vector<double>& row) const;
};

/// \brief Builds a labeled dataset from matched abnormal/reference features.
///
/// \param abnormal features materialized over I_A
/// \param reference features materialized over I_R (same specs, same order)
/// \param samples_per_interval time points sampled per interval
Result<Dataset> BuildDataset(const std::vector<Feature>& abnormal,
                             const std::vector<Feature>& reference,
                             size_t samples_per_interval = 64);

/// \brief Deterministic row-level split for holdout evaluation: every k-th
/// row (per class) goes to the test set.
void SplitDataset(const Dataset& data, size_t test_every_k, Dataset* train,
                  Dataset* test);

}  // namespace exstream
