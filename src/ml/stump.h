// Decision stumps: one-feature threshold classifiers shared by the majority
// voting [17] and data fusion [21] baselines, which "make full use of every
// feature" (Sec. 6.1).

#pragma once

#include <vector>

#include "ml/dataset.h"

namespace exstream {

/// \brief A single-feature threshold classifier.
///
/// Predicts abnormal (1) when `polarity * value >= polarity * threshold`.
struct DecisionStump {
  size_t feature = 0;
  double threshold = 0.0;
  int polarity = 1;  ///< +1: high values abnormal; -1: low values abnormal
  double train_accuracy = 0.5;

  int PredictRow(const std::vector<double>& row) const {
    const double v = row[feature];
    return (polarity > 0 ? v >= threshold : v <= threshold) ? 1 : 0;
  }
};

/// \brief Fits the best stump for one feature by scanning all candidate
/// thresholds (midpoints between consecutive distinct sorted values).
DecisionStump FitStump(const Dataset& data, size_t feature);

/// \brief Fits one stump per feature.
std::vector<DecisionStump> FitAllStumps(const Dataset& data);

}  // namespace exstream
