// Discretization of continuous features, used by mutual information and
// cited as the inspiration for the entropy distance (Fayyad & Irani [11]).

#pragma once

#include <vector>

namespace exstream {

/// \brief Equal-width binning into `bins` buckets over [min, max].
///
/// Returns per-value bin indices in [0, bins). Constant inputs map to bin 0.
std::vector<int> EqualWidthBins(const std::vector<double>& values, int bins);

/// \brief Entropy-based (Fayyad-Irani) recursive binary discretization.
///
/// Finds cut points that minimize the class-information entropy of the
/// partition, recursing while the MDL criterion accepts the split.
///
/// \param values the continuous feature values
/// \param labels 0/1 class labels, same length
/// \param max_cuts hard recursion bound
/// \return sorted cut points (possibly empty when no split is accepted)
std::vector<double> FayyadIraniCuts(const std::vector<double>& values,
                                    const std::vector<int>& labels,
                                    int max_cuts = 8);

/// \brief Assigns each value the index of its interval among sorted cuts.
std::vector<int> ApplyCuts(const std::vector<double>& values,
                           const std::vector<double>& cuts);

}  // namespace exstream
