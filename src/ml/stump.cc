#include "ml/stump.h"

#include <algorithm>

namespace exstream {

DecisionStump FitStump(const Dataset& data, size_t feature) {
  DecisionStump best;
  best.feature = feature;
  const size_t n = data.num_rows();
  if (n == 0) return best;

  std::vector<std::pair<double, int>> sorted;
  sorted.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sorted.emplace_back(data.rows[i][feature], data.labels[i]);
  }
  std::sort(sorted.begin(), sorted.end());

  size_t total1 = 0;
  for (const auto& [_, y] : sorted) total1 += static_cast<size_t>(y);
  const size_t total0 = n - total1;

  // For threshold t between positions k-1 and k:
  //   polarity +1 predicts 1 for values >= t: correct = (1s at >= k) + (0s at < k)
  //   polarity -1 predicts 1 for values <= t: correct = (1s at < k) + (0s at >= k)
  size_t left1 = 0;  // label-1 count among sorted[0..k)
  double best_acc = -1.0;
  for (size_t k = 1; k < n; ++k) {
    if (sorted[k - 1].second == 1) ++left1;
    if (sorted[k].first == sorted[k - 1].first) continue;
    const size_t left0 = k - left1;
    const size_t right1 = total1 - left1;
    const size_t right0 = total0 - left0;
    const double threshold = (sorted[k - 1].first + sorted[k].first) / 2.0;

    const double acc_pos =
        static_cast<double>(right1 + left0) / static_cast<double>(n);
    const double acc_neg =
        static_cast<double>(left1 + right0) / static_cast<double>(n);
    if (acc_pos > best_acc) {
      best_acc = acc_pos;
      best.threshold = threshold;
      best.polarity = 1;
    }
    if (acc_neg > best_acc) {
      best_acc = acc_neg;
      best.threshold = threshold;
      best.polarity = -1;
    }
  }
  if (best_acc < 0) {
    // Constant feature: majority-class stump.
    best.threshold = sorted.front().first;
    best.polarity = total1 >= total0 ? 1 : -1;
    best_acc = static_cast<double>(std::max(total0, total1)) / static_cast<double>(n);
  }
  best.train_accuracy = best_acc;
  return best;
}

std::vector<DecisionStump> FitAllStumps(const Dataset& data) {
  std::vector<DecisionStump> out;
  out.reserve(data.num_features());
  for (size_t f = 0; f < data.num_features(); ++f) out.push_back(FitStump(data, f));
  return out;
}

}  // namespace exstream
