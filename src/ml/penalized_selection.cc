#include "ml/penalized_selection.h"

#include "common/strings.h"

namespace exstream {

double PenalizedObjective(const std::vector<double>& distances,
                          const std::vector<bool>& selection, double lambda1,
                          double lambda2) {
  double value = 0.0;
  for (size_t i = 0; i < distances.size() && i < selection.size(); ++i) {
    if (!selection[i]) continue;
    value += distances[i] * distances[i] - lambda1 + lambda2;
  }
  return value;
}

Result<std::vector<bool>> PenalizedSelectionClosedForm(
    const std::vector<double>& distances, double lambda1, double lambda2) {
  if (!(lambda1 > lambda2) || lambda2 < 0) {
    return Status::InvalidArgument("requires lambda1 > lambda2 >= 0");
  }
  std::vector<bool> selection(distances.size(), false);
  const double threshold = lambda1 - lambda2;
  for (size_t i = 0; i < distances.size(); ++i) {
    selection[i] = distances[i] * distances[i] > threshold;
  }
  return selection;
}

Result<std::vector<bool>> PenalizedSelectionBruteForce(
    const std::vector<double>& distances, double lambda1, double lambda2) {
  if (!(lambda1 > lambda2) || lambda2 < 0) {
    return Status::InvalidArgument("requires lambda1 > lambda2 >= 0");
  }
  const size_t n = distances.size();
  if (n > 20) {
    return Status::InvalidArgument(
        StrFormat("brute force limited to 20 features, got %zu", n));
  }
  std::vector<bool> best(n, false);
  double best_value = 0.0;  // the empty selection scores 0
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    std::vector<bool> selection(n, false);
    for (size_t i = 0; i < n; ++i) selection[i] = (mask >> i) & 1;
    const double value = PenalizedObjective(distances, selection, lambda1, lambda2);
    if (value > best_value) {
      best_value = value;
      best = selection;
    }
  }
  return best;
}

}  // namespace exstream
