#include "ml/mutual_info.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <random>
#include <unordered_map>

#include "ml/discretize.h"

namespace exstream {

namespace {

double Log2(double x) { return std::log(x) / std::log(2.0); }

// MI between an integer-keyed composite variable and the binary label.
double MiFromKeys(const std::vector<uint64_t>& keys, const std::vector<int>& labels) {
  const size_t n = std::min(keys.size(), labels.size());
  if (n == 0) return 0.0;
  std::unordered_map<uint64_t, std::array<size_t, 2>> joint;
  size_t label_count[2] = {0, 0};
  for (size_t i = 0; i < n; ++i) {
    auto& cell = joint[keys[i]];
    ++cell[static_cast<size_t>(labels[i])];
    ++label_count[static_cast<size_t>(labels[i])];
  }
  const double dn = static_cast<double>(n);
  double mi = 0.0;
  for (const auto& [_, counts] : joint) {
    const double px = static_cast<double>(counts[0] + counts[1]) / dn;
    for (int y = 0; y < 2; ++y) {
      if (counts[y] == 0 || label_count[y] == 0) continue;
      const double pxy = static_cast<double>(counts[y]) / dn;
      const double py = static_cast<double>(label_count[y]) / dn;
      mi += pxy * Log2(pxy / (px * py));
    }
  }
  return std::max(0.0, mi);
}

// Combines per-feature bin ids into composite keys with FNV-style mixing.
std::vector<uint64_t> CompositeKeys(const std::vector<const std::vector<int>*>& features,
                                    size_t n) {
  std::vector<uint64_t> keys(n, 1469598103934665603ull);
  for (const auto* f : features) {
    for (size_t i = 0; i < n && i < f->size(); ++i) {
      keys[i] ^= static_cast<uint64_t>((*f)[i]) + 0x9e3779b97f4a7c15ull;
      keys[i] *= 1099511628211ull;
    }
  }
  return keys;
}

}  // namespace

double MutualInformation(const std::vector<int>& feature,
                         const std::vector<int>& labels) {
  std::vector<uint64_t> keys(feature.size());
  for (size_t i = 0; i < feature.size(); ++i) keys[i] = static_cast<uint64_t>(feature[i]);
  return MiFromKeys(keys, labels);
}

double JointMutualInformation(const std::vector<const std::vector<int>*>& features,
                              const std::vector<int>& labels) {
  if (features.empty()) return 0.0;
  return MiFromKeys(CompositeKeys(features, labels.size()), labels);
}

std::string_view MiStrategyToString(MiStrategy s) {
  switch (s) {
    case MiStrategy::kGreedyFirstTie:
      return "greedy(first-tie)";
    case MiStrategy::kGreedyLastTie:
      return "greedy(last-tie)";
    case MiStrategy::kSingleMiRank:
      return "single-MI-rank";
    case MiStrategy::kRandom:
      return "random";
    case MiStrategy::kReverseRank:
      return "reverse-rank";
  }
  return "?";
}

MiGainCurve ComputeMiGainCurve(const Dataset& data, MiStrategy strategy,
                               MiCurveOptions options) {
  MiGainCurve curve;
  curve.strategy = strategy;
  const size_t d = data.num_features();
  if (d == 0 || data.num_rows() == 0) return curve;

  // Discretize every feature column once.
  std::vector<std::vector<int>> binned(d);
  std::vector<double> column(data.num_rows());
  for (size_t f = 0; f < d; ++f) {
    for (size_t i = 0; i < data.num_rows(); ++i) column[i] = data.rows[i][f];
    binned[f] = EqualWidthBins(column, options.bins);
  }

  const size_t limit = std::min(options.max_features, d);
  std::vector<size_t> order;

  const bool greedy = strategy == MiStrategy::kGreedyFirstTie ||
                      strategy == MiStrategy::kGreedyLastTie;
  if (greedy) {
    std::vector<bool> used(d, false);
    std::vector<const std::vector<int>*> selected;
    for (size_t step = 0; step < limit; ++step) {
      double best_mi = -1.0;
      size_t best_f = d;
      for (size_t f = 0; f < d; ++f) {
        if (used[f]) continue;
        selected.push_back(&binned[f]);
        const double mi = JointMutualInformation(selected, data.labels);
        selected.pop_back();
        const bool better =
            mi > best_mi + 1e-12 ||
            (std::fabs(mi - best_mi) <= 1e-12 &&
             strategy == MiStrategy::kGreedyLastTie);
        if (better) {
          best_mi = mi;
          best_f = f;
        }
      }
      if (best_f == d) break;
      used[best_f] = true;
      order.push_back(best_f);
      selected.push_back(&binned[best_f]);
    }
  } else {
    std::vector<size_t> idx(d);
    std::iota(idx.begin(), idx.end(), size_t{0});
    if (strategy == MiStrategy::kRandom) {
      std::mt19937_64 gen(options.random_seed);
      std::shuffle(idx.begin(), idx.end(), gen);
    } else {
      std::vector<double> single(d);
      for (size_t f = 0; f < d; ++f) single[f] = MutualInformation(binned[f], data.labels);
      std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        return strategy == MiStrategy::kReverseRank ? single[a] < single[b]
                                                    : single[a] > single[b];
      });
    }
    idx.resize(limit);
    order = idx;
  }

  std::vector<const std::vector<int>*> selected;
  for (size_t f : order) {
    selected.push_back(&binned[f]);
    curve.order.push_back(data.feature_names[f]);
    curve.accumulated_mi.push_back(JointMutualInformation(selected, data.labels));
  }
  return curve;
}

size_t LevelOffIndex(const MiGainCurve& curve, double epsilon) {
  const auto& mi = curve.accumulated_mi;
  if (mi.empty()) return 0;
  size_t level_off = mi.size();
  for (size_t i = mi.size(); i-- > 1;) {
    if (mi[i] - mi[i - 1] > epsilon) break;
    level_off = i;
  }
  return level_off;
}

}  // namespace exstream
