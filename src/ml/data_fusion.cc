#include "ml/data_fusion.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "ml/metrics.h"
#include "ts/clustering.h"

namespace exstream {

Result<DataFusion> DataFusion::Fit(const Dataset& train, DataFusionOptions options) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit data fusion on empty data");
  }
  DataFusion model;
  model.feature_names_ = train.feature_names;
  model.stumps_ = FitAllStumps(train);
  const size_t d = model.stumps_.size();

  // Per-source precision/recall on training data.
  std::vector<double> true_pos_rate(d, 0.5);   // P(vote=1 | abnormal)   (recall)
  std::vector<double> false_pos_rate(d, 0.5);  // P(vote=1 | normal)
  size_t n_pos = 0;
  for (int y : train.labels) n_pos += static_cast<size_t>(y);
  const size_t n_neg = train.num_rows() - n_pos;

  std::vector<std::vector<int>> votes(d, std::vector<int>(train.num_rows(), 0));
  for (size_t f = 0; f < d; ++f) {
    size_t tp = 0;
    size_t fp = 0;
    for (size_t i = 0; i < train.num_rows(); ++i) {
      const int v = model.stumps_[f].PredictRow(train.rows[i]);
      votes[f][i] = v;
      if (v == 1 && train.labels[i] == 1) ++tp;
      if (v == 1 && train.labels[i] == 0) ++fp;
    }
    if (n_pos > 0) true_pos_rate[f] = static_cast<double>(tp) / static_cast<double>(n_pos);
    if (n_neg > 0) false_pos_rate[f] = static_cast<double>(fp) / static_cast<double>(n_neg);
  }

  // Correlation discount: sources whose vote columns are highly correlated
  // share one "effective" vote, so each member's weight is divided by its
  // cluster size.
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t a = 0; a < d; ++a) {
    std::vector<double> va(votes[a].begin(), votes[a].end());
    for (size_t b = a + 1; b < d; ++b) {
      std::vector<double> vb(votes[b].begin(), votes[b].end());
      if (std::fabs(PearsonCorrelation(va, vb)) >= options.correlation_threshold) {
        edges.emplace_back(a, b);
      }
    }
  }
  const ClusteringResult comps = ConnectedComponents(d, edges);
  std::vector<size_t> cluster_size(static_cast<size_t>(comps.num_clusters), 0);
  for (int c : comps.labels) ++cluster_size[static_cast<size_t>(c)];

  const double clamp = options.probability_clamp;
  auto clamped = [&](double p) { return std::clamp(p, 1.0 - clamp, clamp); };

  model.weight_vote_.resize(d);
  model.weight_no_vote_.resize(d);
  for (size_t f = 0; f < d; ++f) {
    const double tpr = clamped(true_pos_rate[f]);
    const double fpr = clamped(false_pos_rate[f]);
    const double discount =
        1.0 / static_cast<double>(cluster_size[static_cast<size_t>(comps.labels[f])]);
    // Naive-Bayes log-likelihood ratios for a positive and a negative vote.
    model.weight_vote_[f] = discount * std::log(tpr / fpr);
    model.weight_no_vote_[f] = discount * std::log((1.0 - tpr) / (1.0 - fpr));
  }
  const double p_prior =
      clamped(static_cast<double>(n_pos) / static_cast<double>(train.num_rows()));
  model.prior_log_odds_ = std::log(p_prior / (1.0 - p_prior));
  return model;
}

int DataFusion::PredictRow(const std::vector<double>& row) const {
  double log_odds = prior_log_odds_;
  for (size_t f = 0; f < stumps_.size(); ++f) {
    log_odds += stumps_[f].PredictRow(row) == 1 ? weight_vote_[f] : weight_no_vote_[f];
  }
  return log_odds >= 0.0 ? 1 : 0;
}

std::vector<int> DataFusion::Predict(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.num_rows());
  for (const auto& row : data.rows) out.push_back(PredictRow(row));
  return out;
}

}  // namespace exstream
