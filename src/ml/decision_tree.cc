#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace exstream {

namespace {

// Gini impurity of a (n0, n1) label count pair.
double Gini(size_t n0, size_t n1) {
  const double n = static_cast<double>(n0 + n1);
  if (n == 0) return 0.0;
  const double p0 = static_cast<double>(n0) / n;
  const double p1 = static_cast<double>(n1) / n;
  return 1.0 - p0 * p0 - p1 * p1;
}

struct BestSplit {
  bool found = false;
  size_t feature = 0;
  double threshold = 0.0;
  double gain = 0.0;
};

BestSplit FindBestSplit(const Dataset& data, const std::vector<size_t>& indices) {
  BestSplit best;
  size_t total1 = 0;
  for (size_t i : indices) total1 += static_cast<size_t>(data.labels[i]);
  const size_t total0 = indices.size() - total1;
  const double parent_gini = Gini(total0, total1);
  if (parent_gini == 0.0) return best;

  std::vector<std::pair<double, int>> sorted;
  sorted.reserve(indices.size());
  for (size_t f = 0; f < data.num_features(); ++f) {
    sorted.clear();
    for (size_t i : indices) sorted.emplace_back(data.rows[i][f], data.labels[i]);
    std::sort(sorted.begin(), sorted.end());
    size_t left0 = 0;
    size_t left1 = 0;
    for (size_t k = 1; k < sorted.size(); ++k) {
      if (sorted[k - 1].second == 1) {
        ++left1;
      } else {
        ++left0;
      }
      if (sorted[k].first == sorted[k - 1].first) continue;
      const size_t right0 = total0 - left0;
      const size_t right1 = total1 - left1;
      const double nl = static_cast<double>(left0 + left1);
      const double nr = static_cast<double>(right0 + right1);
      const double n = nl + nr;
      const double child =
          (nl / n) * Gini(left0, left1) + (nr / n) * Gini(right0, right1);
      const double gain = parent_gini - child;
      if (gain > best.gain) {
        best.found = true;
        best.feature = f;
        best.threshold = (sorted[k - 1].first + sorted[k].first) / 2.0;
        best.gain = gain;
      }
    }
  }
  return best;
}

}  // namespace

std::unique_ptr<DecisionTree::Node> DecisionTree::BuildNode(
    const Dataset& data, const std::vector<size_t>& indices, size_t depth,
    const DecisionTreeOptions& options) {
  auto node = std::make_unique<Node>();
  size_t n1 = 0;
  for (size_t i : indices) n1 += static_cast<size_t>(data.labels[i]);
  node->prediction = n1 * 2 >= indices.size() ? 1 : 0;

  if (depth >= options.max_depth || indices.size() < options.min_samples_split) {
    return node;
  }
  const BestSplit split = FindBestSplit(data, indices);
  if (!split.found || split.gain < options.min_gini_gain) return node;

  std::vector<size_t> left_idx;
  std::vector<size_t> right_idx;
  for (size_t i : indices) {
    if (data.rows[i][split.feature] < split.threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node;

  node->leaf = false;
  node->feature = split.feature;
  node->threshold = split.threshold;
  node->left = BuildNode(data, left_idx, depth + 1, options);
  node->right = BuildNode(data, right_idx, depth + 1, options);
  return node;
}

Result<DecisionTree> DecisionTree::Fit(const Dataset& train,
                                       DecisionTreeOptions options) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit decision tree on empty data");
  }
  DecisionTree tree;
  tree.feature_names_ = train.feature_names;
  std::vector<size_t> indices(train.num_rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  tree.root_ = tree.BuildNode(train, indices, 0, options);
  return tree;
}

int DecisionTree::PredictRow(const std::vector<double>& row) const {
  const Node* node = root_.get();
  while (node != nullptr && !node->leaf) {
    node = row[node->feature] < node->threshold ? node->left.get() : node->right.get();
  }
  return node != nullptr ? node->prediction : 0;
}

std::vector<int> DecisionTree::Predict(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.num_rows());
  for (const auto& row : data.rows) out.push_back(PredictRow(row));
  return out;
}

void DecisionTree::CollectFeatures(const Node* node,
                                   std::vector<std::string>* out) const {
  if (node == nullptr || node->leaf) return;
  const std::string& name = feature_names_[node->feature];
  if (std::find(out->begin(), out->end(), name) == out->end()) out->push_back(name);
  CollectFeatures(node->left.get(), out);
  CollectFeatures(node->right.get(), out);
}

std::vector<std::string> DecisionTree::SelectedFeatures() const {
  std::vector<std::string> out;
  CollectFeatures(root_.get(), &out);
  return out;
}

size_t DecisionTree::NumSplits() const { return SelectedFeatures().size(); }

void DecisionTree::Print(const Node* node, int indent, std::string* out) const {
  if (node == nullptr) return;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (node->leaf) {
    *out += pad + (node->prediction == 1 ? "Abnormal" : "Normal") + "\n";
    return;
  }
  *out += pad + StrFormat("%s < %.6g ?", feature_names_[node->feature].c_str(),
                          node->threshold) +
          "\n";
  Print(node->left.get(), indent + 1, out);
  Print(node->right.get(), indent + 1, out);
}

std::string DecisionTree::ToString() const {
  std::string out;
  Print(root_.get(), 0, &out);
  return out;
}

}  // namespace exstream
