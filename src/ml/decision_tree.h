// CART decision tree baseline [2] (paper Sec. 2.2, Fig. 6).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"

namespace exstream {

/// \brief Training options for the decision tree.
struct DecisionTreeOptions {
  size_t max_depth = 4;
  size_t min_samples_split = 8;
  double min_gini_gain = 1e-4;
};

/// \brief A binary CART tree with axis-aligned threshold splits.
class DecisionTree {
 public:
  static Result<DecisionTree> Fit(const Dataset& train, DecisionTreeOptions options = {});

  int PredictRow(const std::vector<double>& row) const;
  std::vector<int> Predict(const Dataset& data) const;

  /// Unique split features in top-down, left-to-right order — the model's
  /// "selected features" (Fig. 6 uses 3 internal nodes).
  std::vector<std::string> SelectedFeatures() const;

  /// Number of internal nodes.
  size_t NumSplits() const;

  /// Pretty-prints the tree (Fig. 6 rendering in examples/benches).
  std::string ToString() const;

 private:
  struct Node {
    bool leaf = true;
    int prediction = 0;
    size_t feature = 0;
    double threshold = 0.0;
    std::unique_ptr<Node> left;   // feature < threshold
    std::unique_ptr<Node> right;  // feature >= threshold
  };

  std::unique_ptr<Node> BuildNode(const Dataset& data,
                                  const std::vector<size_t>& indices, size_t depth,
                                  const DecisionTreeOptions& options);
  void CollectFeatures(const Node* node, std::vector<std::string>* out) const;
  void Print(const Node* node, int indent, std::string* out) const;

  std::unique_ptr<Node> root_;
  std::vector<std::string> feature_names_;
};

}  // namespace exstream
