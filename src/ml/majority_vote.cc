#include "ml/majority_vote.h"

namespace exstream {

Result<MajorityVote> MajorityVote::Fit(const Dataset& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit majority vote on empty data");
  }
  MajorityVote model;
  model.feature_names_ = train.feature_names;
  model.stumps_ = FitAllStumps(train);
  return model;
}

int MajorityVote::PredictRow(const std::vector<double>& row) const {
  size_t votes_abnormal = 0;
  for (const DecisionStump& s : stumps_) {
    votes_abnormal += static_cast<size_t>(s.PredictRow(row));
  }
  return votes_abnormal * 2 >= stumps_.size() ? 1 : 0;
}

std::vector<int> MajorityVote::Predict(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.num_rows());
  for (const auto& row : data.rows) out.push_back(PredictRow(row));
  return out;
}

}  // namespace exstream
