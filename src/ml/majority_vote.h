// Majority voting baseline [17] (paper Sec. 6.1): "treats features equally
// and uses the label which counts the most as the prediction result."

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "ml/stump.h"

namespace exstream {

/// \brief Majority vote over one decision stump per feature.
///
/// Does not select features — every feature votes — so its "explanation" is
/// the whole feature space (which is exactly why its consistency and
/// conciseness are poor in Fig. 14/15).
class MajorityVote {
 public:
  static Result<MajorityVote> Fit(const Dataset& train);

  int PredictRow(const std::vector<double>& row) const;
  std::vector<int> Predict(const Dataset& data) const;

  /// All features (the method has no selection step).
  std::vector<std::string> SelectedFeatures() const { return feature_names_; }

  const std::vector<DecisionStump>& stumps() const { return stumps_; }

 private:
  std::vector<std::string> feature_names_;
  std::vector<DecisionStump> stumps_;
};

}  // namespace exstream
