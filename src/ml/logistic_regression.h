// Logistic regression baseline [2] (paper Sec. 2.2, Fig. 5).
//
// Trained with proximal gradient descent supporting both L2 (ridge) and L1
// (lasso) penalties; L1 yields the sparse-but-still-large models the paper
// reports (~20-30 non-zero weights out of ~345 features).

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"

namespace exstream {

/// \brief Training options for logistic regression.
struct LogisticRegressionOptions {
  size_t max_iterations = 500;
  double learning_rate = 0.1;
  double l2 = 1e-3;
  double l1 = 8e-3;
  double tolerance = 1e-7;  ///< stop when loss improvement falls below this
};

/// \brief A trained logistic model: weights over standardized features.
class LogisticRegression {
 public:
  /// Fits on `train`; standardization is handled internally.
  static Result<LogisticRegression> Fit(const Dataset& train,
                                        LogisticRegressionOptions options = {});

  /// Predicted probability of the abnormal class for a raw feature row.
  double PredictProbability(const std::vector<double>& row) const;

  /// Hard 0/1 predictions for a dataset.
  std::vector<int> Predict(const Dataset& data) const;

  /// Features with non-zero weight, sorted by |weight| descending — the
  /// "model as explanation" view of Fig. 5.
  std::vector<std::string> SelectedFeatures() const;

  /// (feature name, weight) pairs sorted by |weight| descending.
  std::vector<std::pair<std::string, double>> RankedWeights() const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  double final_loss() const { return final_loss_; }

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  double final_loss_ = 0.0;
  Standardizer standardizer_;
};

}  // namespace exstream
