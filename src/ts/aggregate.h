// Sliding-window aggregation: raw features -> smoothed features (Sec. 3).
//
// "We apply sliding windows over the time series features and over each
//  window, aggregate functions including count and avg to generate new time
//  series features." The architecture is open: new aggregate kinds plug into
//  the switch in ApplyWindowAggregate and the registry in feature_space.cc.

#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "ts/time_series.h"

namespace exstream {

/// \brief Aggregate functions applicable over a sliding window.
enum class AggregateKind : uint8_t {
  kRaw = 0,    ///< identity: the raw time series itself
  kMean,       ///< average of values in the window (paper's "...Mean")
  kSum,        ///< sum of values in the window
  kCount,      ///< number of events in the window (paper's "...Frequency")
  kMin,        ///< minimum value in the window
  kMax,        ///< maximum value in the window
  kStdDev,     ///< standard deviation of values in the window
};

std::string_view AggregateKindToString(AggregateKind kind);
Result<AggregateKind> AggregateKindFromString(std::string_view name);

/// \brief Applies `kind` over tumbling-aligned sliding windows of length
/// `window` time units advancing by `slide` units.
///
/// Each output sample is stamped with the window's end time. Windows with no
/// input samples produce no output (except kCount, which emits 0 so that
/// frequency features capture silence — e.g. a sensor that stops reporting,
/// the supply-chain "missing monitoring" anomaly).
///
/// \param series input samples (any density)
/// \param kind the aggregate to apply
/// \param window window length in time units (> 0)
/// \param slide slide step in time units (> 0, defaults to window)
Result<TimeSeries> ApplyWindowAggregate(const TimeSeries& series, AggregateKind kind,
                                        Timestamp window, Timestamp slide = 0);

}  // namespace exstream
