#include "ts/correlation.h"

#include "common/stats.h"

namespace exstream {

double AlignedCorrelation(const TimeSeries& a, const TimeSeries& b, size_t points) {
  if (a.size() < 2 || b.size() < 2 || points < 2) return 0.0;
  const TimeSeries ra = a.Resample(points);
  const TimeSeries rb = b.Resample(points);
  return PearsonCorrelation(ra.values(), rb.values());
}

}  // namespace exstream
