// TimeSeries: the representation of features (Sec. 3).
//
// Each attribute of each event type, restricted to an interval, forms a raw
// feature: a time series. Smoothed features are produced by windowed
// aggregation (see aggregate.h).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"

namespace exstream {

/// \brief An ordered sequence of (timestamp, value) samples.
///
/// Invariant: times are non-decreasing and times.size() == values.size().
/// NaN values are rejected at append time so downstream math stays total.
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::vector<Timestamp> times, std::vector<double> values);

  /// Appends a sample; ignores NaN values; keeps the time order invariant by
  /// rejecting out-of-order timestamps.
  Status Append(Timestamp t, double v);

  /// Pre-allocates capacity for n samples.
  void Reserve(size_t n) {
    times_.reserve(n);
    values_.reserve(n);
  }

  /// \brief Appends `n` samples from parallel arrays in one shot, skipping
  /// entries whose tag equals `skip_tag` or whose value is NaN (exactly the
  /// samples Append would drop). Precondition: `ts` is non-decreasing and
  /// `ts[0] >= end_time()` — the archive's column scans guarantee this, which
  /// is what lets the all-valid common case reduce to two bulk inserts.
  void AppendColumnRange(const Timestamp* ts, const double* vals,
                         const uint8_t* tags, uint8_t skip_tag, size_t n);

  /// \brief Appends `n` pre-aggregated samples (e.g. per-window aggregates
  /// folded from archive tiers) as two bulk inserts — no per-sample checks.
  /// Precondition: `ts` is non-decreasing with `ts[0] >= end_time()`, and
  /// `vals` is NaN-free (window aggregates of finite samples are finite).
  void AppendAggregatedSpan(const Timestamp* ts, const double* vals, size_t n);

  size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  const std::vector<Timestamp>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  Timestamp time(size_t i) const { return times_[i]; }
  double value(size_t i) const { return values_[i]; }

  Timestamp start_time() const { return times_.front(); }
  Timestamp end_time() const { return times_.back(); }

  /// \brief Samples per unit time over the covered span; 0 for < 2 points.
  ///
  /// This is the "frequency" used by interval labeling (Sec. 5.2).
  double Frequency() const;

  /// \brief Sub-series with timestamps inside [interval.lower, interval.upper].
  TimeSeries Slice(const TimeInterval& interval) const;

  /// \brief Linear interpolation at time t; clamps outside the covered span.
  double InterpolateAt(Timestamp t) const;

  /// \brief Resamples to exactly n equally spaced points across the span via
  /// linear interpolation. Returns an empty series if this one is empty;
  /// replicates the single value if this one has one point.
  TimeSeries Resample(size_t n) const;

  /// \brief Appends Resample(n)'s values straight to `out`, skipping the
  /// intermediate TimeSeries (and its timestamp vector). Same values bit for
  /// bit; appends nothing if this series is empty or n == 0. This is what the
  /// correlation filter's alignment uses.
  void ResampleValuesInto(size_t n, std::vector<double>* out) const;

  /// \brief Values z-normalized with the series' own mean/stddev
  /// (stddev 0 => all zeros).
  std::vector<double> ZNormalizedValues() const;

  std::string ToString(size_t max_points = 8) const;

 private:
  std::vector<Timestamp> times_;
  std::vector<double> values_;
};

}  // namespace exstream
