// Agglomerative hierarchical clustering and graph components.
//
// Used by (a) interval labeling in the false-positive filter (Sec. 5.2):
// aligned intervals are clustered and intervals that land in the annotated
// anomaly's cluster inherit the "abnormal" label; and (b) correlation
// clustering of surviving features (Sec. 5.3), where the correlation graph's
// connected components form the clusters.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/result.h"

namespace exstream {

/// \brief Linkage criterion for agglomerative clustering.
enum class Linkage : uint8_t {
  kSingle = 0,   ///< min pairwise distance between clusters
  kComplete,     ///< max pairwise distance
  kAverage,      ///< mean pairwise distance
};

/// \brief Output of AgglomerativeCluster: per-item cluster labels in
/// [0, num_clusters).
struct ClusteringResult {
  std::vector<int> labels;
  int num_clusters = 0;
};

/// \brief Symmetric n x n distance matrix in one flat allocation (row-major),
/// replacing the nested vector-of-vectors layout on the labeling hot path:
/// one contiguous block instead of n+1 allocations, and the clustering inner
/// loops walk it with plain index arithmetic.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(size_t n) : n_(n), cells_(n * n, 0.0) {}

  size_t size() const { return n_; }
  double at(size_t i, size_t j) const { return cells_[i * n_ + j]; }
  /// Sets both (i, j) and (j, i); the matrix stays symmetric by construction.
  void Set(size_t i, size_t j, double d) {
    cells_[i * n_ + j] = d;
    cells_[j * n_ + i] = d;
  }

 private:
  size_t n_;
  std::vector<double> cells_;
};

/// \brief Agglomerative clustering over a full symmetric distance matrix.
///
/// Merging proceeds greedily on the smallest inter-cluster distance and stops
/// when the smallest remaining distance exceeds `cut_threshold`.
///
/// \param distance n x n symmetric matrix with zero diagonal
/// \param cut_threshold stop merging beyond this linkage distance
/// \param linkage linkage criterion (default average, as used by labeling)
Result<ClusteringResult> AgglomerativeCluster(const DistanceMatrix& distance,
                                              double cut_threshold,
                                              Linkage linkage = Linkage::kAverage);

/// Nested-vector convenience overload; validates squareness and repacks into
/// a DistanceMatrix.
Result<ClusteringResult> AgglomerativeCluster(
    const std::vector<std::vector<double>>& distance, double cut_threshold,
    Linkage linkage = Linkage::kAverage);

/// \brief Connected components of an undirected graph on n nodes.
///
/// \return per-node component labels in [0, num_components)
ClusteringResult ConnectedComponents(size_t n,
                                     const std::vector<std::pair<size_t, size_t>>& edges);

}  // namespace exstream
