#include "ts/clustering.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/strings.h"

namespace exstream {

namespace {

// Distance between two clusters under the given linkage.
double ClusterDistance(const DistanceMatrix& d,
                       const std::vector<size_t>& a, const std::vector<size_t>& b,
                       Linkage linkage) {
  double best = linkage == Linkage::kComplete ? 0.0
                                              : std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (size_t i : a) {
    for (size_t j : b) {
      const double dij = d.at(i, j);
      switch (linkage) {
        case Linkage::kSingle:
          best = std::min(best, dij);
          break;
        case Linkage::kComplete:
          best = std::max(best, dij);
          break;
        case Linkage::kAverage:
          sum += dij;
          break;
      }
    }
  }
  if (linkage == Linkage::kAverage) {
    return sum / static_cast<double>(a.size() * b.size());
  }
  return best;
}

}  // namespace

Result<ClusteringResult> AgglomerativeCluster(
    const std::vector<std::vector<double>>& distance, double cut_threshold,
    Linkage linkage) {
  const size_t n = distance.size();
  for (const auto& row : distance) {
    if (row.size() != n) {
      return Status::InvalidArgument("distance matrix must be square");
    }
  }
  DistanceMatrix flat(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) flat.Set(i, j, distance[i][j]);
  }
  return AgglomerativeCluster(flat, cut_threshold, linkage);
}

Result<ClusteringResult> AgglomerativeCluster(const DistanceMatrix& distance,
                                              double cut_threshold,
                                              Linkage linkage) {
  const size_t n = distance.size();
  ClusteringResult out;
  if (n == 0) return out;

  // Active clusters as member index lists. O(n^3) worst case, fine for the
  // interval/feature counts this is applied to (tens to low hundreds).
  std::vector<std::vector<size_t>> clusters(n);
  for (size_t i = 0; i < n; ++i) clusters[i] = {i};

  for (;;) {
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0;
    size_t bj = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        const double dij = ClusterDistance(distance, clusters[i], clusters[j], linkage);
        if (dij < best) {
          best = dij;
          bi = i;
          bj = j;
        }
      }
    }
    if (clusters.size() <= 1 || best > cut_threshold) break;
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(), clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<long>(bj));
  }

  out.labels.assign(n, -1);
  out.num_clusters = static_cast<int>(clusters.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t i : clusters[c]) out.labels[i] = static_cast<int>(c);
  }
  return out;
}

ClusteringResult ConnectedComponents(
    size_t n, const std::vector<std::pair<size_t, size_t>>& edges) {
  // Union-find with path compression.
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), size_t{0});
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [a, b] : edges) {
    if (a >= n || b >= n) continue;
    const size_t ra = find(a);
    const size_t rb = find(b);
    if (ra != rb) parent[ra] = rb;
  }
  ClusteringResult out;
  out.labels.assign(n, -1);
  std::vector<int> root_label(n, -1);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t r = find(i);
    if (root_label[r] < 0) root_label[r] = next++;
    out.labels[i] = root_label[r];
  }
  out.num_clusters = next;
  return out;
}

}  // namespace exstream
