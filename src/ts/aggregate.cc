#include "ts/aggregate.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "common/strings.h"

namespace exstream {

std::string_view AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kRaw:
      return "raw";
    case AggregateKind::kMean:
      return "mean";
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kStdDev:
      return "stddev";
  }
  return "unknown";
}

Result<AggregateKind> AggregateKindFromString(std::string_view name) {
  for (AggregateKind k :
       {AggregateKind::kRaw, AggregateKind::kMean, AggregateKind::kSum,
        AggregateKind::kCount, AggregateKind::kMin, AggregateKind::kMax,
        AggregateKind::kStdDev}) {
    if (EqualsIgnoreCase(name, AggregateKindToString(k))) return k;
  }
  return Status::InvalidArgument(StrFormat("unknown aggregate kind '%.*s'",
                                           static_cast<int>(name.size()), name.data()));
}

Result<TimeSeries> ApplyWindowAggregate(const TimeSeries& series, AggregateKind kind,
                                        Timestamp window, Timestamp slide) {
  if (kind == AggregateKind::kRaw) return series;
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  if (slide == 0) slide = window;
  if (slide < 0) return Status::InvalidArgument("slide must be positive");

  TimeSeries out;
  if (series.empty()) return out;

  const Timestamp start = series.start_time();
  const Timestamp end = series.end_time();
  const auto& times = series.times();
  const auto& values = series.values();

  size_t lo_idx = 0;
  for (Timestamp wstart = start; wstart <= end; wstart += slide) {
    const Timestamp wend = wstart + window;
    // Advance lo_idx to the first sample >= wstart. Windows share a slide
    // origin, so lo_idx only moves forward when slide >= window; recompute
    // via binary search for overlapping windows.
    size_t lo;
    if (slide >= window) {
      while (lo_idx < times.size() && times[lo_idx] < wstart) ++lo_idx;
      lo = lo_idx;
    } else {
      lo = static_cast<size_t>(
          std::lower_bound(times.begin(), times.end(), wstart) - times.begin());
    }
    size_t hi = lo;
    while (hi < times.size() && times[hi] < wend) ++hi;

    const size_t n = hi - lo;
    if (n == 0 && kind != AggregateKind::kCount) continue;

    double agg = 0.0;
    switch (kind) {
      case AggregateKind::kCount:
        agg = static_cast<double>(n);
        break;
      case AggregateKind::kMean: {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) s += values[i];
        agg = s / static_cast<double>(n);
        break;
      }
      case AggregateKind::kSum: {
        for (size_t i = lo; i < hi; ++i) agg += values[i];
        break;
      }
      case AggregateKind::kMin: {
        agg = values[lo];
        for (size_t i = lo + 1; i < hi; ++i) agg = std::min(agg, values[i]);
        break;
      }
      case AggregateKind::kMax: {
        agg = values[lo];
        for (size_t i = lo + 1; i < hi; ++i) agg = std::max(agg, values[i]);
        break;
      }
      case AggregateKind::kStdDev: {
        std::vector<double> w(values.begin() + static_cast<long>(lo),
                              values.begin() + static_cast<long>(hi));
        agg = StdDev(w);
        break;
      }
      case AggregateKind::kRaw:
        break;  // unreachable
    }
    EXSTREAM_RETURN_NOT_OK(out.Append(wend, agg));
  }
  return out;
}

}  // namespace exstream
