#include "ts/aggregate.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "common/strings.h"

namespace exstream {

std::string_view AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kRaw:
      return "raw";
    case AggregateKind::kMean:
      return "mean";
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kStdDev:
      return "stddev";
  }
  return "unknown";
}

Result<AggregateKind> AggregateKindFromString(std::string_view name) {
  for (AggregateKind k :
       {AggregateKind::kRaw, AggregateKind::kMean, AggregateKind::kSum,
        AggregateKind::kCount, AggregateKind::kMin, AggregateKind::kMax,
        AggregateKind::kStdDev}) {
    if (EqualsIgnoreCase(name, AggregateKindToString(k))) return k;
  }
  return Status::InvalidArgument(StrFormat("unknown aggregate kind '%.*s'",
                                           static_cast<int>(name.size()), name.data()));
}

Result<TimeSeries> ApplyWindowAggregate(const TimeSeries& series, AggregateKind kind,
                                        Timestamp window, Timestamp slide) {
  if (kind == AggregateKind::kRaw) return series;
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  if (slide == 0) slide = window;
  if (slide < 0) return Status::InvalidArgument("slide must be positive");

  TimeSeries out;
  if (series.empty()) return out;

  const Timestamp start = series.start_time();
  const Timestamp end = series.end_time();
  const auto& times = series.times();
  const auto& values = series.values();
  const size_t size = times.size();
  out.Reserve(static_cast<size_t>((end - start) / slide) + 1);

  size_t lo_idx = 0;
  for (Timestamp wstart = start; wstart <= end; wstart += slide) {
    const Timestamp wend = wstart + window;
    // Advance lo_idx to the first sample >= wstart. Windows share a slide
    // origin, so lo_idx only moves forward when slide >= window; recompute
    // via binary search for overlapping windows.
    size_t lo;
    if (slide >= window) {
      while (lo_idx < size && times[lo_idx] < wstart) ++lo_idx;
      lo = lo_idx;
    } else {
      lo = static_cast<size_t>(
          std::lower_bound(times.begin(), times.end(), wstart) - times.begin());
    }
    // The window-end walk is fused with the accumulation: one pass over
    // times/values per window instead of a boundary pass plus a value pass.
    // Each fold visits indices in ascending order, so every aggregate is
    // bit-identical to the separate-pass formulation.
    size_t hi = lo;
    double agg = 0.0;
    switch (kind) {
      case AggregateKind::kCount:
        while (hi < size && times[hi] < wend) ++hi;
        agg = static_cast<double>(hi - lo);
        break;
      case AggregateKind::kMean:
      case AggregateKind::kSum: {
        double s = 0.0;
        for (; hi < size && times[hi] < wend; ++hi) s += values[hi];
        if (hi == lo) continue;  // empty window: no output sample
        agg = kind == AggregateKind::kMean
                  ? s / static_cast<double>(hi - lo)
                  : s;
        break;
      }
      case AggregateKind::kMin:
        for (; hi < size && times[hi] < wend; ++hi) {
          agg = hi == lo ? values[hi] : std::min(agg, values[hi]);
        }
        if (hi == lo) continue;
        break;
      case AggregateKind::kMax:
        for (; hi < size && times[hi] < wend; ++hi) {
          agg = hi == lo ? values[hi] : std::max(agg, values[hi]);
        }
        if (hi == lo) continue;
        break;
      case AggregateKind::kStdDev:
        while (hi < size && times[hi] < wend) ++hi;
        if (hi == lo) continue;
        agg = StdDev(values.data() + lo, hi - lo);
        break;
      case AggregateKind::kRaw:
        break;  // unreachable
    }
    EXSTREAM_RETURN_NOT_OK(out.Append(wend, agg));
  }
  return out;
}

}  // namespace exstream
