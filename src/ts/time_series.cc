#include "ts/time_series.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stats.h"
#include "common/strings.h"

namespace exstream {

TimeSeries::TimeSeries(std::vector<Timestamp> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  assert(times_.size() == values_.size());
  assert(std::is_sorted(times_.begin(), times_.end()));
}

Status TimeSeries::Append(Timestamp t, double v) {
  if (std::isnan(v)) return Status::OK();  // NaN samples are silently dropped
  if (!times_.empty() && t < times_.back()) {
    return Status::InvalidArgument(
        StrFormat("out-of-order timestamp %lld < %lld", static_cast<long long>(t),
                  static_cast<long long>(times_.back())));
  }
  times_.push_back(t);
  values_.push_back(v);
  return Status::OK();
}

void TimeSeries::AppendColumnRange(const Timestamp* ts, const double* vals,
                                   const uint8_t* tags, uint8_t skip_tag,
                                   size_t n) {
  assert(n == 0 || times_.empty() || ts[0] >= times_.back());
  size_t valid = 0;
  while (valid < n && tags[valid] != skip_tag && !std::isnan(vals[valid])) {
    ++valid;
  }
  times_.insert(times_.end(), ts, ts + valid);
  values_.insert(values_.end(), vals, vals + valid);
  for (size_t i = valid; i < n; ++i) {
    if (tags[i] == skip_tag || std::isnan(vals[i])) continue;
    times_.push_back(ts[i]);
    values_.push_back(vals[i]);
  }
}

void TimeSeries::AppendAggregatedSpan(const Timestamp* ts, const double* vals,
                                      size_t n) {
  assert(n == 0 || times_.empty() || ts[0] >= times_.back());
  times_.insert(times_.end(), ts, ts + n);
  values_.insert(values_.end(), vals, vals + n);
}

double TimeSeries::Frequency() const {
  if (times_.size() < 2) return 0.0;
  const double span = static_cast<double>(times_.back() - times_.front());
  if (span <= 0.0) return 0.0;
  return static_cast<double>(times_.size()) / span;
}

TimeSeries TimeSeries::Slice(const TimeInterval& interval) const {
  auto lo = std::lower_bound(times_.begin(), times_.end(), interval.lower);
  auto hi = std::upper_bound(times_.begin(), times_.end(), interval.upper);
  const size_t b = static_cast<size_t>(lo - times_.begin());
  const size_t e = static_cast<size_t>(hi - times_.begin());
  TimeSeries out;
  out.times_.assign(times_.begin() + b, times_.begin() + e);
  out.values_.assign(values_.begin() + b, values_.begin() + e);
  return out;
}

double TimeSeries::InterpolateAt(Timestamp t) const {
  if (empty()) return 0.0;
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  auto it = std::lower_bound(times_.begin(), times_.end(), t);
  const size_t hi = static_cast<size_t>(it - times_.begin());
  if (times_[hi] == t) return values_[hi];
  const size_t lo = hi - 1;
  const double span = static_cast<double>(times_[hi] - times_[lo]);
  const double frac = span > 0 ? static_cast<double>(t - times_[lo]) / span : 0.0;
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

TimeSeries TimeSeries::Resample(size_t n) const {
  TimeSeries out;
  if (empty() || n == 0) return out;
  if (size() == 1 || times_.front() == times_.back()) {
    for (size_t i = 0; i < n; ++i) {
      out.times_.push_back(times_.front());
      out.values_.push_back(values_.front());
    }
    return out;
  }
  const double t0 = static_cast<double>(times_.front());
  const double t1 = static_cast<double>(times_.back());
  for (size_t i = 0; i < n; ++i) {
    const double frac = n == 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    const Timestamp t = static_cast<Timestamp>(std::llround(t0 + frac * (t1 - t0)));
    out.times_.push_back(t);
    out.values_.push_back(InterpolateAt(t));
  }
  return out;
}

void TimeSeries::ResampleValuesInto(size_t n, std::vector<double>* out) const {
  // Mirrors Resample exactly (same grid timestamps, same interpolation) minus
  // the timestamp vector and the TimeSeries temporary.
  if (empty() || n == 0) return;
  if (size() == 1 || times_.front() == times_.back()) {
    out->insert(out->end(), n, values_.front());
    return;
  }
  const double t0 = static_cast<double>(times_.front());
  const double t1 = static_cast<double>(times_.back());
  for (size_t i = 0; i < n; ++i) {
    const double frac = n == 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    const Timestamp t = static_cast<Timestamp>(std::llround(t0 + frac * (t1 - t0)));
    out->push_back(InterpolateAt(t));
  }
}

std::vector<double> TimeSeries::ZNormalizedValues() const {
  std::vector<double> out = values_;
  const double m = Mean(out);
  const double sd = StdDev(out);
  for (double& v : out) v = sd > 0 ? (v - m) / sd : 0.0;
  return out;
}

std::string TimeSeries::ToString(size_t max_points) const {
  std::string out = StrFormat("TimeSeries(n=%zu", size());
  const size_t n = std::min(max_points, size());
  for (size_t i = 0; i < n; ++i) {
    out += StrFormat(", (%lld,%.4g)", static_cast<long long>(times_[i]), values_[i]);
  }
  if (size() > n) out += ", ...";
  out += ")";
  return out;
}

}  // namespace exstream
