// Entropy-based single-feature reward (paper Sec. 4.3).
//
// The reward of a feature f for explaining an anomaly is
//
//     D(f) = H_class(f) / H+_segmentation(f)          (paper Eq. 4)
//
// where H_class is the entropy of the abnormal/reference class distribution
// (Eq. 1), and H+_segmentation is the entropy of the value-ordered class
// segmentation (Eq. 2) regularized by a worst-case penalty for mixed segments
// (Eq. 3). D(f) = 1 iff the feature's values perfectly separate the two
// intervals; heavy mixing drives D(f) toward 0.

#pragma once

#include <string>
#include <vector>

#include "ts/time_series.h"

namespace exstream {

/// \brief Ownership of a run of consecutive sorted values.
enum class SegmentClass : uint8_t {
  kAbnormalOnly = 0,  ///< red in Fig. 10
  kReferenceOnly,     ///< yellow in Fig. 10
  kMixed,             ///< blue in Fig. 10
};

std::string_view SegmentClassToString(SegmentClass c);

/// \brief One maximal run of same-ownership values in the sorted merge.
struct Segment {
  SegmentClass cls = SegmentClass::kMixed;
  double min_value = 0;  ///< smallest value in the segment
  double max_value = 0;  ///< largest value in the segment
  size_t abnormal_points = 0;
  size_t reference_points = 0;

  size_t TotalPoints() const { return abnormal_points + reference_points; }
};

/// \brief Full decomposition of a feature's reward, exposed for tests,
/// Fig. 10-style visualization, and predicate construction (Sec. 5.4).
struct EntropyDistanceResult {
  double class_entropy = 0.0;              ///< H_class, Eq. 1
  double segmentation_entropy = 0.0;       ///< H_segmentation, Eq. 2
  double regularized_entropy = 0.0;        ///< H+_segmentation, Eq. 3
  double distance = 0.0;                   ///< D(f), Eq. 4; in [0, 1]
  std::vector<Segment> segments;           ///< value-ordered segmentation
  size_t abnormal_count = 0;
  size_t reference_count = 0;

  /// True if the feature separates the classes perfectly (D == 1).
  bool PerfectSeparation() const { return distance >= 1.0 - 1e-12; }
};

/// \brief Half-open description of a value range that is abnormal-only.
///
/// Used to build predicates: a range with only an upper bound becomes
/// `f <= upper`; with both bounds `f >= lower AND f <= upper`.
struct AbnormalRange {
  bool has_lower = false;
  bool has_upper = false;
  double lower = 0.0;
  double upper = 0.0;
};

/// \brief Computes the entropy distance of a feature given its abnormal- and
/// reference-interval value samples.
///
/// Ordering of samples is irrelevant (set-based measure). Returns distance 0
/// when either side is empty (no class contrast exists).
EntropyDistanceResult ComputeEntropyDistance(const std::vector<double>& abnormal_values,
                                             const std::vector<double>& reference_values);

/// \brief Convenience overload on the two interval time series of a feature.
EntropyDistanceResult ComputeEntropyDistance(const TimeSeries& abnormal,
                                             const TimeSeries& reference);

/// \brief Extracts the abnormal value ranges from a segmentation.
///
/// Boundaries between an abnormal segment and its neighbor are placed at the
/// midpoint between the adjacent segment edge values (the classic cut-point
/// placement of entropy discretization [11]). A leading/trailing abnormal
/// segment yields an unbounded side, producing `f <= c` / `f >= c` predicates.
/// Mixed segments are treated as non-abnormal (they carry no separating
/// power).
///
/// Abnormal segments carrying fewer than `min_points` points or less than
/// `min_fraction` of all abnormal points are noise (a couple of samples
/// landing between reference values) and produce no range.
std::vector<AbnormalRange> ExtractAbnormalRanges(const EntropyDistanceResult& result,
                                                 double min_fraction = 0.05,
                                                 size_t min_points = 2);

}  // namespace exstream
