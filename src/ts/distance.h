// Baseline time-series distance functions (Sec. 4.2, Fig. 17).
//
// Lock-step measures: Manhattan (L1), Euclidean (L2), general Lp, DISSIM.
// Elastic measures: DTW, EDR, ERP, LCSS.
//
// These exist to be compared against the entropy-based distance
// (entropy_distance.h); the paper shows they rank ground-truth features
// poorly because they attend to sequence microstructure rather than value
// separation.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ts/time_series.h"

namespace exstream {

/// \brief Interface for a distance between two time series.
///
/// All implementations are symmetric and non-negative; a larger value means
/// the two series are more different (so, when one series comes from the
/// abnormal interval and the other from the reference, larger = more
/// explaining power under that metric).
class TimeSeriesDistance {
 public:
  virtual ~TimeSeriesDistance() = default;

  virtual std::string name() const = 0;

  /// Distance between the two series; 0 for two empty series.
  virtual double Distance(const TimeSeries& a, const TimeSeries& b) const = 0;
};

/// Options shared by the baseline distances.
struct DistanceOptions {
  /// Lock-step measures resample both series to this many points.
  size_t resample_points = 128;
  /// Elastic measures cap input length at this many points (O(n^2) DP).
  size_t max_elastic_points = 256;
  /// EDR/LCSS matching tolerance, as a fraction of the combined stddev.
  double epsilon_fraction = 0.25;
  /// Z-normalize values before measuring (recommended when ranking features
  /// with heterogeneous scales).
  bool z_normalize = true;
};

/// \brief L1 (Manhattan) lock-step distance.
std::unique_ptr<TimeSeriesDistance> MakeManhattanDistance(DistanceOptions opts = {});
/// \brief L2 (Euclidean) lock-step distance [10].
std::unique_ptr<TimeSeriesDistance> MakeEuclideanDistance(DistanceOptions opts = {});
/// \brief General Lp lock-step distance.
std::unique_ptr<TimeSeriesDistance> MakeLpDistance(double p, DistanceOptions opts = {});
/// \brief DISSIM approximation: average point-wise distance over the overlap.
std::unique_ptr<TimeSeriesDistance> MakeDissimDistance(DistanceOptions opts = {});
/// \brief Dynamic Time Warping.
std::unique_ptr<TimeSeriesDistance> MakeDtwDistance(DistanceOptions opts = {});
/// \brief Edit Distance on Real sequences (tolerance-matched edit distance).
std::unique_ptr<TimeSeriesDistance> MakeEdrDistance(DistanceOptions opts = {});
/// \brief Edit distance with Real Penalty (metric edit distance, gap = 0).
std::unique_ptr<TimeSeriesDistance> MakeErpDistance(DistanceOptions opts = {});
/// \brief 1 - normalized Longest Common SubSequence similarity.
std::unique_ptr<TimeSeriesDistance> MakeLcssDistance(DistanceOptions opts = {});

/// \brief Factory by name: manhattan, euclidean, dissim, dtw, edr, erp, lcss.
Result<std::unique_ptr<TimeSeriesDistance>> MakeDistanceByName(
    std::string_view name, DistanceOptions opts = {});

/// \brief The baseline names compared in Fig. 17 (excluding "entropy").
std::vector<std::string> BaselineDistanceNames();

}  // namespace exstream
