// Feature-to-feature correlation used by Step 3 filtering (Sec. 5.3).

#pragma once

#include <cstddef>

#include "ts/time_series.h"

namespace exstream {

/// \brief Pearson correlation of two series after resampling each to
/// `points` equally spaced samples over its own span.
///
/// Features built over the same annotated intervals share (approximately) the
/// same span, so resampling aligns them temporally even when their native
/// sampling rates differ (e.g. a raw metric vs a windowed aggregate).
/// Returns 0 when either series has < 2 points or no variance.
double AlignedCorrelation(const TimeSeries& a, const TimeSeries& b,
                          size_t points = 64);

}  // namespace exstream
