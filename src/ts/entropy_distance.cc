#include "ts/entropy_distance.h"

#include <algorithm>
#include <cmath>

namespace exstream {

namespace {

constexpr double kLog2 = 0.6931471805599453;  // ln(2)

// p * log2(1/p), with the 0 * log(1/0) = 0 convention.
double PLog(double p) {
  if (p <= 0.0) return 0.0;
  return -p * std::log(p) / kLog2;
}

// Entropy contribution of the worst-case (uniform interleaving) ordering of a
// mixed segment: the minority class spreads as singletons, splitting the
// majority class into as-even-as-possible chunks (paper: 3N+2A ->
// (N,A,N,A,N)). Sub-segment probabilities are relative to the whole feature's
// point count, consistent with Eq. 2.
double WorstCaseMixedEntropy(size_t abnormal, size_t reference, size_t total_points) {
  const size_t minority = std::min(abnormal, reference);
  const size_t majority = std::max(abnormal, reference);
  const double total = static_cast<double>(total_points);
  double h = 0.0;
  // Minority singletons.
  h += static_cast<double>(minority) * PLog(1.0 / total);
  // Majority chunks: if counts are equal, strict alternation gives `minority`
  // majority chunks of size 1; otherwise minority singletons cut the majority
  // into minority + 1 chunks.
  const size_t chunks = (majority == minority) ? minority : minority + 1;
  if (chunks == 0) return h;
  const size_t base = majority / chunks;
  const size_t extra = majority % chunks;  // first `extra` chunks get one more
  for (size_t i = 0; i < chunks; ++i) {
    const size_t sz = base + (i < extra ? 1 : 0);
    if (sz > 0) h += PLog(static_cast<double>(sz) / total);
  }
  return h;
}

}  // namespace

std::string_view SegmentClassToString(SegmentClass c) {
  switch (c) {
    case SegmentClass::kAbnormalOnly:
      return "abnormal";
    case SegmentClass::kReferenceOnly:
      return "reference";
    case SegmentClass::kMixed:
      return "mixed";
  }
  return "unknown";
}

EntropyDistanceResult ComputeEntropyDistance(
    const std::vector<double>& abnormal_values,
    const std::vector<double>& reference_values) {
  EntropyDistanceResult out;
  out.abnormal_count = abnormal_values.size();
  out.reference_count = reference_values.size();
  const size_t total = out.abnormal_count + out.reference_count;
  if (out.abnormal_count == 0 || out.reference_count == 0) {
    // No contrast between classes; reward is zero by definition.
    return out;
  }

  // Class entropy (Eq. 1).
  const double pa = static_cast<double>(out.abnormal_count) / static_cast<double>(total);
  const double pr = static_cast<double>(out.reference_count) / static_cast<double>(total);
  out.class_entropy = PLog(pa) + PLog(pr);

  // Merge-sort the two value sets, tagging each point with its class.
  struct Point {
    double value;
    bool abnormal;
  };
  std::vector<Point> points;
  points.reserve(total);
  for (double v : abnormal_values) points.push_back({v, true});
  for (double v : reference_values) points.push_back({v, false});
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.value < b.value; });

  // Group equal values: a distinct value owned by both classes is mixed.
  struct Group {
    double value;
    size_t abnormal;
    size_t reference;
    SegmentClass cls() const {
      if (abnormal > 0 && reference > 0) return SegmentClass::kMixed;
      return abnormal > 0 ? SegmentClass::kAbnormalOnly : SegmentClass::kReferenceOnly;
    }
  };
  std::vector<Group> groups;
  for (const Point& p : points) {
    if (!groups.empty() && groups.back().value == p.value) {
      if (p.abnormal) {
        ++groups.back().abnormal;
      } else {
        ++groups.back().reference;
      }
    } else {
      groups.push_back({p.value, p.abnormal ? size_t{1} : size_t{0},
                        p.abnormal ? size_t{0} : size_t{1}});
    }
  }

  // Merge consecutive groups with the same ownership into maximal segments.
  for (const Group& g : groups) {
    const SegmentClass cls = g.cls();
    if (!out.segments.empty() && out.segments.back().cls == cls) {
      Segment& s = out.segments.back();
      s.max_value = g.value;
      s.abnormal_points += g.abnormal;
      s.reference_points += g.reference;
    } else {
      out.segments.push_back(Segment{cls, g.value, g.value, g.abnormal, g.reference});
    }
  }

  // Segmentation entropy (Eq. 2) and mixed-segment penalties (Eq. 3).
  double h_seg = 0.0;
  double penalty = 0.0;
  for (const Segment& s : out.segments) {
    h_seg += PLog(static_cast<double>(s.TotalPoints()) / static_cast<double>(total));
    if (s.cls == SegmentClass::kMixed) {
      penalty += WorstCaseMixedEntropy(s.abnormal_points, s.reference_points, total);
    }
  }
  out.segmentation_entropy = h_seg;
  out.regularized_entropy = h_seg + penalty;

  // Distance (Eq. 4). H+ >= H_class always holds for non-degenerate inputs;
  // clamp defensively for floating-point wiggle.
  out.distance = out.regularized_entropy > 0.0
                     ? std::min(1.0, out.class_entropy / out.regularized_entropy)
                     : 0.0;
  return out;
}

EntropyDistanceResult ComputeEntropyDistance(const TimeSeries& abnormal,
                                             const TimeSeries& reference) {
  return ComputeEntropyDistance(abnormal.values(), reference.values());
}

std::vector<AbnormalRange> ExtractAbnormalRanges(const EntropyDistanceResult& result,
                                                 double min_fraction,
                                                 size_t min_points) {
  std::vector<AbnormalRange> ranges;
  const auto& segs = result.segments;
  const size_t required = std::max(
      min_points, static_cast<size_t>(min_fraction *
                                      static_cast<double>(result.abnormal_count)));
  for (size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].cls != SegmentClass::kAbnormalOnly) continue;
    if (segs[i].abnormal_points < required) continue;  // noise blip
    AbnormalRange r;
    if (i > 0) {
      r.has_lower = true;
      r.lower = (segs[i - 1].max_value + segs[i].min_value) / 2.0;
    }
    if (i + 1 < segs.size()) {
      r.has_upper = true;
      r.upper = (segs[i].max_value + segs[i + 1].min_value) / 2.0;
    }
    ranges.push_back(r);
  }
  return ranges;
}

}  // namespace exstream
