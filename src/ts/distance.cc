#include "ts/distance.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "common/strings.h"

namespace exstream {

namespace {

// Returns the values of `s`, optionally z-normalized, truncated by uniform
// subsampling to at most max_points.
std::vector<double> PrepareValues(const TimeSeries& s, bool z_normalize,
                                  size_t max_points) {
  std::vector<double> v = z_normalize ? s.ZNormalizedValues() : s.values();
  if (max_points > 0 && v.size() > max_points) {
    std::vector<double> down;
    down.reserve(max_points);
    const double step = static_cast<double>(v.size() - 1) /
                        static_cast<double>(max_points - 1);
    for (size_t i = 0; i < max_points; ++i) {
      down.push_back(v[static_cast<size_t>(std::llround(step * static_cast<double>(i)))]);
    }
    v = std::move(down);
  }
  return v;
}

// Combined standard deviation of both value sets (for EDR/LCSS epsilon).
double CombinedStdDev(const std::vector<double>& a, const std::vector<double>& b) {
  std::vector<double> all;
  all.reserve(a.size() + b.size());
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  return StdDev(all);
}

class LockStepDistance : public TimeSeriesDistance {
 public:
  LockStepDistance(std::string name, double p, bool mean_normalized,
                   DistanceOptions opts)
      : name_(std::move(name)), p_(p), mean_normalized_(mean_normalized), opts_(opts) {}

  std::string name() const override { return name_; }

  double Distance(const TimeSeries& a, const TimeSeries& b) const override {
    if (a.empty() && b.empty()) return 0.0;
    if (a.empty() || b.empty()) return std::numeric_limits<double>::infinity();
    TimeSeries ra = a.Resample(opts_.resample_points);
    TimeSeries rb = b.Resample(opts_.resample_points);
    std::vector<double> va = opts_.z_normalize ? ra.ZNormalizedValues() : ra.values();
    std::vector<double> vb = opts_.z_normalize ? rb.ZNormalizedValues() : rb.values();
    double acc = 0.0;
    for (size_t i = 0; i < va.size(); ++i) {
      acc += std::pow(std::fabs(va[i] - vb[i]), p_);
    }
    double d = std::pow(acc, 1.0 / p_);
    if (mean_normalized_) d /= static_cast<double>(va.size());
    return d;
  }

 private:
  std::string name_;
  double p_;
  bool mean_normalized_;
  DistanceOptions opts_;
};

class DtwDistance : public TimeSeriesDistance {
 public:
  explicit DtwDistance(DistanceOptions opts) : opts_(opts) {}
  std::string name() const override { return "dtw"; }

  double Distance(const TimeSeries& a, const TimeSeries& b) const override {
    const auto va = PrepareValues(a, opts_.z_normalize, opts_.max_elastic_points);
    const auto vb = PrepareValues(b, opts_.z_normalize, opts_.max_elastic_points);
    if (va.empty() && vb.empty()) return 0.0;
    if (va.empty() || vb.empty()) return std::numeric_limits<double>::infinity();
    const size_t n = va.size();
    const size_t m = vb.size();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> prev(m + 1, kInf);
    std::vector<double> cur(m + 1, kInf);
    prev[0] = 0.0;
    for (size_t i = 1; i <= n; ++i) {
      cur.assign(m + 1, kInf);
      for (size_t j = 1; j <= m; ++j) {
        const double cost = std::fabs(va[i - 1] - vb[j - 1]);
        cur[j] = cost + std::min({prev[j], cur[j - 1], prev[j - 1]});
      }
      std::swap(prev, cur);
    }
    // Normalize by the warping-path length bound so series of different
    // lengths remain comparable.
    return prev[m] / static_cast<double>(n + m);
  }

 private:
  DistanceOptions opts_;
};

class EdrDistance : public TimeSeriesDistance {
 public:
  explicit EdrDistance(DistanceOptions opts) : opts_(opts) {}
  std::string name() const override { return "edr"; }

  double Distance(const TimeSeries& a, const TimeSeries& b) const override {
    const auto va = PrepareValues(a, opts_.z_normalize, opts_.max_elastic_points);
    const auto vb = PrepareValues(b, opts_.z_normalize, opts_.max_elastic_points);
    if (va.empty() && vb.empty()) return 0.0;
    const size_t n = va.size();
    const size_t m = vb.size();
    if (n == 0 || m == 0) return 1.0;
    const double eps = opts_.epsilon_fraction * std::max(1e-12, CombinedStdDev(va, vb));
    std::vector<int> prev(m + 1);
    std::vector<int> cur(m + 1);
    for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
    for (size_t i = 1; i <= n; ++i) {
      cur[0] = static_cast<int>(i);
      for (size_t j = 1; j <= m; ++j) {
        const int match = std::fabs(va[i - 1] - vb[j - 1]) <= eps ? 0 : 1;
        cur[j] = std::min({prev[j - 1] + match, prev[j] + 1, cur[j - 1] + 1});
      }
      std::swap(prev, cur);
    }
    return static_cast<double>(prev[m]) / static_cast<double>(std::max(n, m));
  }

 private:
  DistanceOptions opts_;
};

class ErpDistance : public TimeSeriesDistance {
 public:
  explicit ErpDistance(DistanceOptions opts) : opts_(opts) {}
  std::string name() const override { return "erp"; }

  double Distance(const TimeSeries& a, const TimeSeries& b) const override {
    const auto va = PrepareValues(a, opts_.z_normalize, opts_.max_elastic_points);
    const auto vb = PrepareValues(b, opts_.z_normalize, opts_.max_elastic_points);
    if (va.empty() && vb.empty()) return 0.0;
    const size_t n = va.size();
    const size_t m = vb.size();
    constexpr double kGap = 0.0;  // the standard ERP reference value
    std::vector<double> prev(m + 1, 0.0);
    std::vector<double> cur(m + 1, 0.0);
    for (size_t j = 1; j <= m; ++j) prev[j] = prev[j - 1] + std::fabs(vb[j - 1] - kGap);
    for (size_t i = 1; i <= n; ++i) {
      cur[0] = prev[0] + std::fabs(va[i - 1] - kGap);
      for (size_t j = 1; j <= m; ++j) {
        cur[j] = std::min({prev[j - 1] + std::fabs(va[i - 1] - vb[j - 1]),
                           prev[j] + std::fabs(va[i - 1] - kGap),
                           cur[j - 1] + std::fabs(vb[j - 1] - kGap)});
      }
      std::swap(prev, cur);
    }
    return prev[m] / static_cast<double>(std::max<size_t>(1, n + m));
  }

 private:
  DistanceOptions opts_;
};

class LcssDistance : public TimeSeriesDistance {
 public:
  explicit LcssDistance(DistanceOptions opts) : opts_(opts) {}
  std::string name() const override { return "lcss"; }

  double Distance(const TimeSeries& a, const TimeSeries& b) const override {
    const auto va = PrepareValues(a, opts_.z_normalize, opts_.max_elastic_points);
    const auto vb = PrepareValues(b, opts_.z_normalize, opts_.max_elastic_points);
    if (va.empty() && vb.empty()) return 0.0;
    const size_t n = va.size();
    const size_t m = vb.size();
    if (n == 0 || m == 0) return 1.0;
    const double eps = opts_.epsilon_fraction * std::max(1e-12, CombinedStdDev(va, vb));
    std::vector<int> prev(m + 1, 0);
    std::vector<int> cur(m + 1, 0);
    for (size_t i = 1; i <= n; ++i) {
      cur[0] = 0;
      for (size_t j = 1; j <= m; ++j) {
        if (std::fabs(va[i - 1] - vb[j - 1]) <= eps) {
          cur[j] = prev[j - 1] + 1;
        } else {
          cur[j] = std::max(prev[j], cur[j - 1]);
        }
      }
      std::swap(prev, cur);
    }
    const double sim =
        static_cast<double>(prev[m]) / static_cast<double>(std::min(n, m));
    return 1.0 - sim;
  }

 private:
  DistanceOptions opts_;
};

}  // namespace

std::unique_ptr<TimeSeriesDistance> MakeManhattanDistance(DistanceOptions opts) {
  return std::make_unique<LockStepDistance>("manhattan", 1.0, false, opts);
}
std::unique_ptr<TimeSeriesDistance> MakeEuclideanDistance(DistanceOptions opts) {
  return std::make_unique<LockStepDistance>("euclidean", 2.0, false, opts);
}
std::unique_ptr<TimeSeriesDistance> MakeLpDistance(double p, DistanceOptions opts) {
  return std::make_unique<LockStepDistance>(StrFormat("l%.3g", p), p, false, opts);
}
std::unique_ptr<TimeSeriesDistance> MakeDissimDistance(DistanceOptions opts) {
  // DISSIM integrates point-wise distance over time; on resampled series this
  // is the mean-normalized L1.
  return std::make_unique<LockStepDistance>("dissim", 1.0, true, opts);
}
std::unique_ptr<TimeSeriesDistance> MakeDtwDistance(DistanceOptions opts) {
  return std::make_unique<DtwDistance>(opts);
}
std::unique_ptr<TimeSeriesDistance> MakeEdrDistance(DistanceOptions opts) {
  return std::make_unique<EdrDistance>(opts);
}
std::unique_ptr<TimeSeriesDistance> MakeErpDistance(DistanceOptions opts) {
  return std::make_unique<ErpDistance>(opts);
}
std::unique_ptr<TimeSeriesDistance> MakeLcssDistance(DistanceOptions opts) {
  return std::make_unique<LcssDistance>(opts);
}

Result<std::unique_ptr<TimeSeriesDistance>> MakeDistanceByName(std::string_view name,
                                                               DistanceOptions opts) {
  if (EqualsIgnoreCase(name, "manhattan")) return MakeManhattanDistance(opts);
  if (EqualsIgnoreCase(name, "euclidean")) return MakeEuclideanDistance(opts);
  if (EqualsIgnoreCase(name, "dissim")) return MakeDissimDistance(opts);
  if (EqualsIgnoreCase(name, "dtw")) return MakeDtwDistance(opts);
  if (EqualsIgnoreCase(name, "edr")) return MakeEdrDistance(opts);
  if (EqualsIgnoreCase(name, "erp")) return MakeErpDistance(opts);
  if (EqualsIgnoreCase(name, "lcss")) return MakeLcssDistance(opts);
  return Status::InvalidArgument(StrFormat("unknown distance '%.*s'",
                                           static_cast<int>(name.size()), name.data()));
}

std::vector<std::string> BaselineDistanceNames() {
  return {"manhattan", "euclidean", "dtw", "edr", "erp", "lcss"};
}

}  // namespace exstream
