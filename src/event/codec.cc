#include "event/codec.h"

namespace exstream {

void PutValue(BytesWriter* out, const Value& v) {
  out->Put<uint8_t>(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
      out->Put<int64_t>(v.AsInt64());
      break;
    case ValueType::kDouble:
      out->Put<double>(v.AsDouble());
      break;
    case ValueType::kString:
      out->PutString(v.AsString());
      break;
  }
}

Result<Value> GetValue(BytesReader* in) {
  EXSTREAM_ASSIGN_OR_RETURN(const uint8_t tag, in->Get<uint8_t>());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt64: {
      EXSTREAM_ASSIGN_OR_RETURN(const int64_t v, in->Get<int64_t>());
      return Value(v);
    }
    case ValueType::kDouble: {
      EXSTREAM_ASSIGN_OR_RETURN(const double v, in->Get<double>());
      return Value(v);
    }
    case ValueType::kString: {
      EXSTREAM_ASSIGN_OR_RETURN(std::string s, in->GetString());
      return Value(std::move(s));
    }
  }
  return Status::Corruption(
      StrFormat("bad value tag %u at offset %zu", tag, in->pos() - 1));
}

void PutEvent(BytesWriter* out, const Event& e) {
  out->Put<int64_t>(e.ts);
  out->Put<uint32_t>(e.type);
  out->Put<uint16_t>(static_cast<uint16_t>(e.values.size()));
  for (const Value& v : e.values) PutValue(out, v);
}

Result<Event> GetEvent(BytesReader* in) {
  Event e;
  EXSTREAM_ASSIGN_OR_RETURN(e.ts, in->Get<int64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(e.type, in->Get<uint32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint16_t nvals, in->Get<uint16_t>());
  e.values.reserve(nvals);
  for (uint16_t j = 0; j < nvals; ++j) {
    EXSTREAM_ASSIGN_OR_RETURN(Value v, GetValue(in));
    e.values.push_back(std::move(v));
  }
  return e;
}

}  // namespace exstream
