// Event stream plumbing: sinks, fan-out, and buffered sources.
//
// The data-source module of the architecture (Fig. 18) is a fan-out: events
// from simulators or replayed archives are pushed to any number of sinks
// (the CEP engine, the archive, test recorders).
//
// Sinks consume either one event at a time (OnEvent) or a batch at a time
// (OnEventBatch). The batch is the throughput path: it amortizes virtual
// dispatch, archive locking, and per-query type checks, and it is passed by
// value so the last consumer in a chain can steal the events instead of
// copying them. The default OnEventBatch degrades to per-event delivery, so
// every sink accepts batches; overriding it is an optimization, never a
// semantic change.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "event/event.h"

namespace exstream {

/// Default events-per-batch used by batched replay and the CLI.
inline constexpr size_t kDefaultIngestBatchSize = 512;

/// \brief Consumer of an ordered event stream.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Called once per event in timestamp order.
  virtual void OnEvent(const Event& event) = 0;

  /// \brief Called with a run of consecutive events in timestamp order.
  ///
  /// Semantically identical to calling OnEvent per element; overrides may
  /// exploit the batch shape (and may consume the events — the batch is
  /// theirs). The base implementation forwards per event.
  virtual void OnEventBatch(EventBatch batch) {
    for (const Event& e : batch) OnEvent(e);
  }

  /// Called when the producing source has no further events.
  virtual void OnStreamEnd() {}
};

/// \brief EventSink adapter around a std::function.
class CallbackSink : public EventSink {
 public:
  explicit CallbackSink(std::function<void(const Event&)> fn) : fn_(std::move(fn)) {}
  void OnEvent(const Event& event) override { fn_(event); }

 private:
  std::function<void(const Event&)> fn_;
};

/// \brief Broadcasts each event to every attached sink, in attach order.
class FanOutSink : public EventSink {
 public:
  void Attach(EventSink* sink) { sinks_.push_back(sink); }

  void OnEvent(const Event& event) override {
    for (EventSink* s : sinks_) s->OnEvent(event);
  }
  void OnEventBatch(EventBatch batch) override {
    if (sinks_.empty()) return;
    // Every sink but the last reads a copy; the last one owns the batch.
    for (size_t i = 0; i + 1 < sinks_.size(); ++i) sinks_[i]->OnEventBatch(batch);
    sinks_.back()->OnEventBatch(std::move(batch));
  }
  void OnStreamEnd() override {
    for (EventSink* s : sinks_) s->OnStreamEnd();
  }

 private:
  std::vector<EventSink*> sinks_;  // not owned
};

/// \brief Collects events into a vector (testing / replay).
class VectorSink : public EventSink {
 public:
  void OnEvent(const Event& event) override { events_.push_back(event); }
  void OnEventBatch(EventBatch batch) override {
    if (events_.empty()) {
      events_ = std::move(batch);
      return;
    }
    events_.insert(events_.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }
  const std::vector<Event>& events() const { return events_; }
  std::vector<Event> TakeEvents() { return std::move(events_); }

 private:
  std::vector<Event> events_;
};

/// \brief Replays a pre-built event vector into a sink.
///
/// Events are expected to be in non-decreasing timestamp order; SortByTime()
/// establishes that order (stable, so equal-timestamp events keep their
/// generation order).
class VectorEventSource {
 public:
  explicit VectorEventSource(std::vector<Event> events) : events_(std::move(events)) {}

  /// Stable-sorts the buffered events by timestamp.
  void SortByTime();

  /// Pushes every event into `sink` one at a time, then signals end-of-stream.
  void Replay(EventSink* sink) const;

  /// \brief Pushes the events as batches of `batch_size` (copies), then
  /// signals end-of-stream. The source keeps its events.
  void ReplayBatched(EventSink* sink,
                     size_t batch_size = kDefaultIngestBatchSize) const;

  /// \brief Moves the events into `sink` as batches of `batch_size`, then
  /// signals end-of-stream. The source is empty afterwards — the zero-copy
  /// path for callers that discard the source after replay.
  void ReplayMove(EventSink* sink, size_t batch_size = kDefaultIngestBatchSize);

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

 private:
  std::vector<Event> events_;
};

}  // namespace exstream
