// Event stream plumbing: sinks, fan-out, and buffered sources.
//
// The data-source module of the architecture (Fig. 18) is a fan-out: events
// from simulators or replayed archives are pushed to any number of sinks
// (the CEP engine, the archive, test recorders).

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "event/event.h"

namespace exstream {

/// \brief Consumer of an ordered event stream.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Called once per event in timestamp order.
  virtual void OnEvent(const Event& event) = 0;

  /// Called when the producing source has no further events.
  virtual void OnStreamEnd() {}
};

/// \brief EventSink adapter around a std::function.
class CallbackSink : public EventSink {
 public:
  explicit CallbackSink(std::function<void(const Event&)> fn) : fn_(std::move(fn)) {}
  void OnEvent(const Event& event) override { fn_(event); }

 private:
  std::function<void(const Event&)> fn_;
};

/// \brief Broadcasts each event to every attached sink, in attach order.
class FanOutSink : public EventSink {
 public:
  void Attach(EventSink* sink) { sinks_.push_back(sink); }

  void OnEvent(const Event& event) override {
    for (EventSink* s : sinks_) s->OnEvent(event);
  }
  void OnStreamEnd() override {
    for (EventSink* s : sinks_) s->OnStreamEnd();
  }

 private:
  std::vector<EventSink*> sinks_;  // not owned
};

/// \brief Collects events into a vector (testing / replay).
class VectorSink : public EventSink {
 public:
  void OnEvent(const Event& event) override { events_.push_back(event); }
  const std::vector<Event>& events() const { return events_; }
  std::vector<Event> TakeEvents() { return std::move(events_); }

 private:
  std::vector<Event> events_;
};

/// \brief Replays a pre-built event vector into a sink.
///
/// Events are expected to be in non-decreasing timestamp order; SortByTime()
/// establishes that order (stable, so equal-timestamp events keep their
/// generation order).
class VectorEventSource {
 public:
  explicit VectorEventSource(std::vector<Event> events) : events_(std::move(events)) {}

  /// Stable-sorts the buffered events by timestamp.
  void SortByTime();

  /// Pushes every event into `sink`, then signals end-of-stream.
  void Replay(EventSink* sink) const;

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

 private:
  std::vector<Event> events_;
};

}  // namespace exstream
