#include "event/schema.h"

#include "common/strings.h"

namespace exstream {

Result<size_t> EventSchema::AttributeIndex(std::string_view attr_name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == attr_name) return i;
  }
  return Status::NotFound(StrFormat("attribute '%.*s' not in schema '%s'",
                                    static_cast<int>(attr_name.size()),
                                    attr_name.data(), name_.c_str()));
}

bool EventSchema::HasAttribute(std::string_view attr_name) const {
  return AttributeIndex(attr_name).ok();
}

Status EventSchema::ValidateRow(const std::vector<Value>& values) const {
  if (values.size() != attributes_.size()) {
    return Status::InvalidArgument(
        StrFormat("schema '%s' expects %zu attributes, got %zu", name_.c_str(),
                  attributes_.size(), values.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const ValueType declared = attributes_[i].type;
    const ValueType actual = values[i].type();
    const bool numeric_ok =
        declared == ValueType::kDouble && actual == ValueType::kInt64;
    if (actual != declared && !numeric_ok) {
      return Status::InvalidArgument(StrFormat(
          "schema '%s' attribute '%s' expects %s, got %s", name_.c_str(),
          attributes_[i].name.c_str(),
          std::string(ValueTypeToString(declared)).c_str(),
          std::string(ValueTypeToString(actual)).c_str()));
    }
  }
  return Status::OK();
}

std::string EventSchema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size() + 1);
  parts.push_back("timestamp");
  for (const auto& a : attributes_) {
    parts.push_back(a.name + ":" + std::string(ValueTypeToString(a.type)));
  }
  return name_ + "(" + Join(parts, ", ") + ")";
}

}  // namespace exstream
