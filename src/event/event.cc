#include "event/event.h"

// Event is a plain aggregate; all behaviour lives in headers. This file exists
// to anchor the translation unit for the module.

namespace exstream {}  // namespace exstream
