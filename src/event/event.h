// Event: a timestamped tuple of attribute values belonging to an event type.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace exstream {

/// Logical time; the simulators use seconds since epoch/job start.
using Timestamp = int64_t;

/// Identifies a registered event type (index into the EventTypeRegistry).
using EventTypeId = uint32_t;

inline constexpr EventTypeId kInvalidEventType = static_cast<EventTypeId>(-1);

/// \brief Closed time interval [lower, upper] used for annotations and
/// archive scans.
struct TimeInterval {
  Timestamp lower = 0;
  Timestamp upper = 0;

  bool Contains(Timestamp t) const { return t >= lower && t <= upper; }
  Timestamp Length() const { return upper - lower; }
  bool operator==(const TimeInterval&) const = default;
};

/// \brief A single event: type id, timestamp, and schema-ordered values.
struct Event {
  EventTypeId type = kInvalidEventType;
  Timestamp ts = 0;
  std::vector<Value> values;

  Event() = default;
  Event(EventTypeId type_id, Timestamp timestamp, std::vector<Value> vals)
      : type(type_id), ts(timestamp), values(std::move(vals)) {}

  const Value& value(size_t idx) const { return values[idx]; }
};

/// \brief A contiguous run of time-ordered events handed to a sink at once.
///
/// Batches exist so ingestion can amortize per-event costs (virtual dispatch,
/// archive locking, per-query type checks) across many events; they carry no
/// semantics of their own — a stream split into batches of any size must
/// produce the same results as per-event delivery.
using EventBatch = std::vector<Event>;

/// \brief Builds a schema-ordered values vector with exactly one allocation.
///
/// Unlike a braced initializer list (whose elements are *copied* into the
/// vector), this reserves and move-constructs each value in place — the event
/// construction hot path of the simulators.
template <typename... Vs>
std::vector<Value> MakeValues(Vs&&... vs) {
  std::vector<Value> out;
  out.reserve(sizeof...(Vs));
  (out.emplace_back(std::forward<Vs>(vs)), ...);
  return out;
}

}  // namespace exstream
