// EventTypeRegistry: maps event type names to ids and schemas.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "event/event.h"
#include "event/schema.h"

namespace exstream {

/// \brief Registry of all event types known to a data source (paper: the set
/// E = {E1..En} of Sec. 2.1).
///
/// Ids are dense indices assigned at registration, so per-type state elsewhere
/// (archive chunk lists, NFA edges) can be stored in flat vectors.
class EventTypeRegistry {
 public:
  /// Registers a schema; fails if the name is taken.
  Result<EventTypeId> Register(EventSchema schema);

  Result<EventTypeId> IdOf(std::string_view name) const;
  bool Contains(std::string_view name) const;

  /// Schema lookup by id; id must come from this registry.
  const EventSchema& schema(EventTypeId id) const { return schemas_[id]; }

  size_t size() const { return schemas_.size(); }

  /// All registered schemas, indexed by EventTypeId.
  const std::vector<EventSchema>& schemas() const { return schemas_; }

 private:
  std::vector<EventSchema> schemas_;
  std::unordered_map<std::string, EventTypeId> by_name_;
};

}  // namespace exstream
