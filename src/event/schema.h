// Event schemas: named, typed attribute lists (paper Fig. 2).
//
// Every event carries an implicit `timestamp` plus the attributes declared by
// its type's schema, e.g.
//   DataIO: (timestamp, eventType, eventId, jobId, taskId, attemptId,
//            clusterNodeNumber, dataSize)

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace exstream {

/// \brief One attribute of an event schema.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kDouble;
};

/// \brief The schema of an event type: its name and attribute list.
///
/// The timestamp is not part of the attribute list; it is a first-class field
/// of every Event. Attribute order defines the layout of Event::values.
class EventSchema {
 public:
  EventSchema() = default;
  EventSchema(std::string name, std::vector<AttributeDef> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t num_attributes() const { return attributes_.size(); }

  /// \brief Index of the attribute with the given name.
  Result<size_t> AttributeIndex(std::string_view attr_name) const;

  /// \brief True if an attribute with this name exists.
  bool HasAttribute(std::string_view attr_name) const;

  /// \brief Validates a value row against the schema (arity and types;
  /// int64 values are accepted where double is declared).
  Status ValidateRow(const std::vector<Value>& values) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
};

}  // namespace exstream
