// Binary codec for Value and Event over BytesWriter/BytesReader — the
// building block for checkpoint manifests (NFA bound events, match-table
// cells). The spill-file row layout in archive/serialization.cc is a separate,
// versioned on-disk format; this one is only ever embedded inside another
// CRC-framed container.

#pragma once

#include "common/bytes.h"
#include "common/result.h"
#include "common/value.h"
#include "event/event.h"

namespace exstream {

/// u8 type tag + payload (i64 / f64 / length-prefixed bytes).
void PutValue(BytesWriter* out, const Value& v);
Result<Value> GetValue(BytesReader* in);

/// i64 ts + u32 type + u16 value count + values.
void PutEvent(BytesWriter* out, const Event& e);
Result<Event> GetEvent(BytesReader* in);

}  // namespace exstream
