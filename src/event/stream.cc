#include "event/stream.h"

#include <algorithm>

namespace exstream {

void VectorEventSource::SortByTime() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
}

void VectorEventSource::Replay(EventSink* sink) const {
  for (const Event& e : events_) sink->OnEvent(e);
  sink->OnStreamEnd();
}

void VectorEventSource::ReplayBatched(EventSink* sink, size_t batch_size) const {
  if (batch_size == 0) batch_size = kDefaultIngestBatchSize;
  for (size_t begin = 0; begin < events_.size(); begin += batch_size) {
    const size_t end = std::min(begin + batch_size, events_.size());
    sink->OnEventBatch(EventBatch(events_.begin() + static_cast<ptrdiff_t>(begin),
                                  events_.begin() + static_cast<ptrdiff_t>(end)));
  }
  sink->OnStreamEnd();
}

void VectorEventSource::ReplayMove(EventSink* sink, size_t batch_size) {
  if (batch_size == 0) batch_size = kDefaultIngestBatchSize;
  for (size_t begin = 0; begin < events_.size(); begin += batch_size) {
    const size_t end = std::min(begin + batch_size, events_.size());
    EventBatch batch;
    batch.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) batch.push_back(std::move(events_[i]));
    sink->OnEventBatch(std::move(batch));
  }
  events_.clear();
  sink->OnStreamEnd();
}

}  // namespace exstream
