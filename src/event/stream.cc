#include "event/stream.h"

#include <algorithm>

namespace exstream {

void VectorEventSource::SortByTime() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
}

void VectorEventSource::Replay(EventSink* sink) const {
  for (const Event& e : events_) sink->OnEvent(e);
  sink->OnStreamEnd();
}

}  // namespace exstream
