#include "event/registry.h"

#include "common/strings.h"

namespace exstream {

Result<EventTypeId> EventTypeRegistry::Register(EventSchema schema) {
  auto it = by_name_.find(schema.name());
  if (it != by_name_.end()) {
    return Status::AlreadyExists(
        StrFormat("event type '%s' already registered", schema.name().c_str()));
  }
  const EventTypeId id = static_cast<EventTypeId>(schemas_.size());
  by_name_.emplace(schema.name(), id);
  schemas_.push_back(std::move(schema));
  return id;
}

Result<EventTypeId> EventTypeRegistry::IdOf(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound(StrFormat("unknown event type '%.*s'",
                                      static_cast<int>(name.size()), name.data()));
  }
  return it->second;
}

bool EventTypeRegistry::Contains(std::string_view name) const {
  return by_name_.count(std::string(name)) > 0;
}

}  // namespace exstream
