// MatchTable: the relational table T_MQ of returned match events (Sec. 2.1).
//
// "All returned events of M_Q are stored in a relational table T_MQ, and the
//  data to be visualized for a particular partition is specified as
//  pi_{t,attr_i}(sigma_{partitionAttribute=v}(M))."
//
// Storage is bucketed by interned partition id: the engine registers each
// partition once (EnsureBucket) and then appends rows by dense id — no
// string hashing or map walk per row, and a whole batch of rows goes in
// under one lock acquisition. Inside a bucket the rows are stored
// column-flat (one timestamp vector plus one row-major cell vector), so an
// append never allocates a per-row values vector and ExtractSeries — the
// visualization read path — is a strided scan. The string-keyed read API
// (visualization, benches, tests) is unchanged; MatchRow remains the
// row-exchange type.

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "event/event.h"
#include "ts/time_series.h"

namespace exstream {

/// \brief One returned match event: timestamp plus derived attribute values
/// in RETURN-clause order.
struct MatchRow {
  Timestamp ts = 0;
  std::vector<Value> values;
};

/// \brief All match rows of one query, grouped by partition value.
///
/// Thread-safe; the visualization/bench side reads while the engine appends.
class MatchTable {
 public:
  explicit MatchTable(std::vector<std::string> column_names)
      : column_names_(std::move(column_names)) {}

  const std::vector<std::string>& column_names() const { return column_names_; }

  Result<size_t> ColumnIndex(std::string_view name) const;

  /// \brief Returns the dense bucket id for `partition`, creating the bucket
  /// if unseen. Ids are assigned in first-call order.
  uint32_t EnsureBucket(std::string_view partition);

  /// Appends one row to a bucket previously returned by EnsureBucket.
  void Append(uint32_t bucket, const MatchRow& row);

  /// String-keyed append (convenience for tests / non-hot-path callers).
  void Append(const std::string& partition, const MatchRow& row);

  /// \brief RAII batch appender: holds the table lock so one batch's worth of
  /// bucket registrations, row appends, and completions goes in with a single
  /// lock acquisition and a single copy per row (straight into bucket
  /// storage, no staging). Concurrent readers block until it is destroyed —
  /// a bounded, one-batch-scan wait. At most one Appender per table at a
  /// time; do not call the locking MatchTable methods while one is alive.
  class Appender {
   public:
    explicit Appender(MatchTable* table) : table_(table), lock_(table->mu_) {}

    uint32_t EnsureBucket(std::string_view partition) {
      return table_->EnsureBucketLocked(partition);
    }

    void Append(uint32_t bucket, const MatchRow& row) {
      table_->AppendLocked(bucket, row);
    }

    /// \brief Two-phase direct append: BeginRow pushes the timestamp and
    /// hands back the bucket's cell vector for the caller to push values
    /// onto; EndRow seals the row. No intermediate row object, no cell copy.
    std::vector<Value>* BeginRow(uint32_t bucket, Timestamp ts) {
      Bucket& b = table_->buckets_[bucket];
      b.ts.push_back(ts);
      return &b.cells;
    }

    void EndRow(uint32_t bucket) {
      Bucket& b = table_->buckets_[bucket];
      b.ends.push_back(static_cast<uint32_t>(b.cells.size()));
    }

    void MarkComplete(uint32_t bucket) { table_->buckets_[bucket].complete = true; }

   private:
    MatchTable* table_;  // not owned
    std::lock_guard<std::mutex> lock_;
  };

  /// \brief Concurrent row appender for the merged shard pipeline: multiple
  /// shard workers write disjoint buckets of the same table at once, so rows
  /// go in under per-bucket stripe locks instead of the table lock.
  ///
  /// Preconditions (the engine's routing invariants): the bucket was
  /// registered via EnsureBucket *before* the work referencing it was handed
  /// to any shard, each bucket is written by at most one shard, and EnsureBucket
  /// is not called on this table while ShardAppenders are writing it. Readers
  /// stay safe concurrently — the locking read API takes the stripe locks too.
  class ShardAppender {
   public:
    explicit ShardAppender(MatchTable* table) : table_(table) {}

    /// Appends one sealed row (timestamp + `n` cells) to `bucket`.
    void AppendRow(uint32_t bucket, Timestamp ts, const Value* values, size_t n) {
      std::lock_guard<std::mutex> lock(table_->StripeFor(bucket));
      Bucket& b = table_->buckets_[bucket];
      b.ts.push_back(ts);
      b.cells.insert(b.cells.end(), values, values + n);
      b.ends.push_back(static_cast<uint32_t>(b.cells.size()));
    }

    void MarkComplete(uint32_t bucket) {
      std::lock_guard<std::mutex> lock(table_->StripeFor(bucket));
      table_->buckets_[bucket].complete = true;
    }

   private:
    MatchTable* table_;  // not owned
  };

  /// Marks a partition's pattern match as completed (JobEnd seen).
  void MarkComplete(uint32_t bucket);
  void MarkComplete(const std::string& partition);
  bool IsComplete(const std::string& partition) const;

  /// Partition keys present in the table, sorted.
  std::vector<std::string> Partitions() const;

  /// Rows of one partition in arrival order (copy; the engine keeps writing).
  std::vector<MatchRow> Rows(const std::string& partition) const;

  size_t NumRows(const std::string& partition) const;
  size_t TotalRows() const;

  /// \brief pi_{t,column}(sigma_{partition=v}): the visualization series for
  /// one derived attribute of one partition (e.g. Fig. 1's queuing size).
  Result<TimeSeries> ExtractSeries(const std::string& partition,
                                   std::string_view column) const;

  /// \brief Serializes every bucket — keys in id order, rows, completion —
  /// for a checkpoint manifest. Takes the table lock.
  void SaveState(BytesWriter* out) const;

  /// \brief Restores a SaveState snapshot into an empty table (bucket ids
  /// come back identical, so interned partition ids stay valid).
  Status RestoreState(BytesReader* in);

 private:
  /// Column-flat row storage: ts_[i] pairs with cells_[ends[i-1]..ends[i]).
  /// Rows are ragged in principle (test convenience appends), so per-row end
  /// offsets are kept instead of assuming column_names_.size() cells per row.
  struct Bucket {
    std::string key;
    bool complete = false;
    std::vector<Timestamp> ts;
    std::vector<Value> cells;
    std::vector<uint32_t> ends;
  };

  struct StringViewHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// Bucket index for `partition`, or buckets_.size() if absent. Caller locks.
  size_t FindLocked(std::string_view partition) const;

  uint32_t EnsureBucketLocked(std::string_view partition);
  void AppendLocked(uint32_t bucket, const MatchRow& row);

  static constexpr size_t kNumStripes = 32;
  std::mutex& StripeFor(uint32_t bucket) const {
    return stripe_mu_[bucket % kNumStripes];
  }
  /// Locks every stripe (ascending, after mu_) for whole-table reads that
  /// must not race concurrent ShardAppenders.
  std::vector<std::unique_lock<std::mutex>> LockAllStripes() const;

  std::vector<std::string> column_names_;
  mutable std::mutex mu_;
  /// Per-bucket row-data locks for the concurrent ShardAppender path. Lock
  /// order: mu_ before any stripe, stripes in ascending index order.
  mutable std::array<std::mutex, kNumStripes> stripe_mu_;
  std::deque<Bucket> buckets_;  // deque: bucket.key views in index_ never move
  std::unordered_map<std::string_view, uint32_t, StringViewHash, std::equal_to<>>
      index_;  // views into buckets_[i].key
};

}  // namespace exstream
