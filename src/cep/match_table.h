// MatchTable: the relational table T_MQ of returned match events (Sec. 2.1).
//
// "All returned events of M_Q are stored in a relational table T_MQ, and the
//  data to be visualized for a particular partition is specified as
//  pi_{t,attr_i}(sigma_{partitionAttribute=v}(M))."

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"
#include "ts/time_series.h"

namespace exstream {

/// \brief One returned match event: timestamp plus derived attribute values
/// in RETURN-clause order.
struct MatchRow {
  Timestamp ts = 0;
  std::vector<Value> values;
};

/// \brief All match rows of one query, grouped by partition value.
///
/// Thread-safe; the visualization/bench side reads while the engine appends.
class MatchTable {
 public:
  explicit MatchTable(std::vector<std::string> column_names)
      : column_names_(std::move(column_names)) {}

  const std::vector<std::string>& column_names() const { return column_names_; }

  Result<size_t> ColumnIndex(std::string_view name) const;

  void Append(const std::string& partition, MatchRow row);

  /// Marks a partition's pattern match as completed (JobEnd seen).
  void MarkComplete(const std::string& partition);
  bool IsComplete(const std::string& partition) const;

  /// Partition keys present in the table, sorted.
  std::vector<std::string> Partitions() const;

  /// Rows of one partition in arrival order (copy; the engine keeps writing).
  std::vector<MatchRow> Rows(const std::string& partition) const;

  size_t NumRows(const std::string& partition) const;
  size_t TotalRows() const;

  /// \brief pi_{t,column}(sigma_{partition=v}): the visualization series for
  /// one derived attribute of one partition (e.g. Fig. 1's queuing size).
  Result<TimeSeries> ExtractSeries(const std::string& partition,
                                   std::string_view column) const;

 private:
  std::vector<std::string> column_names_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<MatchRow>> rows_;
  std::map<std::string, bool> complete_;
};

}  // namespace exstream
