#include "cep/query_merge.h"

#include <algorithm>

#include "common/bytes.h"

namespace exstream {

namespace {

void EncodeRef(BytesWriter* out, const CompiledRef& ref) {
  out->Put<uint32_t>(static_cast<uint32_t>(ref.component));
  out->Put<uint8_t>(ref.is_timestamp ? 1 : 0);
  out->Put<uint64_t>(ref.is_timestamp ? 0 : static_cast<uint64_t>(ref.attr_index));
}

void EncodeValue(BytesWriter* out, const Value& v) {
  out->Put<uint8_t>(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
      out->Put<int64_t>(v.AsInt64());
      break;
    case ValueType::kDouble:
      // Bit pattern, not numeric value: 1.0 and 1 (int) stay distinct kinds,
      // and -0.0 / NaN payloads compare exactly.
      out->Put<double>(v.AsDouble());
      break;
    case ValueType::kString:
      out->PutString(v.AsString());
      break;
  }
}

std::string EncodePredicate(const CompiledPredicate& pred) {
  BytesWriter w;
  EncodeRef(&w, pred.lhs);
  w.Put<uint8_t>(static_cast<uint8_t>(pred.op));
  if (pred.rhs_constant.has_value()) {
    w.Put<uint8_t>(0);
    EncodeValue(&w, *pred.rhs_constant);
  } else {
    w.Put<uint8_t>(1);
    EncodeRef(&w, *pred.rhs_ref);
  }
  return w.Take();
}

}  // namespace

MergeSignature BuildMergeSignature(const CompiledQuery& cq) {
  MergeSignature sig;

  BytesWriter group;
  group.Put<uint8_t>(1);  // signature version
  group.Put<int64_t>(cq.query().within);
  group.Put<uint8_t>(cq.query().partition_attribute.empty() ? 0 : 1);
  group.Put<uint32_t>(static_cast<uint32_t>(cq.components().size()));
  bool has_negation = false;
  for (const CompiledComponent& comp : cq.components()) {
    group.Put<uint32_t>(comp.type);
    group.Put<uint8_t>(comp.kleene ? 1 : 0);
    group.Put<uint8_t>(comp.negated ? 1 : 0);
    group.Put<uint8_t>(comp.partition_attr.has_value() ? 1 : 0);
    group.Put<uint64_t>(comp.partition_attr.value_or(0));
    // Predicates are an AND conjunction of side-effect-free comparisons:
    // evaluation order cannot change any output, so a canonical sort makes
    // reordered WHERE clauses hash identically.
    std::vector<std::string> preds;
    preds.reserve(comp.predicates.size());
    for (const CompiledPredicate& pred : comp.predicates) {
      preds.push_back(EncodePredicate(pred));
    }
    std::sort(preds.begin(), preds.end());
    group.Put<uint32_t>(static_cast<uint32_t>(preds.size()));
    for (const std::string& p : preds) group.PutString(p);
    if (comp.negated) has_negation = true;
  }
  sig.group_key = group.Take();

  BytesWriter residue;
  residue.PutString(sig.group_key);
  residue.Put<uint32_t>(static_cast<uint32_t>(cq.returns().size()));
  for (const CompiledReturn& r : cq.returns()) {
    residue.Put<uint8_t>(static_cast<uint8_t>(r.agg));
    residue.Put<uint8_t>(static_cast<uint8_t>(r.index));
    EncodeRef(&residue, r.ref);
  }
  sig.residue_key = residue.Take();

  BytesWriter table;
  table.PutString(sig.residue_key);
  for (const CompiledReturn& r : cq.returns()) table.PutString(r.output_name);
  sig.table_key = table.Take();

  sig.mergeable = !has_negation;
  return sig;
}

MergeAssignment MergePlanner::Assign(const CompiledQuery& cq, bool force_singleton) {
  MergeSignature sig = BuildMergeSignature(cq);
  if (force_singleton) sig.mergeable = false;
  ++stats_.queries;
  if (!sig.mergeable) {
    // Singleton classes keyed by a unique, never-matching key.
    BytesWriter unique;
    unique.Put<uint8_t>(0);
    unique.Put<uint32_t>(static_cast<uint32_t>(stats_.queries));
    sig.group_key = unique.Take();
    sig.residue_key = sig.group_key;
    sig.table_key = sig.group_key;
    ++stats_.unmergeable;
  }

  MergeAssignment out;
  auto [git, new_group] = groups_.try_emplace(sig.group_key);
  if (new_group) {
    git->second.index = next_group_++;
    ++stats_.groups;
  }
  GroupEntry& group = git->second;
  out.group = group.index;
  out.new_group = new_group;

  auto [rit, new_residue] = group.residues.try_emplace(sig.residue_key);
  if (new_residue) {
    rit->second.index = group.next_residue++;
    ++stats_.residue_classes;
  }
  ResidueEntry& res = rit->second;
  out.residue = res.index;
  out.new_residue = new_residue;

  auto [tit, new_table] = res.tables.try_emplace(sig.table_key);
  if (new_table) {
    tit->second = res.next_table++;
    ++stats_.table_classes;
  }
  out.table = tit->second;
  out.new_table = new_table;
  return out;
}

}  // namespace exstream
