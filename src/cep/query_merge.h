// Multi-query merge planning: canonicalizes compiled SASE queries and groups
// structurally equivalent ones so the engine evaluates each *group* once per
// event instead of once per member query (the Fig. 20 scenario, where
// thousands of near-identical monitoring queries run concurrently).
//
// Three nested equivalence levels, each a canonical byte-string key built
// from the *compiled* (schema-resolved) query — pattern-variable names and
// query names never appear, so alias renaming merges, and predicates are
// canonically sorted within their anchor component, so reordering merges:
//
//   * group   — identical matching behavior: component sequence (event type,
//     kleene/negation flags, partition attribute index), canonicalized
//     predicates, and WITHIN bound. Members of a group share one automaton
//     traversal and one partition interner / run table.
//   * residue — group plus the compiled RETURN list (aggregates, refs,
//     kleene indexing). Members of a residue produce value-identical match
//     rows, so the row is built once and fanned out.
//   * table   — residue plus the output column names. Members of a table
//     class have bit-identical MatchTables, so they share one physical
//     table (aliased read-only through CepEngine::match_table).
//
// Queries containing negated components are never merged (each forms a
// singleton group); the shared evaluator still handles them, but the
// conservative gate keeps the merge rules easy to reason about.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cep/nfa.h"

namespace exstream {

/// \brief Canonical merge keys of one compiled query.
struct MergeSignature {
  bool mergeable = false;   ///< false: never grouped with another query
  std::string group_key;    ///< matching behavior (components, preds, WITHIN)
  std::string residue_key;  ///< group_key + compiled RETURN semantics
  std::string table_key;    ///< residue_key + output column names
};

/// Builds the canonical signature of `cq` (deterministic across processes).
MergeSignature BuildMergeSignature(const CompiledQuery& cq);

/// \brief Where one query landed in the merge plan. Residue and table
/// indices are local (residue within its group, table within its residue).
struct MergeAssignment {
  uint32_t group = 0;
  uint32_t residue = 0;
  uint32_t table = 0;
  bool new_group = false;
  bool new_residue = false;
  bool new_table = false;
};

/// \brief Aggregate shape of the current merge plan, for benches and stats.
struct MergePlanStats {
  size_t queries = 0;
  size_t groups = 0;          ///< shared automata (one traversal each)
  size_t residue_classes = 0; ///< distinct row-building residues
  size_t table_classes = 0;   ///< distinct physical match tables
  size_t unmergeable = 0;     ///< queries excluded from merging (negation)

  /// Queries evaluated per automaton traversal (1.0 = no sharing).
  double compression() const {
    return groups == 0 ? 1.0
                       : static_cast<double>(queries) / static_cast<double>(groups);
  }
};

/// \brief Incrementally assigns queries to merge groups as they are added.
///
/// Deterministic: group/residue/table indices depend only on the sequence of
/// Assign calls, never on hashing order.
class MergePlanner {
 public:
  /// Assigns `cq` to its (group, residue, table) equivalence classes,
  /// creating new classes as needed. Unmergeable queries get fresh singleton
  /// classes at every level. `force_singleton` demotes a mergeable query to
  /// a singleton too — used for queries registered after ingestion started,
  /// which must not inherit an existing group's partial match state.
  MergeAssignment Assign(const CompiledQuery& cq, bool force_singleton = false);

  const MergePlanStats& stats() const { return stats_; }

 private:
  struct ResidueEntry {
    uint32_t index = 0;  ///< local residue index within its group
    std::unordered_map<std::string, uint32_t> tables;  ///< table_key -> local idx
    uint32_t next_table = 0;
  };
  struct GroupEntry {
    uint32_t index = 0;
    std::unordered_map<std::string, ResidueEntry> residues;  ///< residue_key ->
    uint32_t next_residue = 0;
  };

  std::unordered_map<std::string, GroupEntry> groups_;
  uint32_t next_group_ = 0;
  MergePlanStats stats_;
};

}  // namespace exstream
