// SharedNfa: one automaton evaluated once per event on behalf of every query
// in a merge group (see query_merge.h).
//
// The *matching* structure — component sequence, predicates, WITHIN bound,
// negation guards — is identical for all members of a group, so a SharedRun
// carries exactly one copy of the traversal state per partition (NFA
// position, bound events, kleene count). What differs per member is the
// RETURN clause; members with identical compiled RETURNs form a *residue
// class*, and the run keeps one aggregate block per residue class. Stepping
// a run is therefore O(1) in the number of member queries; only row fan-out
// (one append per table class) scales with distinct outputs.
//
// State-transition semantics are bit-identical to QueryRun (nfa.h): the same
// skip-till-next-match strategy, the same WITHIN/negation reset points, and
// the same aggregate update order, so a merged engine reproduces the
// independent-evaluation MatchTables and callback stream exactly
// (tests/query_merge_test.cc, tests/ingest_differential_test.cc).
//
// Checkpoint compatibility: SaveMemberView serializes the state one member's
// QueryRun would have held, byte-identical to QueryRun::SaveState, so
// snapshots round-trip between merged and unmerged engines in either
// direction.

#pragma once

#include <cstdint>
#include <vector>

#include "cep/nfa.h"
#include "common/bytes.h"
#include "common/result.h"

namespace exstream {

/// \brief Outcome of feeding one event to a SharedRun. Emission is decided
/// per residue class by the caller:
///   row      <=> (absorbed_kleene && residue streams per kleene event) ||
///                (match_complete && !(streams && closed_kleene))
///   complete <=> match_complete
/// The closed_kleene term reproduces QueryRun exactly: a streaming residue
/// emits no row on the event that merely closes its kleene closure, but a
/// completion later in the pattern (components after the closing one) always
/// emits.
struct SharedStepResult {
  bool consumed = false;        ///< the event advanced or extended the run
  bool absorbed_kleene = false; ///< the event was folded into the kleene closure
  bool closed_kleene = false;   ///< the event closed an active kleene closure
  bool match_complete = false;  ///< the full pattern completed (caller resets)
};

class SharedRun;

/// \brief The merged evaluator of one merge group.
class SharedNfa {
 public:
  /// `shape` supplies the matching structure (components, predicates,
  /// WITHIN); it must outlive the SharedNfa. Residues are added afterwards.
  explicit SharedNfa(const CompiledQuery* shape);

  /// \brief Registers a residue class whose RETURN clause is `returns_src`'s.
  /// Must be called before any run is created. Returns the residue index.
  uint32_t AddResidue(const CompiledQuery* returns_src);

  size_t num_residues() const { return residues_.size(); }
  const CompiledQuery& shape() const { return *shape_; }
  bool has_kleene() const { return has_kleene_; }

  /// True if `residue`'s RETURN clause streams one row per absorbed kleene
  /// event (otherwise it emits a single row on pattern completion).
  bool EmitsPerKleeneEvent(uint32_t residue) const {
    return residues_[residue].src->EmitsPerKleeneEvent();
  }

  /// \brief True if a member of `residue`, evaluated as an independent
  /// QueryRun, would store the latest kleene event in its bound vector —
  /// the flag that keeps SaveMemberView byte-identical to QueryRun.
  bool MemberKleeneBoundNeeded(uint32_t residue) const {
    return residues_[residue].src->kleene_bound_needed();
  }

 private:
  struct Residue {
    const CompiledQuery* src = nullptr;  ///< residue representative (returns)
    size_t agg_offset = 0;               ///< into SharedRun::aggs_
  };

  const CompiledQuery* shape_;  // not owned
  std::vector<Residue> residues_;
  size_t total_aggs_ = 0;
  bool has_kleene_ = false;
  /// True if the traversal itself (a predicate rhs) or any residue's RETURN
  /// reads the kleene slot of the bound vector.
  bool kleene_bound_needed_ = false;

  friend class SharedRun;
};

/// \brief The matching state of one partition of one merge group — the
/// shared-traversal counterpart of QueryRun.
class SharedRun {
 public:
  explicit SharedRun(const SharedNfa* nfa);

  /// \brief Advances the run without building rows or resetting on
  /// completion (the OnEventDeferred contract): the caller harvests rows per
  /// residue via AppendRowValues while the pre-reset state is intact, then
  /// calls Reset() itself when match_complete.
  SharedStepResult Step(const Event& event);

  /// Appends `residue`'s RETURN values for `trigger` onto `*out`, in column
  /// order. Only valid right after a Step whose result emits for `residue`.
  void AppendRowValues(uint32_t residue, const Event& trigger,
                       std::vector<Value>* out) const;

  /// Resets to the initial state.
  void Reset();

  /// \brief Serializes the state a member of `residue` would hold as an
  /// independent QueryRun — byte-identical to QueryRun::SaveState.
  void SaveMemberView(uint32_t residue, BytesWriter* out) const;

  /// \brief Restores from one member's QueryRun-format record. Each member
  /// of the group carries a redundant copy of the shared traversal state, so
  /// the caller selects which record supplies which piece:
  ///  - `take_base`: traversal state + bound events (the group's first member)
  ///  - `take_kleene_bound`: the kleene slot of the bound vector (the first
  ///    member whose own QueryRun stores it — others saved an empty event)
  ///  - `take_aggs`: `residue`'s aggregate block (the residue representative)
  /// Records not selected for a piece are still parsed and length-checked.
  Status RestoreMemberView(BytesReader* in, uint32_t residue, bool take_base,
                           bool take_kleene_bound, bool take_aggs);

  size_t current_state() const { return state_; }
  size_t kleene_count() const { return kleene_count_; }

 private:
  struct AggState {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    size_t count = 0;
  };

  bool TryAdvance(const Event& event, size_t component_idx) const;
  void AbsorbKleene(const Event& event);
  size_t NextPositiveIndex(size_t from) const;
  bool ViolatesNegation(const Event& event) const;

  const SharedNfa* nfa_;  // not owned
  size_t state_ = 0;
  int last_positive_ = -1;
  Timestamp run_start_ = 0;
  std::vector<Event> bound_;
  bool kleene_active_ = false;
  size_t kleene_count_ = 0;
  /// Aggregate blocks of every residue class, laid out back to back at the
  /// residues' agg_offsets (one slot per RETURN item, as in QueryRun).
  std::vector<AggState> aggs_;
};

}  // namespace exstream
