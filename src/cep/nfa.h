// NFA compilation and per-partition run evaluation of SASE queries.
//
// A query's SEQ pattern compiles to a linear NFA whose states are the
// components; the (at most one) Kleene-plus component loops on itself. The
// evaluation strategy is skip-till-next-match within a partition: events that
// neither extend the current state nor start the next are ignored, which is
// the standard semantics for monitoring queries over interleaved streams.

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cep/match_table.h"
#include "common/bytes.h"
#include "cep/predicate.h"
#include "common/result.h"
#include "event/registry.h"
#include "query/ast.h"

namespace exstream {

/// \brief A RETURN expression compiled against the pattern's schemas.
struct CompiledReturn {
  ReturnAgg agg = ReturnAgg::kNone;
  CompiledRef ref;
  KleeneIndex index = KleeneIndex::kNone;
  std::string output_name;
};

/// \brief One pattern component resolved to type ids and attribute indices.
struct CompiledComponent {
  EventTypeId type = kInvalidEventType;
  bool kleene = false;
  bool negated = false;
  /// Index of the partition attribute within this component's schema.
  std::optional<size_t> partition_attr;
  /// Predicates anchored on this component (evaluated per candidate event).
  std::vector<CompiledPredicate> predicates;
};

/// \brief A schema-resolved, executable form of a Query.
class CompiledQuery {
 public:
  /// Compiles `query` against `registry`; fails on unknown event types,
  /// attributes, unsupported constructs, or a partition attribute that is not
  /// present in every component's schema.
  static Result<CompiledQuery> Compile(const Query& query,
                                       const EventTypeRegistry* registry);

  const Query& query() const { return query_; }
  const std::vector<CompiledComponent>& components() const { return components_; }
  const std::vector<CompiledReturn>& returns() const { return returns_; }

  /// RETURN column names in output order (excluding the timestamp).
  std::vector<std::string> OutputColumns() const;

  /// True if any RETURN item references the kleene variable, which makes the
  /// query emit one row per absorbed kleene event (streaming results).
  bool EmitsPerKleeneEvent() const { return emits_per_kleene_; }

  /// True if events of this type can ever affect the query.
  bool IsRelevantType(EventTypeId type) const;

  /// True if any component is negated.
  bool has_negation() const { return has_negation_; }
  /// Index of the kleene component (meaningful only if the query has one).
  size_t kleene_component() const { return kleene_idx_; }
  /// True if anything ever reads the kleene slot of the bound-event vector.
  bool kleene_bound_needed() const { return kleene_bound_needed_; }

 private:
  Query query_;
  std::vector<CompiledComponent> components_;
  std::vector<CompiledReturn> returns_;
  std::vector<bool> relevant_types_;
  bool emits_per_kleene_ = false;
  /// True if any component is negated; lets runs skip the per-event negation
  /// guard scan entirely for the common negation-free query.
  bool has_negation_ = false;
  /// Kleene component index, cached off the AST for the absorb hot path.
  size_t kleene_idx_ = 0;
  /// True if anything ever reads bound_[kleene_idx_] — a later predicate's
  /// rhs or a non-aggregated, non-current RETURN ref. When false, AbsorbKleene
  /// skips the per-event Event copy into bound_.
  bool kleene_bound_needed_ = false;

  friend class QueryRun;
};

/// \brief Outcome of feeding one event to a run.
struct RunStepResult {
  bool consumed = false;        ///< the event advanced or extended the run
  bool emitted_row = false;     ///< a match row was produced
  bool match_complete = false;  ///< the full pattern completed (run resets)
  MatchRow row;                 ///< valid when emitted_row (convenience overload)
};

/// \brief The matching state of one partition of one query.
///
/// Holds the bound single events, the kleene running aggregates, and the
/// current NFA state. One event in, at most one row out.
class QueryRun {
 public:
  explicit QueryRun(const CompiledQuery* cq);

  /// \brief Feeds a partition-local event (type relevance already checked
  /// upstream). When the step emits a row it is written into `*row` — cleared
  /// and refilled, so a caller-reused MatchRow stops allocating after warm-up.
  /// The result's own `row` member is left empty by this overload.
  RunStepResult OnEvent(const Event& event, MatchRow* row);

  /// Convenience overload returning the emitted row inside the result.
  RunStepResult OnEvent(const Event& event);

  /// \brief Advances the run WITHOUT building a row or resetting on
  /// completion. When the result says emitted_row, the caller harvests the
  /// values via AppendRowValues (the pre-reset state is intact) and, when
  /// match_complete, must call Reset() itself. This lets the batched engine
  /// write RETURN values straight into match-table storage with zero
  /// intermediate copies.
  RunStepResult OnEventDeferred(const Event& event);

  /// Appends the RETURN-clause values for `trigger` onto `*out`, in column
  /// order. Only valid right after an OnEventDeferred that emitted a row.
  void AppendRowValues(const Event& trigger, std::vector<Value>* out) const;

  /// Resets to the initial state.
  void Reset();

  /// \brief Serializes the run's full matching state (NFA position, bound
  /// events, kleene aggregates) for a checkpoint manifest.
  void SaveState(BytesWriter* out) const;

  /// \brief Restores a SaveState snapshot. The run must have been built from
  /// an identically compiled query (same components and RETURN items).
  Status RestoreState(BytesReader* in);

  size_t current_state() const { return state_; }
  size_t kleene_count() const { return kleene_count_; }

 private:
  struct AggState {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    size_t count = 0;
  };

  bool TryAdvance(const Event& event, size_t component_idx);
  void AbsorbKleene(const Event& event);
  /// Writes the RETURN-clause row for `trigger` into `*out` (values cleared
  /// and refilled in place).
  void BuildRow(const Event& trigger, MatchRow* out) const;
  /// Index of the first non-negated component at or after `from`
  /// (components.size() if none).
  size_t NextPositiveIndex(size_t from) const;
  /// True if any active negation guard matches the event (which voids the
  /// current run).
  bool ViolatesNegation(const Event& event) const;

  const CompiledQuery* cq_;  // not owned
  size_t state_ = 0;         // positive component currently being matched
  int last_positive_ = -1;   // index of the last matched positive component
  Timestamp run_start_ = 0;  // ts of the first matched event (WITHIN anchor)
  std::vector<Event> bound_;  // matched single events, indexed by component
  bool kleene_active_ = false;
  size_t kleene_count_ = 0;
  std::vector<AggState> aggs_;  // one per RETURN item (used by agg items)
};

}  // namespace exstream
