#include "cep/predicate.h"

namespace exstream {

Value RefValue(const CompiledRef& ref, const Event& event) {
  if (ref.is_timestamp) return Value(static_cast<int64_t>(event.ts));
  return event.values[ref.attr_index];
}

double RefValueAsDouble(const CompiledRef& ref, const Event& event) {
  if (ref.is_timestamp) return static_cast<double>(event.ts);
  return event.values[ref.attr_index].AsDouble();
}

bool CompiledPredicate::Eval(const Event& candidate,
                             const std::vector<Event>& bound) const {
  const Value lhs_val = RefValue(lhs, candidate);
  Value rhs_val;
  if (rhs_constant.has_value()) {
    rhs_val = *rhs_constant;
  } else {
    const Event& other = bound[rhs_ref->component];
    rhs_val = RefValue(*rhs_ref, other);
  }
  // String-vs-string compares lexicographically; numeric-vs-numeric as
  // doubles. A type mismatch fails the predicate rather than erroring out of
  // the hot path — monitoring should not stall on one malformed event.
  auto cmp = lhs_val.Compare(rhs_val);
  if (!cmp.ok()) return false;
  const int c = *cmp;
  switch (op) {
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kNe:
      return c != 0;
  }
  return false;
}

}  // namespace exstream
