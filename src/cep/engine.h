// CepEngine: the multi-query CEP evaluator at the core of the monitoring
// system (Fig. 1c / Fig. 18).

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cep/match_table.h"
#include "cep/nfa.h"
#include "common/result.h"
#include "event/registry.h"
#include "event/stream.h"

namespace exstream {

using QueryId = uint32_t;

/// \brief A match-row notification delivered to the engine's callback.
struct MatchNotification {
  QueryId query = 0;
  std::string partition;
  MatchRow row;
  bool complete = false;  ///< the full pattern completed with this event
};

/// \brief Evaluates many SASE queries over one event stream.
///
/// Each query maintains one QueryRun per partition value (the bracketed
/// equivalence attribute). Events irrelevant to a query (by type) are skipped
/// via a per-query type bitmap, so thousands of concurrent queries stay cheap
/// per event (the Fig. 20 scenario).
class CepEngine : public EventSink {
 public:
  explicit CepEngine(const EventTypeRegistry* registry) : registry_(registry) {}

  /// Compiles and registers a query; returns its id.
  Result<QueryId> AddQuery(const Query& query);

  /// Parses, compiles, and registers a query given in Fig. 3 syntax.
  Result<QueryId> AddQueryText(std::string_view text, std::string name);

  /// EventSink: feeds one event through every relevant query.
  void OnEvent(const Event& event) override;

  size_t num_queries() const { return queries_.size(); }
  uint64_t events_processed() const { return events_processed_; }

  const CompiledQuery& compiled(QueryId id) const { return queries_[id]->compiled; }
  const MatchTable& match_table(QueryId id) const { return queries_[id]->matches; }
  MatchTable& mutable_match_table(QueryId id) { return queries_[id]->matches; }

  /// Lookup by query name; NotFound if absent.
  Result<QueryId> QueryIdByName(std::string_view name) const;

  /// Registers a callback invoked on every emitted match row.
  void SetMatchCallback(std::function<void(const MatchNotification&)> cb) {
    callback_ = std::move(cb);
  }

 private:
  struct QueryState {
    CompiledQuery compiled;
    MatchTable matches;
    std::unordered_map<std::string, QueryRun> runs;

    QueryState(CompiledQuery cq)
        : compiled(std::move(cq)), matches(compiled.OutputColumns()) {}
  };

  const EventTypeRegistry* registry_;  // not owned
  std::vector<std::unique_ptr<QueryState>> queries_;
  std::function<void(const MatchNotification&)> callback_;
  uint64_t events_processed_ = 0;
};

}  // namespace exstream
