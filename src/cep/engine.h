// CepEngine: the multi-query CEP evaluator at the core of the monitoring
// system (Fig. 1c / Fig. 18).
//
// Ingestion has two entry points with identical semantics:
//
//   * OnEvent        — the classic one-event-at-a-time path.
//   * OnEventBatch   — the throughput path. Partition keys are extracted and
//     hashed once per event (not once per query per event), every query
//     interns them into dense uint32_t ids indexing flat QueryRun vectors,
//     match rows flush to each query's MatchTable under one lock per batch,
//     and with ingest_threads > 1 the queries are sharded round-robin over a
//     worker pool.
//
// Determinism contract (same as the explanation pipeline): for any batch
// split and any ingest_threads, the resulting MatchTables and the match
// callback sequence are bit-identical to per-event sequential evaluation.
// Each query is owned by exactly one shard and sees the batch in stream
// order, so its interner ids, runs, and row order never depend on the thread
// count; callbacks are buffered per shard tagged with (event index, query)
// and merged into canonical (event, query) order before delivery on the
// ingesting thread.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cep/interner.h"
#include "cep/match_table.h"
#include "cep/nfa.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "event/registry.h"
#include "event/stream.h"

namespace exstream {

using QueryId = uint32_t;

/// \brief A match-row notification delivered to the engine's callback.
///
/// `partition` is a view into the engine's interned key storage — valid for
/// the engine's lifetime, never a per-row string copy. `partition_id` is the
/// dense per-query intern id (assigned in first-seen stream order, so it is
/// deterministic for a fixed event order regardless of batching/sharding).
struct MatchNotification {
  QueryId query = 0;
  uint32_t partition_id = 0;
  std::string_view partition;
  MatchRow row;
  bool complete = false;  ///< the full pattern completed with this event
};

/// \brief Engine construction knobs.
struct CepEngineOptions {
  /// Shards (worker threads) used by OnEventBatch; 1 = serial batched
  /// evaluation, 0 = one per hardware thread. OnEvent is always serial.
  size_t ingest_threads = 1;
};

/// \brief Evaluates many SASE queries over one event stream.
///
/// Each query maintains one QueryRun per partition value (the bracketed
/// equivalence attribute). Events irrelevant to a query (by type) are skipped
/// via a per-query type-route table, so thousands of concurrent queries stay
/// cheap per event (the Fig. 20 scenario).
///
/// Thread model: one ingesting thread calls OnEvent/OnEventBatch; readers
/// (visualization, benches) may query MatchTables concurrently. OnEventBatch
/// may internally fan out over its own worker pool.
class CepEngine : public EventSink {
 public:
  explicit CepEngine(const EventTypeRegistry* registry, CepEngineOptions options = {})
      : registry_(registry) {
    SetIngestThreads(options.ingest_threads);
  }

  /// Compiles and registers a query; returns its id.
  Result<QueryId> AddQuery(const Query& query);

  /// Parses, compiles, and registers a query given in Fig. 3 syntax.
  Result<QueryId> AddQueryText(std::string_view text, std::string name);

  /// EventSink: feeds one event through every relevant query.
  void OnEvent(const Event& event) override;

  /// EventSink: batched ingest (see class comment for the contract).
  void OnEventBatch(EventBatch batch) override { IngestBatch(batch); }

  /// Batched ingest for callers that keep the buffer (e.g. to forward it).
  void IngestBatch(const EventBatch& batch);

  /// \brief Re-sizes the ingest shard pool (0 = hardware concurrency).
  ///
  /// Must not be called concurrently with ingestion.
  void SetIngestThreads(size_t n);
  size_t ingest_threads() const { return num_shards_; }

  size_t num_queries() const { return queries_.size(); }
  uint64_t events_processed() const { return events_processed_; }

  const CompiledQuery& compiled(QueryId id) const { return queries_[id]->compiled; }
  const MatchTable& match_table(QueryId id) const { return queries_[id]->matches; }
  MatchTable& mutable_match_table(QueryId id) { return queries_[id]->matches; }

  /// Lookup by query name; NotFound if absent.
  Result<QueryId> QueryIdByName(std::string_view name) const;

  /// \brief Registers a callback invoked on every emitted match row.
  ///
  /// Rows are appended to the match table before the callback sees them.
  /// Under batched ingest, callbacks for a batch are delivered after the
  /// batch is evaluated, in canonical (event, query) order, on the ingesting
  /// thread.
  void SetMatchCallback(std::function<void(const MatchNotification&)> cb) {
    callback_ = std::move(cb);
  }

  /// \brief Serializes every query's mutable evaluation state — interned
  /// partition keys (in id order), per-partition NFA runs, match tables — and
  /// the processed-event count. Compiled queries and route tables are NOT
  /// included: RestoreState requires the same queries added in the same order.
  /// Must not run concurrently with ingestion.
  void SaveState(BytesWriter* out) const;

  /// \brief Restores a SaveState snapshot. The engine must hold the same
  /// queries as at save time with empty match tables (fresh AddQuery calls).
  Status RestoreState(BytesReader* in);

 private:
  /// Route-table entry values: how a query treats events of one type.
  static constexpr uint16_t kRouteIrrelevant = 0;
  static constexpr uint16_t kRouteEmptyKey = 1;  ///< unpartitioned query
  static constexpr uint16_t kRouteSpecBase = 2;  ///< spec index + 2

  /// One partition-key extraction: attribute `attr` of events of `type`.
  /// Deduplicated across queries so a key is extracted/hashed once per event.
  struct ExtractorSpec {
    EventTypeId type = kInvalidEventType;
    size_t attr = 0;
  };

  /// A partition key ready for interning: view plus its precomputed hash.
  struct PrepKey {
    std::string_view view;
    uint64_t hash = 0;
  };

  struct PendingNote {
    uint32_t event_idx = 0;
    MatchNotification note;
  };

  /// Per-shard reusable buffers (owned by exactly one shard per batch).
  struct ShardScratch {
    std::vector<PendingNote> notes;  ///< whole batch
  };

  struct QueryState {
    CompiledQuery compiled;
    MatchTable matches;
    PartitionInterner interner;
    std::vector<QueryRun> runs;       ///< indexed by interned partition id
    std::vector<uint32_t> buckets;    ///< interned id -> match-table bucket
    std::vector<uint16_t> route;      ///< event type -> route entry
    uint32_t route_class = 0;         ///< index into route_classes_

    QueryState(CompiledQuery cq)
        : compiled(std::move(cq)), matches(compiled.OutputColumns()) {}
  };

  /// \brief Interns `key` for `qs`, creating its run and match bucket on
  /// first use. `appender` must be qs.matches' live batch appender, or
  /// nullptr when the caller does not hold the table lock (per-event path).
  uint32_t InternKey(QueryState& qs, std::string_view key, uint64_t hash,
                     MatchTable::Appender* appender);

  /// Deduplicated index of (type, attr); appends a new spec if unseen.
  uint16_t SpecIndexFor(EventTypeId type, size_t attr);

  /// Fills prep_ with one (view, hash) per (spec, event) for this batch.
  void PrepareBatchKeys(const EventBatch& batch);

  /// Evaluates queries `shard, shard + stride, ...` over the whole batch.
  void ProcessShard(const EventBatch& batch, size_t shard, size_t stride,
                    ShardScratch* scratch);

  /// Merges per-shard notes into (event, query) order and fires callbacks.
  void DispatchNotifications();

  const EventTypeRegistry* registry_;  // not owned
  std::vector<std::unique_ptr<QueryState>> queries_;
  std::function<void(const MatchNotification&)> callback_;
  uint64_t events_processed_ = 0;

  // Partition-key extraction, shared across queries.
  std::vector<ExtractorSpec> specs_;
  std::vector<std::vector<uint16_t>> specs_by_type_;  ///< type -> spec indices
  uint64_t empty_key_hash_ = PartitionKeyHash({});
  std::string serial_key_scratch_;  ///< OnEvent: reused numeric-key buffer
  MatchRow serial_row_scratch_;     ///< OnEvent: reused QueryRun output row

  // Route classes: queries with identical route tables share one class, and
  // each batch computes the class's relevant-event index list once — so 1000
  // replicated queries (the Fig. 20 shape) skip a batch's irrelevant events
  // with one scan total instead of one scan each.
  std::vector<std::vector<uint16_t>> route_classes_;   ///< class -> route table
  std::vector<std::vector<uint32_t>> class_events_;    ///< class -> event idxs

  // Batched-ingest machinery (buffers reused across batches).
  size_t num_shards_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::vector<PrepKey>> prep_;           ///< per spec, per event
  std::vector<std::vector<std::string>> prep_keys_;  ///< numeric keys storage
  std::vector<ShardScratch> scratch_;
  std::vector<PendingNote> merged_notes_;
};

}  // namespace exstream
