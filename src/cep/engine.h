// CepEngine: the multi-query CEP evaluator at the core of the monitoring
// system (Fig. 1c / Fig. 18).
//
// Ingestion has two entry points with identical semantics:
//
//   * OnEvent        — the classic one-event-at-a-time path.
//   * OnEventBatch   — the throughput path. Partition keys are extracted and
//     hashed once per event (not once per query per event), partition ids are
//     dense uint32_t interns indexing flat run vectors, and match rows flush
//     to MatchTables in bulk.
//
// Multi-query optimization (enable_query_merge, on by default): queries are
// canonicalized and grouped by matching structure (cep/query_merge.h), and
// each *group* is evaluated once per event by a shared automaton
// (cep/shared_nfa.h) regardless of how many member queries it carries — the
// Fig. 20 scenario of thousands of near-identical monitoring queries. Within
// a group, members with identical RETURN semantics share row construction
// (residue classes) and members with identical output columns share one
// physical MatchTable (table classes).
//
// Merged-mode threading is a contention-free pipeline: the ingesting thread
// routes a batch group by group — interning keys, creating runs, registering
// buckets, all single-threaded in stream order, so every id is deterministic —
// and hands (event, run) work blocks to long-lived shard workers over SPSC
// queues. Each (group, partition) run is owned by exactly one shard (a pure
// hash of the pair), shards write disjoint match-table buckets under stripe
// locks, and there is no barrier inside a batch: a shard drains its blocks as
// they arrive while the router keeps routing later groups. IngestBatch waits
// for all shards to drain before returning, preserving the read-after-ingest
// contract.
//
// Determinism contract (same as the explanation pipeline): for any batch
// split and any ingest_threads, the resulting MatchTables and the match
// callback sequence are bit-identical to per-event sequential evaluation of
// the unmerged engine. Callbacks are buffered tagged with (event index,
// query) and merged into canonical (event, query) order before delivery on
// the ingesting thread.

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cep/interner.h"
#include "cep/match_table.h"
#include "cep/nfa.h"
#include "cep/query_merge.h"
#include "cep/shared_nfa.h"
#include "common/result.h"
#include "common/spsc_queue.h"
#include "common/thread_pool.h"
#include "event/registry.h"
#include "event/stream.h"

namespace exstream {

using QueryId = uint32_t;

/// \brief A match-row notification delivered to the engine's callback.
///
/// `partition` is a view into the engine's interned key storage — valid for
/// the engine's lifetime, never a per-row string copy. `partition_id` is the
/// dense intern id (assigned in first-seen stream order, so it is
/// deterministic for a fixed event order regardless of batching/sharding).
struct MatchNotification {
  QueryId query = 0;
  uint32_t partition_id = 0;
  std::string_view partition;
  MatchRow row;
  bool complete = false;  ///< the full pattern completed with this event
};

/// \brief Engine construction knobs.
struct CepEngineOptions {
  /// Shards (worker threads) used by OnEventBatch; 1 = serial batched
  /// evaluation, 0 = one per hardware thread. OnEvent is always serial.
  size_t ingest_threads = 1;
  /// Evaluate structurally equivalent queries through one shared automaton
  /// per merge group. Off = the legacy per-query evaluator (the differential
  /// baseline and the --no-query-merge escape hatch).
  bool enable_query_merge = true;
};

/// \brief Evaluates many SASE queries over one event stream.
///
/// Each query maintains one run per partition value (the bracketed
/// equivalence attribute). Events irrelevant to a query (by type) are skipped
/// via a per-query type-route table, so thousands of concurrent queries stay
/// cheap per event (the Fig. 20 scenario).
///
/// Thread model: one ingesting thread calls OnEvent/OnEventBatch; readers
/// (visualization, benches) may query MatchTables concurrently. OnEventBatch
/// may internally fan out over its own worker pool (legacy mode) or the
/// long-lived shard pipeline (merged mode).
class CepEngine : public EventSink {
 public:
  explicit CepEngine(const EventTypeRegistry* registry, CepEngineOptions options = {})
      : registry_(registry), merge_enabled_(options.enable_query_merge) {
    SetIngestThreads(options.ingest_threads);
  }

  ~CepEngine() override { StopPipes(); }

  CepEngine(CepEngine&&) = delete;
  CepEngine& operator=(CepEngine&&) = delete;

  /// Compiles and registers a query; returns its id.
  Result<QueryId> AddQuery(const Query& query);

  /// Parses, compiles, and registers a query given in Fig. 3 syntax.
  Result<QueryId> AddQueryText(std::string_view text, std::string name);

  /// EventSink: feeds one event through every relevant query.
  void OnEvent(const Event& event) override;

  /// EventSink: batched ingest (see class comment for the contract).
  void OnEventBatch(EventBatch batch) override { IngestBatch(batch); }

  /// Batched ingest for callers that keep the buffer (e.g. to forward it).
  void IngestBatch(const EventBatch& batch);

  /// \brief Re-sizes the ingest shard pool (0 = hardware concurrency).
  ///
  /// Must not be called concurrently with ingestion.
  void SetIngestThreads(size_t n);
  size_t ingest_threads() const { return num_shards_; }

  size_t num_queries() const { return queries_.size(); }
  uint64_t events_processed() const { return events_processed_; }

  bool merge_enabled() const { return merge_enabled_; }
  /// Merge-plan shape (groups/residues/tables); all-zero when merge is off.
  const MergePlanStats& merge_stats() const { return planner_.stats(); }

  const CompiledQuery& compiled(QueryId id) const { return queries_[id]->compiled; }
  /// The query's match table. Queries in the same table class share one
  /// physical table (their contents are bit-identical by construction).
  const MatchTable& match_table(QueryId id) const { return *queries_[id]->physical; }

  /// Lookup by query name; NotFound if absent.
  Result<QueryId> QueryIdByName(std::string_view name) const;

  /// \brief Registers a callback invoked on every emitted match row.
  ///
  /// Rows are appended to the match table before the callback sees them.
  /// Under batched ingest, callbacks for a batch are delivered after the
  /// batch is evaluated, in canonical (event, query) order, on the ingesting
  /// thread.
  void SetMatchCallback(std::function<void(const MatchNotification&)> cb) {
    callback_ = std::move(cb);
  }

  /// \brief Serializes every query's mutable evaluation state — interned
  /// partition keys (in id order), per-partition NFA runs, match tables — and
  /// the processed-event count, plus each query's mid-stream-add flag so the
  /// restoring engine rebuilds the exact merge plan (mid-stream queries are
  /// forced-singleton groups with their own key sets). Compiled queries and
  /// route tables are NOT included: RestoreState requires the same queries
  /// added in the same order. The format is identical in merged and unmerged
  /// mode (merged groups write one member-view per query), so snapshots
  /// round-trip across modes. Must not run concurrently with ingestion.
  void SaveState(BytesWriter* out) const;

  /// \brief Restores a SaveState snapshot. The engine must hold the same
  /// queries as at save time with empty match tables (fresh AddQuery calls).
  Status RestoreState(BytesReader* in);

 private:
  /// Route-table entry values: how a query treats events of one type.
  static constexpr uint16_t kRouteIrrelevant = 0;
  static constexpr uint16_t kRouteEmptyKey = 1;  ///< unpartitioned query
  static constexpr uint16_t kRouteSpecBase = 2;  ///< spec index + 2

  static constexpr QueryId kNoQuery = static_cast<QueryId>(-1);

  /// One partition-key extraction: attribute `attr` of events of `type`.
  /// Deduplicated across queries so a key is extracted/hashed once per event.
  struct ExtractorSpec {
    EventTypeId type = kInvalidEventType;
    size_t attr = 0;
  };

  /// A partition key ready for interning: view plus its precomputed hash.
  struct PrepKey {
    std::string_view view;
    uint64_t hash = 0;
  };

  struct PendingNote {
    uint32_t event_idx = 0;
    MatchNotification note;
  };

  /// Per-shard reusable buffers (owned by exactly one shard per batch).
  struct ShardScratch {
    std::vector<PendingNote> notes;  ///< whole batch
    std::vector<Value> row;          ///< merged mode: per-residue row build
  };

  struct QueryState {
    CompiledQuery compiled;
    MatchTable matches;
    /// The physical table serving match_table(id): &matches, or the table
    /// class representative's matches when this query merged into one.
    MatchTable* physical = nullptr;
    PartitionInterner interner;       ///< legacy (merge-off) mode only
    std::vector<QueryRun> runs;       ///< indexed by interned partition id
    std::vector<uint32_t> buckets;    ///< interned id -> match-table bucket
    std::vector<uint16_t> route;      ///< event type -> route entry
    uint32_t route_class = 0;         ///< index into route_classes_
    uint32_t merge_group = 0;         ///< merged mode: owning group index
    uint32_t merge_residue = 0;       ///< merged mode: residue within group
    /// Added after ingestion started (forced singleton in the merge plan).
    /// Persisted by SaveState so RestoreState reproduces the same plan.
    bool added_mid_stream = false;

    QueryState(CompiledQuery cq)
        : compiled(std::move(cq)), matches(compiled.OutputColumns()),
          physical(&matches) {}
  };

  /// \brief Queries sharing one physical MatchTable (identical residue +
  /// identical output column names → bit-identical tables).
  struct TableClass {
    QueryId rep = 0;               ///< owns the physical table (its QueryState)
    MatchTable* table = nullptr;   ///< == &queries_[rep]->matches
    std::vector<QueryId> members;  ///< ascending query id
  };

  /// \brief Queries sharing row construction (identical compiled RETURNs).
  struct ResidueClass {
    uint32_t nfa_residue = 0;      ///< index into the group's SharedNfa
    QueryId rep = 0;               ///< aggregate source on checkpoint restore
    std::vector<TableClass> tables;
    std::vector<QueryId> members;  ///< ascending query id (note fan-out order)
  };

  /// \brief One merge group: a shared automaton plus all per-partition state
  /// its members would otherwise hold independently.
  struct MergeGroup {
    uint32_t index = 0;
    std::unique_ptr<SharedNfa> nfa;
    std::vector<ResidueClass> residues;
    std::vector<QueryId> members;      ///< ascending query id
    /// First member whose own QueryRun stores the latest kleene event — the
    /// record that supplies the kleene bound slot on checkpoint restore.
    QueryId bound_source = kNoQuery;
    PartitionInterner interner;
    std::vector<SharedRun> runs;       ///< indexed by interned partition id
    std::vector<uint32_t> buckets;     ///< id -> bucket (same in all tables)
    std::vector<uint16_t> route;       ///< == every member's route table
    uint32_t route_class = 0;
  };

  /// One unit of routed work: event index in the current batch + run id.
  struct WorkItem {
    uint32_t event = 0;
    uint32_t run = 0;
  };

  /// \brief A routed slice of one group's batch work, handed to one shard.
  /// Carries everything the worker needs so workers never touch the engine.
  struct WorkBlock {
    const EventBatch* batch = nullptr;
    MergeGroup* group = nullptr;
    bool want_notes = false;
    std::vector<WorkItem> items;
  };

  /// \brief One long-lived shard worker and its handoff queue.
  struct ShardPipe {
    SpscQueue<WorkBlock> queue{1024};
    std::thread worker;
    std::atomic<uint64_t> pushed{0};  ///< router-side block count
    std::atomic<uint64_t> done{0};    ///< worker-side block count
    std::mutex drain_mu;
    std::condition_variable drain_cv;
    ShardScratch scratch;
  };

  struct ShardPipes {
    std::atomic<bool> stop{false};
    std::deque<ShardPipe> pipes;  // deque: ShardPipe is not movable
  };

  /// \brief Interns `key` for `qs` (legacy mode), creating its run and match
  /// bucket on first use. `appender` must be qs.matches' live batch appender,
  /// or nullptr when the caller does not hold the table lock (per-event path).
  uint32_t InternKey(QueryState& qs, std::string_view key, uint64_t hash,
                     MatchTable::Appender* appender);

  /// Deduplicated index of (type, attr); appends a new spec if unseen.
  uint16_t SpecIndexFor(EventTypeId type, size_t attr);

  /// Assigns query `id` to its merge group / residue / table classes,
  /// creating them as needed. Called by AddQuery, and by RestoreState when a
  /// snapshot's persisted mid-stream flags require rebuilding the plan.
  void AssignMergePlan(QueryId id, bool force_singleton);

  /// Fills prep_ with one (view, hash) per (spec, event) for this batch.
  void PrepareBatchKeys(const EventBatch& batch);

  /// Rebuilds classes_by_type_ from route_classes_ when stale.
  void RebuildRouteIndex();

  /// Legacy mode: evaluates queries `shard, shard + stride, ...` over the
  /// whole batch.
  void ProcessShard(const EventBatch& batch, size_t shard, size_t stride,
                    ShardScratch* scratch);

  // ---- merged mode ----

  void OnEventMerged(const Event& event);
  void IngestBatchMerged(const EventBatch& batch);

  /// \brief Single-threaded, stream-order routing of one group's relevant
  /// events: interns keys, creates runs/buckets on first sight, and appends
  /// one WorkItem per (event, run) to the owning shard's list in
  /// `per_shard` (already sized to the shard count).
  void RouteGroupBatch(MergeGroup& g, const EventBatch& batch,
                       std::vector<std::vector<WorkItem>>* per_shard);

  /// Interns `key` into group `g` (router thread only): creates the SharedRun
  /// and registers the partition's bucket in every member table on first use.
  uint32_t InternGroupKey(MergeGroup& g, std::string_view key, uint64_t hash);

  /// The shard owning (group, run) — a pure function, so ownership is stable
  /// across batches and identical for every shard count's decomposition.
  static size_t ShardOf(uint32_t group, uint32_t run, size_t num_shards);

  /// \brief Evaluates one routed block. Runs on a shard worker (or inline
  /// when single-sharded); touches only the block's group, the batch, and
  /// `scratch` — never the engine — so it is race-free by ownership.
  static void ProcessMergedBlock(const WorkBlock& block, ShardScratch* scratch);

  void EnsurePipes(size_t shards);
  void StopPipes();

  /// Merges per-shard notes into (event, query) order and fires callbacks.
  void DispatchNotifications();

  const EventTypeRegistry* registry_;  // not owned
  std::vector<std::unique_ptr<QueryState>> queries_;
  std::function<void(const MatchNotification&)> callback_;
  uint64_t events_processed_ = 0;

  // Partition-key extraction, shared across queries.
  std::vector<ExtractorSpec> specs_;
  std::vector<std::vector<uint16_t>> specs_by_type_;  ///< type -> spec indices
  uint64_t empty_key_hash_ = PartitionKeyHash({});
  std::string serial_key_scratch_;  ///< OnEvent: reused numeric-key buffer
  MatchRow serial_row_scratch_;     ///< OnEvent: reused run output row
  std::vector<PendingNote> serial_notes_;  ///< OnEvent merged: per-event notes

  // Route classes: queries with identical route tables share one class, and
  // each batch computes the class's relevant-event index list once — so 1000
  // replicated queries (the Fig. 20 shape) skip a batch's irrelevant events
  // with one scan total instead of one scan each. classes_by_type_ inverts
  // the class route tables (event type -> classes that want it); it is
  // rebuilt lazily after AddQuery instead of being rescanned per batch.
  std::vector<std::vector<uint16_t>> route_classes_;   ///< class -> route table
  std::vector<std::vector<uint16_t>> classes_by_type_; ///< type -> class idxs
  bool route_index_dirty_ = false;
  std::vector<std::vector<uint32_t>> class_events_;    ///< class -> event idxs

  // Multi-query merge plan.
  bool merge_enabled_ = true;
  MergePlanner planner_;
  std::vector<std::unique_ptr<MergeGroup>> groups_;

  // Batched-ingest machinery (buffers reused across batches).
  size_t num_shards_ = 1;
  std::unique_ptr<ThreadPool> pool_;  ///< legacy (merge-off) fork/join pool
  std::unique_ptr<ShardPipes> pipes_; ///< merged-mode shard pipeline
  std::vector<std::vector<PrepKey>> prep_;           ///< per spec, per event
  std::vector<std::vector<std::string>> prep_keys_;  ///< numeric keys storage
  std::vector<ShardScratch> scratch_;
  std::vector<std::vector<WorkItem>> route_items_;   ///< router per-shard lists
  std::vector<PendingNote> merged_notes_;
};

}  // namespace exstream
