// Compiled WHERE-clause predicates: schema-resolved, ready for evaluation.

#pragma once

#include <optional>

#include "common/result.h"
#include "event/event.h"
#include "event/registry.h"
#include "query/ast.h"

namespace exstream {

/// \brief A schema-resolved reference to one side of a predicate.
struct CompiledRef {
  size_t component = 0;  ///< which pattern component the variable binds
  bool is_timestamp = false;
  size_t attr_index = 0;  ///< valid when !is_timestamp
};

/// \brief A predicate compiled against the pattern's schemas.
///
/// `component` (of lhs) determines when the predicate fires: it is evaluated
/// on each event the component attempts to match, with earlier components'
/// bound events available for attribute-to-attribute comparisons.
struct CompiledPredicate {
  CompiledRef lhs;
  CompareOp op = CompareOp::kEq;
  std::optional<Value> rhs_constant;
  std::optional<CompiledRef> rhs_ref;  ///< must bind an earlier component

  /// Evaluates against the candidate event and previously bound events.
  ///
  /// \param candidate the event the lhs component is trying to match
  /// \param bound earlier components' matched events, indexed by component
  ///        (entries for unmatched components are ignored)
  bool Eval(const Event& candidate, const std::vector<Event>& bound) const;
};

/// \brief Reads the referenced value out of an event.
double RefValueAsDouble(const CompiledRef& ref, const Event& event);
Value RefValue(const CompiledRef& ref, const Event& event);

}  // namespace exstream
