#include "cep/match_table.h"

#include "common/strings.h"

namespace exstream {

Result<size_t> MatchTable::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return i;
  }
  return Status::NotFound(StrFormat("no match column '%.*s'",
                                    static_cast<int>(name.size()), name.data()));
}

void MatchTable::Append(const std::string& partition, MatchRow row) {
  std::lock_guard<std::mutex> lock(mu_);
  rows_[partition].push_back(std::move(row));
}

void MatchTable::MarkComplete(const std::string& partition) {
  std::lock_guard<std::mutex> lock(mu_);
  complete_[partition] = true;
}

bool MatchTable::IsComplete(const std::string& partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = complete_.find(partition);
  return it != complete_.end() && it->second;
}

std::vector<std::string> MatchTable::Partitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& [k, _] : rows_) out.push_back(k);
  return out;
}

std::vector<MatchRow> MatchTable::Rows(const std::string& partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(partition);
  if (it == rows_.end()) return {};
  return it->second;
}

size_t MatchTable::NumRows(const std::string& partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(partition);
  return it == rows_.end() ? 0 : it->second.size();
}

size_t MatchTable::TotalRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [_, v] : rows_) n += v.size();
  return n;
}

Result<TimeSeries> MatchTable::ExtractSeries(const std::string& partition,
                                             std::string_view column) const {
  EXSTREAM_ASSIGN_OR_RETURN(const size_t col, ColumnIndex(column));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(partition);
  if (it == rows_.end()) {
    return Status::NotFound("no match rows for partition '" + partition + "'");
  }
  TimeSeries out;
  for (const MatchRow& row : it->second) {
    if (col >= row.values.size()) continue;
    EXSTREAM_RETURN_NOT_OK(out.Append(row.ts, row.values[col].AsDouble()));
  }
  return out;
}

}  // namespace exstream
