#include "cep/match_table.h"

#include <algorithm>

#include "common/strings.h"
#include "event/codec.h"

namespace exstream {

Result<size_t> MatchTable::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return i;
  }
  return Status::NotFound(StrFormat("no match column '%.*s'",
                                    static_cast<int>(name.size()), name.data()));
}

size_t MatchTable::FindLocked(std::string_view partition) const {
  auto it = index_.find(partition);
  return it == index_.end() ? buckets_.size() : it->second;
}

uint32_t MatchTable::EnsureBucketLocked(std::string_view partition) {
  auto it = index_.find(partition);
  if (it != index_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(buckets_.size());
  buckets_.emplace_back();
  buckets_.back().key = std::string(partition);
  index_.emplace(std::string_view(buckets_.back().key), id);
  return id;
}

uint32_t MatchTable::EnsureBucket(std::string_view partition) {
  std::lock_guard<std::mutex> lock(mu_);
  return EnsureBucketLocked(partition);
}

void MatchTable::AppendLocked(uint32_t bucket, const MatchRow& row) {
  Bucket& b = buckets_[bucket];
  b.ts.push_back(row.ts);
  b.cells.insert(b.cells.end(), row.values.begin(), row.values.end());
  b.ends.push_back(static_cast<uint32_t>(b.cells.size()));
}

void MatchTable::Append(uint32_t bucket, const MatchRow& row) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendLocked(bucket, row);
}

void MatchTable::Append(const std::string& partition, const MatchRow& row) {
  Append(EnsureBucket(partition), row);
}

void MatchTable::MarkComplete(uint32_t bucket) {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_[bucket].complete = true;
}

void MatchTable::MarkComplete(const std::string& partition) {
  MarkComplete(EnsureBucket(partition));
}

std::vector<std::unique_lock<std::mutex>> MatchTable::LockAllStripes() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kNumStripes);
  for (std::mutex& m : stripe_mu_) locks.emplace_back(m);
  return locks;
}

bool MatchTable::IsComplete(const std::string& partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t i = FindLocked(partition);
  if (i >= buckets_.size()) return false;
  std::lock_guard<std::mutex> stripe(StripeFor(static_cast<uint32_t>(i)));
  return buckets_[i].complete;
}

std::vector<std::string> MatchTable::Partitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto stripes = LockAllStripes();
  std::vector<std::string> out;
  out.reserve(buckets_.size());
  for (const Bucket& b : buckets_) {
    // Buckets are pre-registered at partition-intern time; only partitions
    // that actually produced rows are listed (matching the pre-bucket API).
    if (!b.ts.empty()) out.push_back(b.key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<MatchRow> MatchTable::Rows(const std::string& partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t i = FindLocked(partition);
  if (i >= buckets_.size()) return {};
  std::lock_guard<std::mutex> stripe(StripeFor(static_cast<uint32_t>(i)));
  const Bucket& b = buckets_[i];
  std::vector<MatchRow> out(b.ts.size());
  for (size_t r = 0; r < b.ts.size(); ++r) {
    const size_t begin = r == 0 ? 0 : b.ends[r - 1];
    out[r].ts = b.ts[r];
    out[r].values.assign(b.cells.begin() + static_cast<ptrdiff_t>(begin),
                         b.cells.begin() + static_cast<ptrdiff_t>(b.ends[r]));
  }
  return out;
}

size_t MatchTable::NumRows(const std::string& partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t i = FindLocked(partition);
  if (i >= buckets_.size()) return 0;
  std::lock_guard<std::mutex> stripe(StripeFor(static_cast<uint32_t>(i)));
  return buckets_[i].ts.size();
}

size_t MatchTable::TotalRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto stripes = LockAllStripes();
  size_t n = 0;
  for (const Bucket& b : buckets_) n += b.ts.size();
  return n;
}

Result<TimeSeries> MatchTable::ExtractSeries(const std::string& partition,
                                             std::string_view column) const {
  EXSTREAM_ASSIGN_OR_RETURN(const size_t col, ColumnIndex(column));
  std::lock_guard<std::mutex> lock(mu_);
  const size_t i = FindLocked(partition);
  if (i >= buckets_.size()) {
    return Status::NotFound("no match rows for partition '" + partition + "'");
  }
  std::lock_guard<std::mutex> stripe(StripeFor(static_cast<uint32_t>(i)));
  const Bucket& b = buckets_[i];
  TimeSeries out;
  for (size_t r = 0; r < b.ts.size(); ++r) {
    const size_t begin = r == 0 ? 0 : b.ends[r - 1];
    if (begin + col >= b.ends[r]) continue;  // row too narrow for this column
    EXSTREAM_RETURN_NOT_OK(out.Append(b.ts[r], b.cells[begin + col].AsDouble()));
  }
  return out;
}

void MatchTable::SaveState(BytesWriter* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto stripes = LockAllStripes();
  out->Put<uint32_t>(static_cast<uint32_t>(buckets_.size()));
  for (const Bucket& b : buckets_) {
    out->PutString(b.key);
    out->Put<uint8_t>(b.complete ? 1 : 0);
    out->PutPodVector(b.ts);
    out->Put<uint32_t>(static_cast<uint32_t>(b.cells.size()));
    for (const Value& v : b.cells) PutValue(out, v);
    out->PutPodVector(b.ends);
  }
}

Status MatchTable::RestoreState(BytesReader* in) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!buckets_.empty()) {
    return Status::InvalidArgument("match table must be empty before restore");
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_buckets, in->Get<uint32_t>());
  for (uint32_t i = 0; i < n_buckets; ++i) {
    Bucket b;
    EXSTREAM_ASSIGN_OR_RETURN(b.key, in->GetString());
    EXSTREAM_ASSIGN_OR_RETURN(const uint8_t complete, in->Get<uint8_t>());
    b.complete = complete != 0;
    EXSTREAM_RETURN_NOT_OK(in->GetPodVector(&b.ts));
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_cells, in->Get<uint32_t>());
    b.cells.reserve(n_cells);
    for (uint32_t c = 0; c < n_cells; ++c) {
      EXSTREAM_ASSIGN_OR_RETURN(Value v, GetValue(in));
      b.cells.push_back(std::move(v));
    }
    EXSTREAM_RETURN_NOT_OK(in->GetPodVector(&b.ends));
    buckets_.push_back(std::move(b));
    index_.emplace(std::string_view(buckets_.back().key),
                   static_cast<uint32_t>(buckets_.size() - 1));
  }
  return Status::OK();
}

}  // namespace exstream
