#include "cep/shared_nfa.h"

#include <algorithm>

#include "common/strings.h"
#include "event/codec.h"

namespace exstream {

SharedNfa::SharedNfa(const CompiledQuery* shape) : shape_(shape) {
  for (const CompiledComponent& comp : shape_->components()) {
    if (comp.kleene) has_kleene_ = true;
  }
  if (!has_kleene_) return;
  // A predicate rhs referencing the kleene component forces the bound slot
  // regardless of any residue's RETURN clause.
  for (const CompiledComponent& comp : shape_->components()) {
    for (const CompiledPredicate& pred : comp.predicates) {
      if (pred.rhs_ref.has_value() &&
          pred.rhs_ref->component == shape_->kleene_component()) {
        kleene_bound_needed_ = true;
      }
    }
  }
}

uint32_t SharedNfa::AddResidue(const CompiledQuery* returns_src) {
  Residue r;
  r.src = returns_src;
  r.agg_offset = total_aggs_;
  total_aggs_ += returns_src->returns().size();
  if (returns_src->kleene_bound_needed()) kleene_bound_needed_ = true;
  residues_.push_back(r);
  return static_cast<uint32_t>(residues_.size() - 1);
}

SharedRun::SharedRun(const SharedNfa* nfa) : nfa_(nfa) {
  bound_.resize(nfa_->shape_->components().size());
  aggs_.resize(nfa_->total_aggs_);
  Reset();
}

void SharedRun::Reset() {
  state_ = NextPositiveIndex(0);
  last_positive_ = -1;
  kleene_active_ = false;
  kleene_count_ = 0;
  std::fill(aggs_.begin(), aggs_.end(), AggState{});
  for (Event& e : bound_) e = Event{};
}

size_t SharedRun::NextPositiveIndex(size_t from) const {
  const auto& comps = nfa_->shape_->components();
  size_t i = from;
  while (i < comps.size() && comps[i].negated) ++i;
  return i;
}

bool SharedRun::ViolatesNegation(const Event& event) const {
  const auto& comps = nfa_->shape_->components();
  size_t lo;
  size_t hi;
  if (kleene_active_) {
    lo = state_ + 1;
    hi = NextPositiveIndex(state_ + 1);
  } else {
    if (last_positive_ < 0) return false;
    lo = static_cast<size_t>(last_positive_) + 1;
    hi = state_;
  }
  for (size_t i = lo; i < hi && i < comps.size(); ++i) {
    if (!comps[i].negated || event.type != comps[i].type) continue;
    bool pass = true;
    for (const CompiledPredicate& pred : comps[i].predicates) {
      if (!pred.Eval(event, bound_)) {
        pass = false;
        break;
      }
    }
    if (pass) return true;
  }
  return false;
}

bool SharedRun::TryAdvance(const Event& event, size_t component_idx) const {
  const CompiledComponent& comp = nfa_->shape_->components()[component_idx];
  if (event.type != comp.type) return false;
  for (const CompiledPredicate& pred : comp.predicates) {
    if (!pred.Eval(event, bound_)) return false;
  }
  return true;
}

void SharedRun::AbsorbKleene(const Event& event) {
  ++kleene_count_;
  if (nfa_->kleene_bound_needed_) {
    bound_[nfa_->shape_->kleene_component()] = event;
  }
  // Aggregates update in residue order, and within a residue in RETURN-item
  // order — the same per-item order each member's QueryRun uses, so the
  // floating-point results are bit-identical.
  for (const SharedNfa::Residue& res : nfa_->residues_) {
    const auto& returns = res.src->returns();
    for (size_t i = 0; i < returns.size(); ++i) {
      const CompiledReturn& r = returns[i];
      if (r.agg == ReturnAgg::kNone) continue;
      const double v = RefValueAsDouble(r.ref, event);
      AggState& a = aggs_[res.agg_offset + i];
      a.sum += v;
      a.min = a.count == 0 ? v : std::min(a.min, v);
      a.max = a.count == 0 ? v : std::max(a.max, v);
      ++a.count;
    }
  }
}

SharedStepResult SharedRun::Step(const Event& event) {
  SharedStepResult result;
  const CompiledQuery& shape = *nfa_->shape_;
  const size_t num_components = shape.components().size();
  const bool run_active = kleene_active_ || last_positive_ >= 0;

  const Timestamp within = shape.query().within;
  if (within > 0 && run_active && event.ts - run_start_ > within) {
    Reset();
  }

  if (shape.has_negation() && ViolatesNegation(event)) Reset();

  if (kleene_active_) {
    if (TryAdvance(event, state_)) {
      AbsorbKleene(event);
      result.consumed = true;
      result.absorbed_kleene = true;
      return result;
    }
    const size_t next = NextPositiveIndex(state_ + 1);
    if (next < num_components && TryAdvance(event, next)) {
      bound_[next] = event;
      kleene_active_ = false;
      last_positive_ = static_cast<int>(next);
      result.consumed = true;
      result.closed_kleene = true;
      if (NextPositiveIndex(next + 1) >= num_components) {
        result.match_complete = true;
      } else {
        state_ = NextPositiveIndex(next + 1);
      }
      return result;
    }
    return result;  // skip-till-next-match
  }

  if (state_ >= num_components || !TryAdvance(event, state_)) return result;
  const CompiledComponent& comp = shape.components()[state_];
  result.consumed = true;
  if (!run_active || last_positive_ < 0) run_start_ = event.ts;
  if (comp.kleene) {
    kleene_active_ = true;
    AbsorbKleene(event);
    result.absorbed_kleene = true;
    return result;
  }
  bound_[state_] = event;
  last_positive_ = static_cast<int>(state_);
  if (NextPositiveIndex(state_ + 1) >= num_components) {
    result.match_complete = true;
  } else {
    state_ = NextPositiveIndex(state_ + 1);
  }
  return result;
}

void SharedRun::AppendRowValues(uint32_t residue, const Event& trigger,
                                std::vector<Value>* out) const {
  const SharedNfa::Residue& res = nfa_->residues_[residue];
  const auto& returns = res.src->returns();
  for (size_t i = 0; i < returns.size(); ++i) {
    const CompiledReturn& r = returns[i];
    if (r.agg != ReturnAgg::kNone) {
      const AggState& a = aggs_[res.agg_offset + i];
      switch (r.agg) {
        case ReturnAgg::kSum:
          out->emplace_back(a.sum);
          break;
        case ReturnAgg::kCount:
          out->emplace_back(static_cast<int64_t>(a.count));
          break;
        case ReturnAgg::kAvg:
          out->emplace_back(a.count > 0 ? a.sum / static_cast<double>(a.count)
                                        : 0.0);
          break;
        case ReturnAgg::kMin:
          out->emplace_back(a.min);
          break;
        case ReturnAgg::kMax:
          out->emplace_back(a.max);
          break;
        case ReturnAgg::kNone:
          break;  // unreachable
      }
      continue;
    }
    const Event& source =
        r.index == KleeneIndex::kCurrent ? trigger : bound_[r.ref.component];
    out->push_back(RefValue(r.ref, source));
  }
}

void SharedRun::SaveMemberView(uint32_t residue, BytesWriter* out) const {
  const SharedNfa::Residue& res = nfa_->residues_[residue];
  out->Put<uint64_t>(state_);
  out->Put<int32_t>(last_positive_);
  out->Put<int64_t>(run_start_);
  out->Put<uint8_t>(kleene_active_ ? 1 : 0);
  out->Put<uint64_t>(kleene_count_);
  out->Put<uint16_t>(static_cast<uint16_t>(bound_.size()));
  const size_t kleene_idx = nfa_->shape_->kleene_component();
  const bool member_stores_kleene = nfa_->MemberKleeneBoundNeeded(residue);
  for (size_t c = 0; c < bound_.size(); ++c) {
    if (c == kleene_idx && nfa_->kleene_bound_needed_ && !member_stores_kleene) {
      // This member's own QueryRun would have left the slot empty; writing
      // the group's copy would desync the byte format from unmerged saves.
      PutEvent(out, Event{});
    } else {
      PutEvent(out, bound_[c]);
    }
  }
  const auto& returns = res.src->returns();
  out->Put<uint16_t>(static_cast<uint16_t>(returns.size()));
  for (size_t i = 0; i < returns.size(); ++i) {
    const AggState& a = aggs_[res.agg_offset + i];
    out->Put<double>(a.sum);
    out->Put<double>(a.min);
    out->Put<double>(a.max);
    out->Put<uint64_t>(a.count);
  }
}

Status SharedRun::RestoreMemberView(BytesReader* in, uint32_t residue,
                                    bool take_base, bool take_kleene_bound,
                                    bool take_aggs) {
  const SharedNfa::Residue& res = nfa_->residues_[residue];
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t state, in->Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const int32_t last_positive, in->Get<int32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const int64_t run_start, in->Get<int64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint8_t kleene_active, in->Get<uint8_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t kleene_count, in->Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint16_t n_bound, in->Get<uint16_t>());
  if (n_bound != bound_.size()) {
    return Status::Corruption(
        StrFormat("run snapshot binds %u components, group query has %zu",
                  n_bound, bound_.size()));
  }
  const size_t kleene_idx = nfa_->shape_->kleene_component();
  for (size_t c = 0; c < bound_.size(); ++c) {
    EXSTREAM_ASSIGN_OR_RETURN(Event e, GetEvent(in));
    // The kleene slot is special: most members saved Event{} there (their
    // own QueryRun never stored it), so it is taken only from the designated
    // bound-source record.
    const bool kleene_slot = nfa_->has_kleene_ && c == kleene_idx;
    if ((take_base && !kleene_slot) || (kleene_slot && take_kleene_bound)) {
      bound_[c] = std::move(e);
    }
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint16_t n_aggs, in->Get<uint16_t>());
  if (n_aggs != res.src->returns().size()) {
    return Status::Corruption(
        StrFormat("run snapshot carries %u aggregates, residue has %zu", n_aggs,
                  res.src->returns().size()));
  }
  for (size_t i = 0; i < n_aggs; ++i) {
    AggState a;
    EXSTREAM_ASSIGN_OR_RETURN(a.sum, in->Get<double>());
    EXSTREAM_ASSIGN_OR_RETURN(a.min, in->Get<double>());
    EXSTREAM_ASSIGN_OR_RETURN(a.max, in->Get<double>());
    EXSTREAM_ASSIGN_OR_RETURN(a.count, in->Get<uint64_t>());
    if (take_aggs) aggs_[res.agg_offset + i] = a;
  }
  if (take_base) {
    state_ = static_cast<size_t>(state);
    last_positive_ = last_positive;
    run_start_ = run_start;
    kleene_active_ = kleene_active != 0;
    kleene_count_ = static_cast<size_t>(kleene_count);
  }
  return Status::OK();
}

}  // namespace exstream
