#include "cep/nfa.h"

#include <algorithm>

#include "common/strings.h"
#include "event/codec.h"

namespace exstream {

namespace {

// Resolves an AttrRef against the component list. Returns the component index
// and the compiled reference.
Result<std::pair<size_t, CompiledRef>> ResolveRef(const AttrRef& ref,
                                                  const Query& query,
                                                  const EventTypeRegistry* registry) {
  for (size_t c = 0; c < query.components.size(); ++c) {
    if (query.components[c].variable != ref.variable) continue;
    CompiledRef out;
    out.component = c;
    if (EqualsIgnoreCase(ref.attribute, "timestamp")) {
      out.is_timestamp = true;
      return std::make_pair(c, out);
    }
    EXSTREAM_ASSIGN_OR_RETURN(const EventTypeId tid,
                              registry->IdOf(query.components[c].event_type));
    EXSTREAM_ASSIGN_OR_RETURN(out.attr_index,
                              registry->schema(tid).AttributeIndex(ref.attribute));
    return std::make_pair(c, out);
  }
  return Status::InvalidArgument("unknown pattern variable '" + ref.variable + "'");
}

}  // namespace

Result<CompiledQuery> CompiledQuery::Compile(const Query& query,
                                             const EventTypeRegistry* registry) {
  if (query.components.empty()) {
    return Status::InvalidArgument("query has no pattern components");
  }
  CompiledQuery cq;
  cq.query_ = query;
  cq.relevant_types_.assign(registry->size(), false);

  if (query.components.front().negated || query.components.back().negated) {
    return Status::InvalidArgument(
        "a negated component needs surrounding positive components");
  }
  for (const QueryComponent& comp : query.components) {
    if (comp.negated && comp.kleene) {
      return Status::InvalidArgument("a component cannot be negated and kleene");
    }
    CompiledComponent cc;
    EXSTREAM_ASSIGN_OR_RETURN(cc.type, registry->IdOf(comp.event_type));
    cc.kleene = comp.kleene;
    cc.negated = comp.negated;
    if (!query.partition_attribute.empty()) {
      auto idx = registry->schema(cc.type).AttributeIndex(query.partition_attribute);
      if (!idx.ok()) {
        return Status::InvalidArgument(StrFormat(
            "partition attribute '%s' missing from event type '%s'",
            query.partition_attribute.c_str(), comp.event_type.c_str()));
      }
      cc.partition_attr = *idx;
    }
    cq.relevant_types_[cc.type] = true;
    if (cc.negated) cq.has_negation_ = true;
    cq.components_.push_back(std::move(cc));
  }

  for (const QueryPredicate& pred : query.predicates) {
    if (pred.lhs.index == KleeneIndex::kRange) {
      return Status::NotImplemented("range-indexed predicates are not supported");
    }
    EXSTREAM_ASSIGN_OR_RETURN(auto lhs_resolved, ResolveRef(pred.lhs, query, registry));
    const size_t anchor = lhs_resolved.first;
    CompiledPredicate cp;
    cp.lhs = lhs_resolved.second;
    cp.op = pred.op;
    if (pred.rhs_constant.has_value()) {
      cp.rhs_constant = pred.rhs_constant;
    } else {
      EXSTREAM_ASSIGN_OR_RETURN(auto rhs_resolved,
                                ResolveRef(*pred.rhs_attr, query, registry));
      if (rhs_resolved.first >= anchor) {
        return Status::InvalidArgument(
            "predicate rhs must reference an earlier pattern variable");
      }
      if (query.components[rhs_resolved.first].negated) {
        return Status::InvalidArgument(
            "predicate rhs cannot reference a negated component (it never "
            "binds an event)");
      }
      cp.rhs_ref = rhs_resolved.second;
    }
    cq.components_[anchor].predicates.push_back(std::move(cp));
  }

  const auto kleene_idx = query.KleeneComponentIndex();
  for (const ReturnItem& item : query.return_items) {
    CompiledReturn cr;
    cr.agg = item.agg;
    cr.index = item.ref.index;
    cr.output_name = item.OutputName();
    EXSTREAM_ASSIGN_OR_RETURN(auto resolved, ResolveRef(item.ref, query, registry));
    if (query.components[resolved.first].negated) {
      return Status::InvalidArgument(
          "RETURN cannot reference a negated component (it never binds an "
          "event)");
    }
    cr.ref = resolved.second;
    const bool on_kleene = kleene_idx.has_value() && resolved.first == *kleene_idx;
    if (item.agg != ReturnAgg::kNone && !on_kleene) {
      return Status::InvalidArgument(
          "aggregates in RETURN must range over the kleene variable");
    }
    if ((cr.index == KleeneIndex::kCurrent || cr.index == KleeneIndex::kRange) &&
        !on_kleene) {
      return Status::InvalidArgument(
          "kleene-indexed reference on a non-kleene variable");
    }
    if (on_kleene) cq.emits_per_kleene_ = true;
    cq.returns_.push_back(std::move(cr));
  }

  if (kleene_idx.has_value()) {
    cq.kleene_idx_ = *kleene_idx;
    for (const CompiledComponent& comp : cq.components_) {
      for (const CompiledPredicate& pred : comp.predicates) {
        if (pred.rhs_ref.has_value() && pred.rhs_ref->component == *kleene_idx) {
          cq.kleene_bound_needed_ = true;
        }
      }
    }
    for (const CompiledReturn& r : cq.returns_) {
      if (r.agg == ReturnAgg::kNone && r.ref.component == *kleene_idx &&
          r.index != KleeneIndex::kCurrent) {
        cq.kleene_bound_needed_ = true;
      }
    }
  }
  return cq;
}

std::vector<std::string> CompiledQuery::OutputColumns() const {
  std::vector<std::string> out;
  out.reserve(returns_.size());
  for (const auto& r : returns_) out.push_back(r.output_name);
  return out;
}

bool CompiledQuery::IsRelevantType(EventTypeId type) const {
  return type < relevant_types_.size() && relevant_types_[type];
}

QueryRun::QueryRun(const CompiledQuery* cq) : cq_(cq) {
  bound_.resize(cq_->components_.size());
  aggs_.resize(cq_->returns_.size());
  Reset();
}

void QueryRun::Reset() {
  state_ = NextPositiveIndex(0);
  last_positive_ = -1;
  kleene_active_ = false;
  kleene_count_ = 0;
  std::fill(aggs_.begin(), aggs_.end(), AggState{});
  for (Event& e : bound_) e = Event{};
}

size_t QueryRun::NextPositiveIndex(size_t from) const {
  const auto& comps = cq_->components_;
  size_t i = from;
  while (i < comps.size() && comps[i].negated) ++i;
  return i;
}

bool QueryRun::ViolatesNegation(const Event& event) const {
  // Active guards: the negated components strictly between the last matched
  // positive component (the kleene itself while it is absorbing) and the
  // positive component currently awaited.
  const auto& comps = cq_->components_;
  size_t lo;
  size_t hi;
  if (kleene_active_) {
    lo = state_ + 1;
    hi = NextPositiveIndex(state_ + 1);
  } else {
    if (last_positive_ < 0) return false;  // no run in flight
    lo = static_cast<size_t>(last_positive_) + 1;
    hi = state_;
  }
  for (size_t i = lo; i < hi && i < comps.size(); ++i) {
    if (!comps[i].negated || event.type != comps[i].type) continue;
    bool pass = true;
    for (const CompiledPredicate& pred : comps[i].predicates) {
      if (!pred.Eval(event, bound_)) {
        pass = false;
        break;
      }
    }
    if (pass) return true;
  }
  return false;
}

bool QueryRun::TryAdvance(const Event& event, size_t component_idx) {
  const CompiledComponent& comp = cq_->components_[component_idx];
  if (event.type != comp.type) return false;
  for (const CompiledPredicate& pred : comp.predicates) {
    if (!pred.Eval(event, bound_)) return false;
  }
  return true;
}

void QueryRun::AbsorbKleene(const Event& event) {
  ++kleene_count_;
  if (cq_->kleene_bound_needed_) {
    bound_[cq_->kleene_idx_] = event;  // later predicates/returns see the latest
  }
  for (size_t i = 0; i < cq_->returns_.size(); ++i) {
    const CompiledReturn& r = cq_->returns_[i];
    if (r.agg == ReturnAgg::kNone) continue;
    const double v = RefValueAsDouble(r.ref, event);
    AggState& a = aggs_[i];
    a.sum += v;
    a.min = a.count == 0 ? v : std::min(a.min, v);
    a.max = a.count == 0 ? v : std::max(a.max, v);
    ++a.count;
  }
}

void QueryRun::AppendRowValues(const Event& trigger, std::vector<Value>* out) const {
  for (size_t i = 0; i < cq_->returns_.size(); ++i) {
    const CompiledReturn& r = cq_->returns_[i];
    if (r.agg != ReturnAgg::kNone) {
      const AggState& a = aggs_[i];
      switch (r.agg) {
        case ReturnAgg::kSum:
          out->emplace_back(a.sum);
          break;
        case ReturnAgg::kCount:
          out->emplace_back(static_cast<int64_t>(a.count));
          break;
        case ReturnAgg::kAvg:
          out->emplace_back(a.count > 0 ? a.sum / static_cast<double>(a.count)
                                        : 0.0);
          break;
        case ReturnAgg::kMin:
          out->emplace_back(a.min);
          break;
        case ReturnAgg::kMax:
          out->emplace_back(a.max);
          break;
        case ReturnAgg::kNone:
          break;  // unreachable
      }
      continue;
    }
    // A kCurrent ref implies emits_per_kleene_, under which rows are only
    // ever harvested with the just-absorbed kleene event as trigger — so the
    // trigger IS the current kleene event and no stored copy is needed.
    const Event& source =
        r.index == KleeneIndex::kCurrent ? trigger : bound_[r.ref.component];
    out->push_back(RefValue(r.ref, source));
  }
}

void QueryRun::BuildRow(const Event& trigger, MatchRow* out) const {
  out->ts = trigger.ts;
  out->values.clear();
  out->values.reserve(cq_->returns_.size());
  AppendRowValues(trigger, &out->values);
}

RunStepResult QueryRun::OnEvent(const Event& event) {
  MatchRow row;
  RunStepResult result = OnEvent(event, &row);
  result.row = std::move(row);
  return result;
}

RunStepResult QueryRun::OnEvent(const Event& event, MatchRow* row) {
  RunStepResult result = OnEventDeferred(event);
  if (result.emitted_row) BuildRow(event, row);
  if (result.match_complete) Reset();
  return result;
}

RunStepResult QueryRun::OnEventDeferred(const Event& event) {
  RunStepResult result;
  const size_t num_components = cq_->components_.size();
  const bool run_active = kleene_active_ || last_positive_ >= 0;

  // WITHIN enforcement: an active run whose time budget is exhausted dies;
  // the current event may then open a fresh run below.
  const Timestamp within = cq_->query_.within;
  if (within > 0 && run_active && event.ts - run_start_ > within) {
    Reset();
  }

  // Negation guards: an event matching an active negated component voids the
  // run (and may then open a fresh one below).
  if (cq_->has_negation_ && ViolatesNegation(event)) Reset();

  if (kleene_active_) {
    // Either extend the kleene closure or close it with the next positive
    // component.
    if (TryAdvance(event, state_)) {
      AbsorbKleene(event);
      result.consumed = true;
      if (cq_->emits_per_kleene_) result.emitted_row = true;
      return result;
    }
    const size_t next = NextPositiveIndex(state_ + 1);
    if (next < num_components && TryAdvance(event, next)) {
      bound_[next] = event;
      kleene_active_ = false;
      last_positive_ = static_cast<int>(next);
      result.consumed = true;
      if (NextPositiveIndex(next + 1) >= num_components) {
        result.match_complete = true;
        if (!cq_->emits_per_kleene_) result.emitted_row = true;
      } else {
        state_ = NextPositiveIndex(next + 1);
      }
      return result;
    }
    return result;  // skip-till-next-match: irrelevant event ignored
  }

  if (state_ >= num_components || !TryAdvance(event, state_)) return result;
  const CompiledComponent& comp = cq_->components_[state_];
  result.consumed = true;
  if (!run_active || last_positive_ < 0) run_start_ = event.ts;
  if (comp.kleene) {
    kleene_active_ = true;
    AbsorbKleene(event);
    if (cq_->emits_per_kleene_) result.emitted_row = true;
    return result;
  }
  bound_[state_] = event;
  last_positive_ = static_cast<int>(state_);
  if (NextPositiveIndex(state_ + 1) >= num_components) {
    result.match_complete = true;
    result.emitted_row = true;
  } else {
    state_ = NextPositiveIndex(state_ + 1);
  }
  return result;
}

void QueryRun::SaveState(BytesWriter* out) const {
  out->Put<uint64_t>(state_);
  out->Put<int32_t>(last_positive_);
  out->Put<int64_t>(run_start_);
  out->Put<uint8_t>(kleene_active_ ? 1 : 0);
  out->Put<uint64_t>(kleene_count_);
  out->Put<uint16_t>(static_cast<uint16_t>(bound_.size()));
  for (const Event& e : bound_) PutEvent(out, e);
  out->Put<uint16_t>(static_cast<uint16_t>(aggs_.size()));
  for (const AggState& a : aggs_) {
    out->Put<double>(a.sum);
    out->Put<double>(a.min);
    out->Put<double>(a.max);
    out->Put<uint64_t>(a.count);
  }
}

Status QueryRun::RestoreState(BytesReader* in) {
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t state, in->Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const int32_t last_positive, in->Get<int32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const int64_t run_start, in->Get<int64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint8_t kleene_active, in->Get<uint8_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t kleene_count, in->Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint16_t n_bound, in->Get<uint16_t>());
  if (n_bound != bound_.size()) {
    return Status::Corruption(
        StrFormat("run snapshot binds %u components, query has %zu", n_bound,
                  bound_.size()));
  }
  for (Event& e : bound_) {
    EXSTREAM_ASSIGN_OR_RETURN(e, GetEvent(in));
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint16_t n_aggs, in->Get<uint16_t>());
  if (n_aggs != aggs_.size()) {
    return Status::Corruption(
        StrFormat("run snapshot carries %u aggregates, query has %zu", n_aggs,
                  aggs_.size()));
  }
  for (AggState& a : aggs_) {
    EXSTREAM_ASSIGN_OR_RETURN(a.sum, in->Get<double>());
    EXSTREAM_ASSIGN_OR_RETURN(a.min, in->Get<double>());
    EXSTREAM_ASSIGN_OR_RETURN(a.max, in->Get<double>());
    EXSTREAM_ASSIGN_OR_RETURN(a.count, in->Get<uint64_t>());
  }
  state_ = static_cast<size_t>(state);
  last_positive_ = last_positive;
  run_start_ = run_start;
  kleene_active_ = kleene_active != 0;
  kleene_count_ = static_cast<size_t>(kleene_count);
  return Status::OK();
}

}  // namespace exstream
