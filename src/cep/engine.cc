#include "cep/engine.h"

#include <algorithm>
#include <thread>

#include "query/parser.h"

namespace exstream {

Result<QueryId> CepEngine::AddQuery(const Query& query) {
  EXSTREAM_ASSIGN_OR_RETURN(CompiledQuery cq, CompiledQuery::Compile(query, registry_));
  const QueryId id = static_cast<QueryId>(queries_.size());
  queries_.push_back(std::make_unique<QueryState>(std::move(cq)));

  // Build the type-route table: one lookup replaces the per-event relevance
  // bitmap check plus the per-component partition-attribute scan.
  QueryState& qs = *queries_.back();
  qs.route.assign(registry_->size(), kRouteIrrelevant);
  const bool partitioned = !qs.compiled.query().partition_attribute.empty();
  for (const CompiledComponent& comp : qs.compiled.components()) {
    if (comp.type >= qs.route.size()) continue;
    if (!partitioned) {
      qs.route[comp.type] = kRouteEmptyKey;
    } else if (comp.partition_attr.has_value()) {
      qs.route[comp.type] =
          static_cast<uint16_t>(kRouteSpecBase + SpecIndexFor(comp.type,
                                                              *comp.partition_attr));
    }
    // A relevant type without a partition attribute stays unroutable, which
    // reproduces the legacy "event type matches but carries no key" skip.
  }

  // Assign the query to its route class (creating one if this route table is
  // new). AddQuery is rare and #classes is small, so linear search is fine.
  qs.route_class = static_cast<uint32_t>(route_classes_.size());
  for (size_t c = 0; c < route_classes_.size(); ++c) {
    if (route_classes_[c] == qs.route) {
      qs.route_class = static_cast<uint32_t>(c);
      break;
    }
  }
  if (qs.route_class == route_classes_.size()) route_classes_.push_back(qs.route);
  return id;
}

Result<QueryId> CepEngine::AddQueryText(std::string_view text, std::string name) {
  EXSTREAM_ASSIGN_OR_RETURN(Query q, ParseQuery(text, std::move(name)));
  return AddQuery(q);
}

Result<QueryId> CepEngine::QueryIdByName(std::string_view name) const {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i]->compiled.query().name == name) {
      return static_cast<QueryId>(i);
    }
  }
  return Status::NotFound("no query named '" + std::string(name) + "'");
}

void CepEngine::SetIngestThreads(size_t n) {
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  if (n == 0) n = hw;
  num_shards_ = n;
  // The shard count fixes the work decomposition (and is what the
  // determinism contract ranges over); the worker count is only a schedule,
  // so it is capped at the core count — oversubscribing cores buys nothing
  // and on a single core the shards simply run back to back.
  const size_t workers = std::min(n, hw);
  if (workers <= 1) {
    pool_.reset();
  } else if (pool_ == nullptr || pool_->num_threads() != workers) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
}

uint16_t CepEngine::SpecIndexFor(EventTypeId type, size_t attr) {
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s].type == type && specs_[s].attr == attr) {
      return static_cast<uint16_t>(s);
    }
  }
  const uint16_t s = static_cast<uint16_t>(specs_.size());
  specs_.push_back(ExtractorSpec{type, attr});
  if (specs_by_type_.size() <= type) specs_by_type_.resize(type + 1);
  specs_by_type_[type].push_back(s);
  return s;
}

uint32_t CepEngine::InternKey(QueryState& qs, std::string_view key, uint64_t hash,
                              MatchTable::Appender* appender) {
  bool created = false;
  const uint32_t id = qs.interner.Intern(key, hash, &created);
  if (created) {
    qs.runs.emplace_back(&qs.compiled);
    qs.buckets.push_back(appender != nullptr
                             ? appender->EnsureBucket(qs.interner.KeyOf(id))
                             : qs.matches.EnsureBucket(qs.interner.KeyOf(id)));
  }
  return id;
}

void CepEngine::OnEvent(const Event& event) {
  ++events_processed_;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    QueryState& qs = *queries_[qi];
    const uint16_t r = event.type < qs.route.size() ? qs.route[event.type]
                                                    : kRouteIrrelevant;
    if (r == kRouteIrrelevant) continue;

    std::string_view key;
    uint64_t hash;
    if (r == kRouteEmptyKey) {
      hash = empty_key_hash_;
    } else {
      const ExtractorSpec& spec = specs_[r - kRouteSpecBase];
      const Value& v = event.values[spec.attr];
      if (v.is_string()) {
        key = v.AsString();
      } else {
        serial_key_scratch_ = v.ToString();
        key = serial_key_scratch_;
      }
      hash = PartitionKeyHash(key);
    }

    const uint32_t id = InternKey(qs, key, hash, nullptr);
    RunStepResult step = qs.runs[id].OnEvent(event, &serial_row_scratch_);
    const uint32_t bucket = qs.buckets[id];
    if (step.emitted_row) {
      qs.matches.Append(bucket, serial_row_scratch_);
      if (callback_) {
        callback_(MatchNotification{static_cast<QueryId>(qi), id,
                                    qs.interner.KeyOf(id), serial_row_scratch_,
                                    step.match_complete});
      }
    }
    if (step.match_complete) {
      qs.matches.MarkComplete(bucket);
      if (callback_ && !step.emitted_row) {
        callback_(MatchNotification{static_cast<QueryId>(qi), id,
                                    qs.interner.KeyOf(id), MatchRow{}, true});
      }
    }
  }
}

void CepEngine::PrepareBatchKeys(const EventBatch& batch) {
  const size_t n = batch.size();
  prep_.resize(specs_.size());
  prep_keys_.resize(specs_.size());
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (prep_[s].size() < n) prep_[s].resize(n);
  }
  class_events_.resize(route_classes_.size());
  for (auto& list : class_events_) list.clear();
  for (uint32_t i = 0; i < n; ++i) {
    const Event& e = batch[i];
    for (size_t c = 0; c < route_classes_.size(); ++c) {
      const std::vector<uint16_t>& route = route_classes_[c];
      if (e.type < route.size() && route[e.type] != kRouteIrrelevant) {
        class_events_[c].push_back(i);
      }
    }
    if (e.type >= specs_by_type_.size()) continue;
    for (const uint16_t s : specs_by_type_[e.type]) {
      const Value& v = e.values[specs_[s].attr];
      PrepKey& pk = prep_[s][i];
      if (v.is_string()) {
        pk.view = v.AsString();
      } else {
        auto& storage = prep_keys_[s];
        if (storage.size() < n) storage.resize(n);
        storage[i] = v.ToString();
        pk.view = storage[i];
      }
      pk.hash = PartitionKeyHash(pk.view);
    }
  }
}

void CepEngine::ProcessShard(const EventBatch& batch, size_t shard, size_t stride,
                             ShardScratch* scratch) {
  const bool want_notes = callback_ != nullptr;
  for (size_t qi = shard; qi < queries_.size(); qi += stride) {
    QueryState& qs = *queries_[qi];
    // One lock acquisition per query per batch: rows, bucket registrations,
    // and completions go straight into the table while the appender holds
    // the lock (readers wait out one batch scan at most).
    MatchTable::Appender appender(&qs.matches);
    // Only this query's relevant events, via its route class's shared index
    // list — irrelevant events cost nothing here, not even a route lookup.
    for (const uint32_t i : class_events_[qs.route_class]) {
      const Event& e = batch[i];
      const uint16_t r = qs.route[e.type];

      std::string_view key;
      uint64_t hash;
      if (r == kRouteEmptyKey) {
        hash = empty_key_hash_;
      } else {
        const PrepKey& pk = prep_[r - kRouteSpecBase][i];
        key = pk.view;
        hash = pk.hash;
      }

      const uint32_t id = InternKey(qs, key, hash, &appender);
      QueryRun& run = qs.runs[id];
      const RunStepResult step = run.OnEventDeferred(e);
      if (!step.emitted_row && !step.match_complete) {
        continue;
      }
      const uint32_t bucket = qs.buckets[id];
      if (step.emitted_row) {
        // Harvest the row straight into bucket storage — the run's pre-reset
        // state backs AppendRowValues, so no intermediate row is built.
        std::vector<Value>* cells = appender.BeginRow(bucket, e.ts);
        const size_t first = cells->size();
        run.AppendRowValues(e, cells);
        appender.EndRow(bucket);
        if (want_notes) {
          MatchRow row;
          row.ts = e.ts;
          row.values.assign(cells->begin() + static_cast<ptrdiff_t>(first),
                            cells->end());
          scratch->notes.push_back(
              {i, MatchNotification{static_cast<QueryId>(qi), id,
                                    qs.interner.KeyOf(id), std::move(row),
                                    step.match_complete}});
        }
      }
      if (step.match_complete) {
        run.Reset();
        appender.MarkComplete(bucket);
        if (want_notes && !step.emitted_row) {
          scratch->notes.push_back(
              {i, MatchNotification{static_cast<QueryId>(qi), id,
                                    qs.interner.KeyOf(id), MatchRow{}, true}});
        }
      }
    }
  }
}

void CepEngine::DispatchNotifications() {
  if (callback_ == nullptr) {
    for (ShardScratch& s : scratch_) s.notes.clear();
    return;
  }
  merged_notes_.clear();
  for (ShardScratch& s : scratch_) {
    merged_notes_.insert(merged_notes_.end(),
                         std::make_move_iterator(s.notes.begin()),
                         std::make_move_iterator(s.notes.end()));
    s.notes.clear();
  }
  // Shards emit in per-query stream order; the canonical sequential order is
  // (event, query). Stable sort keeps the fixed row-before-completion order
  // of the (at most two) notes one (event, query) pair can produce.
  std::stable_sort(merged_notes_.begin(), merged_notes_.end(),
                   [](const PendingNote& a, const PendingNote& b) {
                     if (a.event_idx != b.event_idx) return a.event_idx < b.event_idx;
                     return a.note.query < b.note.query;
                   });
  for (const PendingNote& p : merged_notes_) callback_(p.note);
}

void CepEngine::IngestBatch(const EventBatch& batch) {
  if (batch.empty()) return;
  events_processed_ += batch.size();
  PrepareBatchKeys(batch);
  const size_t shards =
      std::max<size_t>(1, std::min(num_shards_, queries_.size()));
  if (scratch_.size() < shards) scratch_.resize(shards);
  if (shards <= 1 || pool_ == nullptr) {
    // Same decomposition and merge as the parallel path, scheduled serially.
    for (size_t s = 0; s < shards; ++s) ProcessShard(batch, s, shards, &scratch_[s]);
  } else {
    ParallelFor(pool_.get(), shards,
                [&](size_t s) { ProcessShard(batch, s, shards, &scratch_[s]); });
  }
  DispatchNotifications();
}

void CepEngine::SaveState(BytesWriter* out) const {
  out->Put<uint64_t>(events_processed_);
  out->Put<uint32_t>(static_cast<uint32_t>(queries_.size()));
  for (const auto& qs : queries_) {
    const uint32_t n_keys = static_cast<uint32_t>(qs->interner.size());
    out->Put<uint32_t>(n_keys);
    for (uint32_t id = 0; id < n_keys; ++id) {
      out->PutString(qs->interner.KeyOf(id));
    }
    out->PutPodVector(qs->buckets);
    for (uint32_t id = 0; id < n_keys; ++id) {
      qs->runs[id].SaveState(out);
    }
    qs->matches.SaveState(out);
  }
}

Status CepEngine::RestoreState(BytesReader* in) {
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t events_processed, in->Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_queries, in->Get<uint32_t>());
  if (n_queries != queries_.size()) {
    return Status::InvalidArgument(
        StrFormat("snapshot holds %u queries, engine has %zu registered",
                  n_queries, queries_.size()));
  }
  for (auto& qs : queries_) {
    if (qs->interner.size() != 0 || qs->matches.TotalRows() != 0) {
      return Status::InvalidArgument(
          "engine must be freshly constructed before restore");
    }
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_keys, in->Get<uint32_t>());
    // Re-interning the keys in saved id order reproduces the exact id
    // assignment (first-intern order is the id order).
    std::vector<std::string> keys;
    keys.reserve(n_keys);
    for (uint32_t i = 0; i < n_keys; ++i) {
      EXSTREAM_ASSIGN_OR_RETURN(std::string key, in->GetString());
      keys.push_back(std::move(key));
    }
    std::vector<uint32_t> buckets;
    EXSTREAM_RETURN_NOT_OK(in->GetPodVector(&buckets));
    if (buckets.size() != n_keys) {
      return Status::Corruption(
          StrFormat("snapshot bucket map holds %zu entries for %u keys",
                    buckets.size(), n_keys));
    }
    qs->runs.reserve(n_keys);
    for (uint32_t i = 0; i < n_keys; ++i) {
      bool created = false;
      const uint32_t id =
          qs->interner.Intern(keys[i], PartitionKeyHash(keys[i]), &created);
      if (!created || id != i) {
        return Status::Corruption(
            StrFormat("duplicate partition key in snapshot at id %u", i));
      }
      qs->runs.emplace_back(&qs->compiled);
      EXSTREAM_RETURN_NOT_OK(qs->runs.back().RestoreState(in));
    }
    qs->buckets = std::move(buckets);
    EXSTREAM_RETURN_NOT_OK(qs->matches.RestoreState(in));
  }
  events_processed_ = events_processed;
  return Status::OK();
}

}  // namespace exstream
