#include "cep/engine.h"

#include "query/parser.h"

namespace exstream {

Result<QueryId> CepEngine::AddQuery(const Query& query) {
  EXSTREAM_ASSIGN_OR_RETURN(CompiledQuery cq, CompiledQuery::Compile(query, registry_));
  const QueryId id = static_cast<QueryId>(queries_.size());
  queries_.push_back(std::make_unique<QueryState>(std::move(cq)));
  return id;
}

Result<QueryId> CepEngine::AddQueryText(std::string_view text, std::string name) {
  EXSTREAM_ASSIGN_OR_RETURN(Query q, ParseQuery(text, std::move(name)));
  return AddQuery(q);
}

Result<QueryId> CepEngine::QueryIdByName(std::string_view name) const {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i]->compiled.query().name == name) {
      return static_cast<QueryId>(i);
    }
  }
  return Status::NotFound("no query named '" + std::string(name) + "'");
}

void CepEngine::OnEvent(const Event& event) {
  ++events_processed_;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    QueryState& qs = *queries_[qi];
    if (!qs.compiled.IsRelevantType(event.type)) continue;

    // Partition key: the value of the bracketed attribute in this event's
    // schema (components of one query may place it at different indices).
    std::string partition;
    if (!qs.compiled.query().partition_attribute.empty()) {
      bool found = false;
      for (const CompiledComponent& comp : qs.compiled.components()) {
        if (comp.type == event.type && comp.partition_attr.has_value()) {
          partition = event.values[*comp.partition_attr].ToString();
          found = true;
          break;
        }
      }
      if (!found) continue;  // event type matches but carries no partition key
    }

    auto [it, inserted] = qs.runs.try_emplace(partition, &qs.compiled);
    RunStepResult step = it->second.OnEvent(event);
    if (step.emitted_row) {
      qs.matches.Append(partition, step.row);
      if (callback_) {
        callback_(MatchNotification{static_cast<QueryId>(qi), partition, step.row,
                                    step.match_complete});
      }
    }
    if (step.match_complete) {
      qs.matches.MarkComplete(partition);
      if (callback_ && !step.emitted_row) {
        callback_(MatchNotification{static_cast<QueryId>(qi), partition, MatchRow{},
                                    true});
      }
    }
  }
}

}  // namespace exstream
