#include "cep/engine.h"

#include <algorithm>
#include <thread>

#include "query/parser.h"

namespace exstream {

Result<QueryId> CepEngine::AddQuery(const Query& query) {
  EXSTREAM_ASSIGN_OR_RETURN(CompiledQuery cq, CompiledQuery::Compile(query, registry_));
  const QueryId id = static_cast<QueryId>(queries_.size());
  queries_.push_back(std::make_unique<QueryState>(std::move(cq)));

  // Build the type-route table: one lookup replaces the per-event relevance
  // bitmap check plus the per-component partition-attribute scan.
  QueryState& qs = *queries_.back();
  qs.route.assign(registry_->size(), kRouteIrrelevant);
  const bool partitioned = !qs.compiled.query().partition_attribute.empty();
  for (const CompiledComponent& comp : qs.compiled.components()) {
    if (comp.type >= qs.route.size()) continue;
    if (!partitioned) {
      qs.route[comp.type] = kRouteEmptyKey;
    } else if (comp.partition_attr.has_value()) {
      qs.route[comp.type] =
          static_cast<uint16_t>(kRouteSpecBase + SpecIndexFor(comp.type,
                                                              *comp.partition_attr));
    }
    // A relevant type without a partition attribute stays unroutable, which
    // reproduces the legacy "event type matches but carries no key" skip.
  }

  // Assign the query to its route class (creating one if this route table is
  // new). AddQuery is rare and #classes is small, so linear search is fine.
  qs.route_class = static_cast<uint32_t>(route_classes_.size());
  for (size_t c = 0; c < route_classes_.size(); ++c) {
    if (route_classes_[c] == qs.route) {
      qs.route_class = static_cast<uint32_t>(c);
      break;
    }
  }
  if (qs.route_class == route_classes_.size()) route_classes_.push_back(qs.route);
  route_index_dirty_ = true;

  // Recorded in both modes (and persisted by SaveState) so a restoring
  // engine can reproduce the exact merge plan: a mid-stream query is forced
  // singleton, and that decision must survive a checkpoint even though the
  // queries are re-added before any event flows during recovery.
  qs.added_mid_stream = events_processed_ > 0;

  if (!merge_enabled_) return id;

  // Merge-plan assignment. A query added after ingestion started must not
  // join a group whose runs already carry partial matches from events it
  // never saw — it is forced into a fresh singleton group instead.
  AssignMergePlan(id, /*force_singleton=*/qs.added_mid_stream);
  return id;
}

void CepEngine::AssignMergePlan(QueryId id, bool force_singleton) {
  QueryState& qs = *queries_[id];
  const MergeAssignment a = planner_.Assign(qs.compiled, force_singleton);
  if (a.new_group) {
    auto g = std::make_unique<MergeGroup>();
    g->index = a.group;
    g->nfa = std::make_unique<SharedNfa>(&qs.compiled);
    g->route = qs.route;
    g->route_class = qs.route_class;
    groups_.push_back(std::move(g));
  }
  MergeGroup& g = *groups_[a.group];
  if (a.new_residue) {
    ResidueClass rc;
    rc.nfa_residue = g.nfa->AddResidue(&qs.compiled);
    rc.rep = id;
    g.residues.push_back(std::move(rc));
  }
  ResidueClass& rc = g.residues[a.residue];
  if (a.new_table) {
    TableClass tc;
    tc.rep = id;
    tc.table = &qs.matches;
    rc.tables.push_back(std::move(tc));
  }
  TableClass& tc = rc.tables[a.table];
  tc.members.push_back(id);
  rc.members.push_back(id);
  g.members.push_back(id);
  qs.physical = tc.table;
  qs.merge_group = a.group;
  qs.merge_residue = a.residue;
  if (g.bound_source == kNoQuery && qs.compiled.kleene_bound_needed()) {
    g.bound_source = id;
  }
}

Result<QueryId> CepEngine::AddQueryText(std::string_view text, std::string name) {
  EXSTREAM_ASSIGN_OR_RETURN(Query q, ParseQuery(text, std::move(name)));
  return AddQuery(q);
}

Result<QueryId> CepEngine::QueryIdByName(std::string_view name) const {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i]->compiled.query().name == name) {
      return static_cast<QueryId>(i);
    }
  }
  return Status::NotFound("no query named '" + std::string(name) + "'");
}

void CepEngine::SetIngestThreads(size_t n) {
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  if (n == 0) n = hw;
  num_shards_ = n;
  if (merge_enabled_) {
    pool_.reset();
    // The shard pipeline is (re)built lazily by the next IngestBatch; a
    // mismatched or now-unneeded one is torn down here. Workers are
    // deliberately NOT capped at the core count: each shard's queue needs a
    // live consumer for the pipeline to flow at all.
    if (n <= 1 || (pipes_ && pipes_->pipes.size() != n)) StopPipes();
    return;
  }
  // The shard count fixes the work decomposition (and is what the
  // determinism contract ranges over); the worker count is only a schedule,
  // so it is capped at the core count — oversubscribing cores buys nothing
  // and on a single core the shards simply run back to back.
  const size_t workers = std::min(n, hw);
  if (workers <= 1) {
    pool_.reset();
  } else if (pool_ == nullptr || pool_->num_threads() != workers) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
}

uint16_t CepEngine::SpecIndexFor(EventTypeId type, size_t attr) {
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s].type == type && specs_[s].attr == attr) {
      return static_cast<uint16_t>(s);
    }
  }
  const uint16_t s = static_cast<uint16_t>(specs_.size());
  specs_.push_back(ExtractorSpec{type, attr});
  if (specs_by_type_.size() <= type) specs_by_type_.resize(type + 1);
  specs_by_type_[type].push_back(s);
  return s;
}

uint32_t CepEngine::InternKey(QueryState& qs, std::string_view key, uint64_t hash,
                              MatchTable::Appender* appender) {
  bool created = false;
  const uint32_t id = qs.interner.Intern(key, hash, &created);
  if (created) {
    qs.runs.emplace_back(&qs.compiled);
    qs.buckets.push_back(appender != nullptr
                             ? appender->EnsureBucket(qs.interner.KeyOf(id))
                             : qs.matches.EnsureBucket(qs.interner.KeyOf(id)));
  }
  return id;
}

uint32_t CepEngine::InternGroupKey(MergeGroup& g, std::string_view key,
                                   uint64_t hash) {
  bool created = false;
  const uint32_t id = g.interner.Intern(key, hash, &created);
  if (created) {
    g.runs.emplace_back(g.nfa.get());
    // Every member table registers the partition in the same first-seen
    // order, so the bucket id is identical across the group's tables — one
    // id serves them all.
    const std::string_view stored = g.interner.KeyOf(id);
    uint32_t bucket = 0;
    for (ResidueClass& rc : g.residues) {
      for (TableClass& tc : rc.tables) bucket = tc.table->EnsureBucket(stored);
    }
    g.buckets.push_back(bucket);
  }
  return id;
}

size_t CepEngine::ShardOf(uint32_t group, uint32_t run, size_t num_shards) {
  uint64_t x = (static_cast<uint64_t>(group) << 32) | run;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<size_t>(x % num_shards);
}

void CepEngine::OnEvent(const Event& event) {
  ++events_processed_;
  if (merge_enabled_) {
    OnEventMerged(event);
    return;
  }
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    QueryState& qs = *queries_[qi];
    const uint16_t r = event.type < qs.route.size() ? qs.route[event.type]
                                                    : kRouteIrrelevant;
    if (r == kRouteIrrelevant) continue;

    std::string_view key;
    uint64_t hash;
    if (r == kRouteEmptyKey) {
      hash = empty_key_hash_;
    } else {
      const ExtractorSpec& spec = specs_[r - kRouteSpecBase];
      const Value& v = event.values[spec.attr];
      if (v.is_string()) {
        key = v.AsString();
      } else {
        serial_key_scratch_ = v.ToString();
        key = serial_key_scratch_;
      }
      hash = PartitionKeyHash(key);
    }

    const uint32_t id = InternKey(qs, key, hash, nullptr);
    RunStepResult step = qs.runs[id].OnEvent(event, &serial_row_scratch_);
    const uint32_t bucket = qs.buckets[id];
    if (step.emitted_row) {
      qs.matches.Append(bucket, serial_row_scratch_);
      if (callback_) {
        callback_(MatchNotification{static_cast<QueryId>(qi), id,
                                    qs.interner.KeyOf(id), serial_row_scratch_,
                                    step.match_complete});
      }
    }
    if (step.match_complete) {
      qs.matches.MarkComplete(bucket);
      if (callback_ && !step.emitted_row) {
        callback_(MatchNotification{static_cast<QueryId>(qi), id,
                                    qs.interner.KeyOf(id), MatchRow{}, true});
      }
    }
  }
}

void CepEngine::OnEventMerged(const Event& event) {
  const bool want_notes = callback_ != nullptr;
  serial_notes_.clear();
  for (auto& gp : groups_) {
    MergeGroup& g = *gp;
    const uint16_t r =
        event.type < g.route.size() ? g.route[event.type] : kRouteIrrelevant;
    if (r == kRouteIrrelevant) continue;

    std::string_view key;
    uint64_t hash;
    if (r == kRouteEmptyKey) {
      hash = empty_key_hash_;
    } else {
      const ExtractorSpec& spec = specs_[r - kRouteSpecBase];
      const Value& v = event.values[spec.attr];
      if (v.is_string()) {
        key = v.AsString();
      } else {
        serial_key_scratch_ = v.ToString();
        key = serial_key_scratch_;
      }
      hash = PartitionKeyHash(key);
    }

    const uint32_t id = InternGroupKey(g, key, hash);
    SharedRun& run = g.runs[id];
    const SharedStepResult step = run.Step(event);
    if (!step.absorbed_kleene && !step.match_complete) continue;
    const uint32_t bucket = g.buckets[id];
    for (ResidueClass& rc : g.residues) {
      const bool per_kleene = g.nfa->EmitsPerKleeneEvent(rc.nfa_residue);
      const bool row_now =
          (step.absorbed_kleene && per_kleene) ||
          (step.match_complete && !(per_kleene && step.closed_kleene));
      if (row_now) {
        serial_row_scratch_.ts = event.ts;
        serial_row_scratch_.values.clear();
        run.AppendRowValues(rc.nfa_residue, event, &serial_row_scratch_.values);
        for (TableClass& tc : rc.tables) {
          tc.table->Append(bucket, serial_row_scratch_);
          if (step.match_complete) tc.table->MarkComplete(bucket);
        }
        if (want_notes) {
          for (const QueryId q : rc.members) {
            serial_notes_.push_back(
                {0, MatchNotification{q, id, g.interner.KeyOf(id),
                                      serial_row_scratch_, step.match_complete}});
          }
        }
      } else if (step.match_complete) {
        for (TableClass& tc : rc.tables) tc.table->MarkComplete(bucket);
        if (want_notes) {
          for (const QueryId q : rc.members) {
            serial_notes_.push_back(
                {0, MatchNotification{q, id, g.interner.KeyOf(id), MatchRow{},
                                      true}});
          }
        }
      }
    }
    if (step.match_complete) run.Reset();
  }
  if (!serial_notes_.empty()) {
    // Canonical callback order is ascending query id per event; group order
    // interleaves member ids, so sort before delivery.
    std::stable_sort(serial_notes_.begin(), serial_notes_.end(),
                     [](const PendingNote& a, const PendingNote& b) {
                       return a.note.query < b.note.query;
                     });
    for (const PendingNote& p : serial_notes_) callback_(p.note);
  }
}

void CepEngine::RebuildRouteIndex() {
  classes_by_type_.assign(registry_->size(), {});
  for (size_t c = 0; c < route_classes_.size(); ++c) {
    const std::vector<uint16_t>& route = route_classes_[c];
    for (size_t t = 0; t < route.size() && t < classes_by_type_.size(); ++t) {
      if (route[t] != kRouteIrrelevant) {
        classes_by_type_[t].push_back(static_cast<uint16_t>(c));
      }
    }
  }
  route_index_dirty_ = false;
}

void CepEngine::PrepareBatchKeys(const EventBatch& batch) {
  const size_t n = batch.size();
  prep_.resize(specs_.size());
  prep_keys_.resize(specs_.size());
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (prep_[s].size() < n) prep_[s].resize(n);
  }
  if (route_index_dirty_) RebuildRouteIndex();
  class_events_.resize(route_classes_.size());
  for (auto& list : class_events_) list.clear();
  for (uint32_t i = 0; i < n; ++i) {
    const Event& e = batch[i];
    // The inverted class index makes this loop proportional to the classes
    // that actually want the event's type, not to all classes.
    if (e.type < classes_by_type_.size()) {
      for (const uint16_t c : classes_by_type_[e.type]) {
        class_events_[c].push_back(i);
      }
    }
    if (e.type >= specs_by_type_.size()) continue;
    for (const uint16_t s : specs_by_type_[e.type]) {
      const Value& v = e.values[specs_[s].attr];
      PrepKey& pk = prep_[s][i];
      if (v.is_string()) {
        pk.view = v.AsString();
      } else {
        auto& storage = prep_keys_[s];
        if (storage.size() < n) storage.resize(n);
        storage[i] = v.ToString();
        pk.view = storage[i];
      }
      pk.hash = PartitionKeyHash(pk.view);
    }
  }
}

void CepEngine::ProcessShard(const EventBatch& batch, size_t shard, size_t stride,
                             ShardScratch* scratch) {
  const bool want_notes = callback_ != nullptr;
  for (size_t qi = shard; qi < queries_.size(); qi += stride) {
    QueryState& qs = *queries_[qi];
    // One lock acquisition per query per batch: rows, bucket registrations,
    // and completions go straight into the table while the appender holds
    // the lock (readers wait out one batch scan at most).
    MatchTable::Appender appender(&qs.matches);
    // Only this query's relevant events, via its route class's shared index
    // list — irrelevant events cost nothing here, not even a route lookup.
    for (const uint32_t i : class_events_[qs.route_class]) {
      const Event& e = batch[i];
      const uint16_t r = qs.route[e.type];

      std::string_view key;
      uint64_t hash;
      if (r == kRouteEmptyKey) {
        hash = empty_key_hash_;
      } else {
        const PrepKey& pk = prep_[r - kRouteSpecBase][i];
        key = pk.view;
        hash = pk.hash;
      }

      const uint32_t id = InternKey(qs, key, hash, &appender);
      QueryRun& run = qs.runs[id];
      const RunStepResult step = run.OnEventDeferred(e);
      if (!step.emitted_row && !step.match_complete) {
        continue;
      }
      const uint32_t bucket = qs.buckets[id];
      if (step.emitted_row) {
        // Harvest the row straight into bucket storage — the run's pre-reset
        // state backs AppendRowValues, so no intermediate row is built.
        std::vector<Value>* cells = appender.BeginRow(bucket, e.ts);
        const size_t first = cells->size();
        run.AppendRowValues(e, cells);
        appender.EndRow(bucket);
        if (want_notes) {
          MatchRow row;
          row.ts = e.ts;
          row.values.assign(cells->begin() + static_cast<ptrdiff_t>(first),
                            cells->end());
          scratch->notes.push_back(
              {i, MatchNotification{static_cast<QueryId>(qi), id,
                                    qs.interner.KeyOf(id), std::move(row),
                                    step.match_complete}});
        }
      }
      if (step.match_complete) {
        run.Reset();
        appender.MarkComplete(bucket);
        if (want_notes && !step.emitted_row) {
          scratch->notes.push_back(
              {i, MatchNotification{static_cast<QueryId>(qi), id,
                                    qs.interner.KeyOf(id), MatchRow{}, true}});
        }
      }
    }
  }
}

void CepEngine::RouteGroupBatch(MergeGroup& g, const EventBatch& batch,
                                std::vector<std::vector<WorkItem>>* per_shard) {
  const size_t shards = per_shard->size();
  for (const uint32_t i : class_events_[g.route_class]) {
    const Event& e = batch[i];
    const uint16_t r = g.route[e.type];

    std::string_view key;
    uint64_t hash;
    if (r == kRouteEmptyKey) {
      hash = empty_key_hash_;
    } else {
      const PrepKey& pk = prep_[r - kRouteSpecBase][i];
      key = pk.view;
      hash = pk.hash;
    }

    const uint32_t id = InternGroupKey(g, key, hash);
    const size_t s = shards == 1 ? 0 : ShardOf(g.index, id, shards);
    (*per_shard)[s].push_back(WorkItem{i, id});
  }
}

void CepEngine::ProcessMergedBlock(const WorkBlock& block, ShardScratch* scratch) {
  MergeGroup& g = *block.group;
  const SharedNfa& nfa = *g.nfa;
  for (const WorkItem& it : block.items) {
    const Event& e = (*block.batch)[it.event];
    SharedRun& run = g.runs[it.run];
    const SharedStepResult step = run.Step(e);
    if (!step.absorbed_kleene && !step.match_complete) continue;
    const uint32_t bucket = g.buckets[it.run];
    for (ResidueClass& rc : g.residues) {
      const bool per_kleene = nfa.EmitsPerKleeneEvent(rc.nfa_residue);
      const bool row_now =
          (step.absorbed_kleene && per_kleene) ||
          (step.match_complete && !(per_kleene && step.closed_kleene));
      if (row_now) {
        // Build the row once per residue class, then fan out one physical
        // append per table class (not per member query).
        scratch->row.clear();
        run.AppendRowValues(rc.nfa_residue, e, &scratch->row);
        for (TableClass& tc : rc.tables) {
          MatchTable::ShardAppender appender(tc.table);
          appender.AppendRow(bucket, e.ts, scratch->row.data(),
                             scratch->row.size());
          if (step.match_complete) appender.MarkComplete(bucket);
        }
        if (block.want_notes) {
          for (const QueryId q : rc.members) {
            MatchRow row;
            row.ts = e.ts;
            row.values = scratch->row;
            scratch->notes.push_back(
                {it.event,
                 MatchNotification{q, it.run, g.interner.KeyOf(it.run),
                                   std::move(row), step.match_complete}});
          }
        }
      } else if (step.match_complete) {
        for (TableClass& tc : rc.tables) {
          MatchTable::ShardAppender appender(tc.table);
          appender.MarkComplete(bucket);
        }
        if (block.want_notes) {
          for (const QueryId q : rc.members) {
            scratch->notes.push_back(
                {it.event, MatchNotification{q, it.run,
                                             g.interner.KeyOf(it.run),
                                             MatchRow{}, true}});
          }
        }
      }
    }
    if (step.match_complete) run.Reset();
  }
}

void CepEngine::EnsurePipes(size_t shards) {
  if (pipes_ != nullptr && pipes_->pipes.size() == shards) return;
  StopPipes();
  pipes_ = std::make_unique<ShardPipes>();
  for (size_t s = 0; s < shards; ++s) pipes_->pipes.emplace_back();
  std::atomic<bool>* stop = &pipes_->stop;
  for (size_t s = 0; s < shards; ++s) {
    ShardPipe* pipe = &pipes_->pipes[s];
    // The worker touches only its pipe and the blocks it pops — never the
    // engine — so the loop stays valid for the pipeline's whole lifetime.
    pipe->worker = std::thread([pipe, stop] {
      WorkBlock block;
      while (pipe->queue.PopWait(&block, *stop)) {
        ProcessMergedBlock(block, &pipe->scratch);
        block = WorkBlock{};  // drop batch/group refs before signaling done
        pipe->done.fetch_add(1, std::memory_order_release);
        { std::lock_guard<std::mutex> lock(pipe->drain_mu); }
        pipe->drain_cv.notify_one();
      }
    });
  }
}

void CepEngine::StopPipes() {
  if (pipes_ == nullptr) return;
  pipes_->stop.store(true, std::memory_order_release);
  for (ShardPipe& pipe : pipes_->pipes) pipe.queue.Wake();
  for (ShardPipe& pipe : pipes_->pipes) {
    if (pipe.worker.joinable()) pipe.worker.join();
  }
  pipes_.reset();
}

void CepEngine::IngestBatchMerged(const EventBatch& batch) {
  PrepareBatchKeys(batch);
  const bool want_notes = callback_ != nullptr;
  const size_t shards = std::max<size_t>(1, num_shards_);
  const bool parallel = shards > 1;
  if (parallel) EnsurePipes(shards);
  // Exactly `shards` entries — shrink as well as grow. RouteGroupBatch infers
  // the shard count from this list's size, and a stale larger list (after
  // SetIngestThreads lowered the count) would route items into shards that
  // are never drained, silently dropping events.
  route_items_.resize(shards);
  if (scratch_.empty()) scratch_.resize(1);

  for (auto& gp : groups_) {
    MergeGroup& g = *gp;
    if (g.route_class >= class_events_.size() ||
        class_events_[g.route_class].empty()) {
      continue;
    }
    // Route this group single-threaded in stream order (deterministic intern
    // ids and bucket registrations), THEN hand its blocks off. A shard may
    // still be chewing on earlier groups while this one is routed — the
    // per-group containers make that safe — but nothing ever processes a
    // group concurrently with its own routing.
    for (size_t s = 0; s < shards; ++s) route_items_[s].clear();
    RouteGroupBatch(g, batch, &route_items_);
    if (!parallel) {
      if (route_items_[0].empty()) continue;
      WorkBlock block;
      block.batch = &batch;
      block.group = &g;
      block.want_notes = want_notes;
      block.items = std::move(route_items_[0]);
      ProcessMergedBlock(block, &scratch_[0]);
      route_items_[0] = std::move(block.items);  // recycle capacity
    } else {
      for (size_t s = 0; s < shards; ++s) {
        if (route_items_[s].empty()) continue;
        WorkBlock block;
        block.batch = &batch;
        block.group = &g;
        block.want_notes = want_notes;
        block.items = std::move(route_items_[s]);
        route_items_[s] = std::vector<WorkItem>();
        ShardPipe& pipe = pipes_->pipes[s];
        pipe.pushed.fetch_add(1, std::memory_order_relaxed);
        pipe.queue.PushWait(std::move(block));
      }
    }
  }

  if (parallel) {
    // Drain barrier at batch end only: preserves the read-after-IngestBatch
    // contract and publishes all shard writes to this thread.
    for (ShardPipe& pipe : pipes_->pipes) {
      const uint64_t target = pipe.pushed.load(std::memory_order_relaxed);
      std::unique_lock<std::mutex> lock(pipe.drain_mu);
      pipe.drain_cv.wait(lock, [&] {
        return pipe.done.load(std::memory_order_acquire) >= target;
      });
    }
    if (scratch_.size() < shards) scratch_.resize(shards);
    for (size_t s = 0; s < shards; ++s) {
      std::vector<PendingNote>& src = pipes_->pipes[s].scratch.notes;
      if (src.empty()) continue;
      std::vector<PendingNote>& dst = scratch_[s].notes;
      dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
      src.clear();
    }
  }
  DispatchNotifications();
}

void CepEngine::DispatchNotifications() {
  if (callback_ == nullptr) {
    for (ShardScratch& s : scratch_) s.notes.clear();
    return;
  }
  merged_notes_.clear();
  for (ShardScratch& s : scratch_) {
    merged_notes_.insert(merged_notes_.end(),
                         std::make_move_iterator(s.notes.begin()),
                         std::make_move_iterator(s.notes.end()));
    s.notes.clear();
  }
  // Shards emit in per-query stream order; the canonical sequential order is
  // (event, query). Stable sort keeps the fixed row-before-completion order
  // of the (at most two) notes one (event, query) pair can produce.
  std::stable_sort(merged_notes_.begin(), merged_notes_.end(),
                   [](const PendingNote& a, const PendingNote& b) {
                     if (a.event_idx != b.event_idx) return a.event_idx < b.event_idx;
                     return a.note.query < b.note.query;
                   });
  for (const PendingNote& p : merged_notes_) callback_(p.note);
}

void CepEngine::IngestBatch(const EventBatch& batch) {
  if (batch.empty()) return;
  events_processed_ += batch.size();
  if (merge_enabled_) {
    IngestBatchMerged(batch);
    return;
  }
  PrepareBatchKeys(batch);
  const size_t shards =
      std::max<size_t>(1, std::min(num_shards_, queries_.size()));
  if (scratch_.size() < shards) scratch_.resize(shards);
  if (shards <= 1 || pool_ == nullptr) {
    // Same decomposition and merge as the parallel path, scheduled serially.
    for (size_t s = 0; s < shards; ++s) ProcessShard(batch, s, shards, &scratch_[s]);
  } else {
    ParallelFor(pool_.get(), shards,
                [&](size_t s) { ProcessShard(batch, s, shards, &scratch_[s]); });
  }
  DispatchNotifications();
}

void CepEngine::SaveState(BytesWriter* out) const {
  out->Put<uint64_t>(events_processed_);
  out->Put<uint32_t>(static_cast<uint32_t>(queries_.size()));
  // Mid-stream-add flags, written in both modes so snapshots stay
  // cross-mode compatible. RestoreState replays them into the merge planner:
  // a query added after ingestion started was forced singleton at save time,
  // and must land in its own group again on restore even though recovery
  // re-adds every query before any event flows.
  for (const auto& qs : queries_) {
    out->Put<uint8_t>(qs->added_mid_stream ? 1 : 0);
  }
  for (const auto& qs : queries_) {
    if (merge_enabled_) {
      // Each member writes the state its own QueryRun would have held —
      // byte-identical to the unmerged format, so snapshots round-trip
      // across modes. Members of a group repeat the shared pieces (keys,
      // buckets, traversal state); RestoreState uses the redundancy as a
      // cross-check.
      const MergeGroup& g = *groups_[qs->merge_group];
      const uint32_t nfa_residue = g.residues[qs->merge_residue].nfa_residue;
      const uint32_t n_keys = static_cast<uint32_t>(g.interner.size());
      out->Put<uint32_t>(n_keys);
      for (uint32_t id = 0; id < n_keys; ++id) {
        out->PutString(g.interner.KeyOf(id));
      }
      out->PutPodVector(g.buckets);
      for (uint32_t id = 0; id < n_keys; ++id) {
        g.runs[id].SaveMemberView(nfa_residue, out);
      }
      qs->physical->SaveState(out);
      continue;
    }
    const uint32_t n_keys = static_cast<uint32_t>(qs->interner.size());
    out->Put<uint32_t>(n_keys);
    for (uint32_t id = 0; id < n_keys; ++id) {
      out->PutString(qs->interner.KeyOf(id));
    }
    out->PutPodVector(qs->buckets);
    for (uint32_t id = 0; id < n_keys; ++id) {
      qs->runs[id].SaveState(out);
    }
    qs->matches.SaveState(out);
  }
}

Status CepEngine::RestoreState(BytesReader* in) {
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t events_processed, in->Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_queries, in->Get<uint32_t>());
  if (n_queries != queries_.size()) {
    return Status::InvalidArgument(
        StrFormat("snapshot holds %u queries, engine has %zu registered",
                  n_queries, queries_.size()));
  }
  std::vector<uint8_t> mid_stream(n_queries, 0);
  for (uint32_t i = 0; i < n_queries; ++i) {
    EXSTREAM_ASSIGN_OR_RETURN(mid_stream[i], in->Get<uint8_t>());
  }
  if (merge_enabled_) {
    // If the snapshot's mid-stream flags disagree with how this engine's
    // queries were added (during recovery every query is re-added before any
    // event, so none is forced singleton), the current merge plan groups
    // queries the snapshot kept apart — their per-group key sets differ and
    // the member cross-check below would reject the snapshot. Rebuild the
    // plan with the persisted flags instead.
    bool replan = false;
    for (uint32_t i = 0; i < n_queries; ++i) {
      if ((mid_stream[i] != 0) != queries_[i]->added_mid_stream) replan = true;
    }
    if (replan) {
      for (const auto& gp : groups_) {
        if (gp->interner.size() != 0) {
          return Status::InvalidArgument(
              "engine must be freshly constructed before restore");
        }
      }
      for (const auto& qs : queries_) {
        if (qs->matches.TotalRows() != 0) {
          return Status::InvalidArgument(
              "engine must be freshly constructed before restore");
        }
      }
      planner_ = MergePlanner();
      groups_.clear();
      for (QueryId qi = 0; qi < queries_.size(); ++qi) {
        queries_[qi]->physical = &queries_[qi]->matches;
        AssignMergePlan(qi, /*force_singleton=*/mid_stream[qi] != 0);
      }
    }
  }
  // Adopt the persisted flags so a re-checkpoint of the restored engine
  // writes the same plan (and so unmerged engines round-trip them too).
  for (QueryId qi = 0; qi < queries_.size(); ++qi) {
    queries_[qi]->added_mid_stream = mid_stream[qi] != 0;
  }
  for (QueryId qi = 0; qi < queries_.size(); ++qi) {
    QueryState& qs = *queries_[qi];

    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_keys, in->Get<uint32_t>());
    std::vector<std::string> keys;
    keys.reserve(n_keys);
    for (uint32_t i = 0; i < n_keys; ++i) {
      EXSTREAM_ASSIGN_OR_RETURN(std::string key, in->GetString());
      keys.push_back(std::move(key));
    }
    std::vector<uint32_t> buckets;
    EXSTREAM_RETURN_NOT_OK(in->GetPodVector(&buckets));
    if (buckets.size() != n_keys) {
      return Status::Corruption(
          StrFormat("snapshot bucket map holds %zu entries for %u keys",
                    buckets.size(), n_keys));
    }

    if (merge_enabled_) {
      MergeGroup& g = *groups_[qs.merge_group];
      const ResidueClass& rc = g.residues[qs.merge_residue];
      const bool first_member = g.members.front() == qi;
      const bool take_kleene = g.bound_source == qi;
      const bool take_aggs = rc.rep == qi;
      if (first_member) {
        if (g.interner.size() != 0) {
          return Status::InvalidArgument(
              "engine must be freshly constructed before restore");
        }
        // Re-interning the keys in saved id order reproduces the exact id
        // assignment (first-intern order is the id order).
        g.runs.reserve(n_keys);
        for (uint32_t i = 0; i < n_keys; ++i) {
          bool created = false;
          const uint32_t id =
              g.interner.Intern(keys[i], PartitionKeyHash(keys[i]), &created);
          if (!created || id != i) {
            return Status::Corruption(
                StrFormat("duplicate partition key in snapshot at id %u", i));
          }
          g.runs.emplace_back(g.nfa.get());
        }
        g.buckets = std::move(buckets);
      } else {
        // Later members of the group must describe the exact same shared
        // state their group already restored.
        if (n_keys != g.interner.size() || buckets != g.buckets) {
          return Status::Corruption(StrFormat(
              "merged query %u disagrees with its group's restored keys", qi));
        }
        for (uint32_t i = 0; i < n_keys; ++i) {
          if (keys[i] != g.interner.KeyOf(i)) {
            return Status::Corruption(StrFormat(
                "merged query %u disagrees with its group's restored keys", qi));
          }
        }
      }
      for (uint32_t i = 0; i < n_keys; ++i) {
        EXSTREAM_RETURN_NOT_OK(g.runs[i].RestoreMemberView(
            in, rc.nfa_residue, first_member, take_kleene, take_aggs));
      }
      if (qs.physical == &qs.matches) {
        if (qs.matches.TotalRows() != 0) {
          return Status::InvalidArgument(
              "engine must be freshly constructed before restore");
        }
        EXSTREAM_RETURN_NOT_OK(qs.matches.RestoreState(in));
      } else {
        // Non-representative member of a table class: its table bytes equal
        // the representative's, which were (or will be) restored into the
        // shared physical table — parse into a throwaway to keep the stream
        // aligned.
        MatchTable discard(qs.compiled.OutputColumns());
        EXSTREAM_RETURN_NOT_OK(discard.RestoreState(in));
      }
      continue;
    }

    if (qs.interner.size() != 0 || qs.matches.TotalRows() != 0) {
      return Status::InvalidArgument(
          "engine must be freshly constructed before restore");
    }
    qs.runs.reserve(n_keys);
    for (uint32_t i = 0; i < n_keys; ++i) {
      bool created = false;
      const uint32_t id =
          qs.interner.Intern(keys[i], PartitionKeyHash(keys[i]), &created);
      if (!created || id != i) {
        return Status::Corruption(
            StrFormat("duplicate partition key in snapshot at id %u", i));
      }
      qs.runs.emplace_back(&qs.compiled);
      EXSTREAM_RETURN_NOT_OK(qs.runs.back().RestoreState(in));
    }
    qs.buckets = std::move(buckets);
    EXSTREAM_RETURN_NOT_OK(qs.matches.RestoreState(in));
  }
  events_processed_ = events_processed;
  return Status::OK();
}

}  // namespace exstream
