// PartitionInterner: interns partition-key strings to dense uint32_t ids.
//
// The CEP engine's per-event hot path used to key each query's runs by
// std::string in an unordered_map — one string allocation plus one string
// hash per query per event. The interner replaces that with a single
// open-addressing probe over precomputed 64-bit hashes: the batch layer
// hashes each event's partition key once, and every query reuses that hash
// to intern the key into its own dense id space. Ids index flat vectors
// (QueryRun slots, match-table buckets), and interned key storage is a deque
// so the string_views handed out (e.g. in MatchNotification) stay valid for
// the engine's lifetime.
//
// Ids are assigned in first-intern order, so for a fixed event order the
// id assignment is deterministic regardless of how work is sharded.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace exstream {

/// \brief FNV-1a 64-bit hash of a partition key; computed once per event per
/// extraction spec and shared by every query interning that key.
inline uint64_t PartitionKeyHash(std::string_view key) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// \brief Qualifies a partition key with its tenant namespace: "tenant/key".
///
/// Multi-tenant serving layers one namespace per tenant over partition-key
/// interning: every tenant runs its own engine (own interner, own dense id
/// space), and any surface that mixes tenants — hub-level partition listings,
/// fan-in bench accounting, CLI summaries — uses qualified keys. The tenant
/// portion is percent-escaped ('%' and '/') so no tenant name can forge
/// another tenant's prefix: QualifyTenantKey is injective in (tenant, key).
inline std::string QualifyTenantKey(std::string_view tenant,
                                    std::string_view key) {
  std::string out;
  out.reserve(tenant.size() + key.size() + 1);
  for (const char c : tenant) {
    if (c == '%') {
      out += "%25";
    } else if (c == '/') {
      out += "%2F";
    } else {
      out += c;
    }
  }
  out += '/';
  out.append(key);
  return out;
}

/// \brief Splits a QualifyTenantKey string back into (tenant, key). The
/// tenant portion is unescaped; returns false if `qualified` has no
/// separator or carries a malformed escape.
inline bool SplitTenantKey(std::string_view qualified, std::string* tenant,
                           std::string* key) {
  const size_t sep = qualified.find('/');
  if (sep == std::string_view::npos) return false;
  const std::string_view escaped = qualified.substr(0, sep);
  tenant->clear();
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      *tenant += escaped[i];
      continue;
    }
    if (i + 2 >= escaped.size()) return false;
    const std::string_view code = escaped.substr(i + 1, 2);
    if (code == "25") {
      *tenant += '%';
    } else if (code == "2F") {
      *tenant += '/';
    } else {
      return false;
    }
    i += 2;
  }
  key->assign(qualified.substr(sep + 1));
  return true;
}

/// \brief Open-addressing string -> dense id table with caller-supplied hashes.
class PartitionInterner {
 public:
  PartitionInterner() { slots_.resize(kInitialSlots, Slot{0, kEmptyId}); }

  /// \brief Returns the id of `key`, interning it if unseen.
  ///
  /// `hash` must equal PartitionKeyHash(key); `created` (optional) reports
  /// whether a new id was assigned.
  uint32_t Intern(std::string_view key, uint64_t hash, bool* created = nullptr) {
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.id == kEmptyId) break;
      if (slot.hash == hash && keys_[slot.id] == key) {
        if (created != nullptr) *created = false;
        return slot.id;
      }
      i = (i + 1) & mask;
    }
    const uint32_t id = static_cast<uint32_t>(keys_.size());
    keys_.emplace_back(key);
    slots_[i] = Slot{hash, id};
    if (created != nullptr) *created = true;
    if (keys_.size() * 4 >= slots_.size() * 3) Grow();
    return id;
  }

  /// The interned key for `id`; the view stays valid for the interner's life.
  std::string_view KeyOf(uint32_t id) const { return keys_[id]; }

  size_t size() const { return keys_.size(); }

 private:
  struct Slot {
    uint64_t hash;
    uint32_t id;
  };
  static constexpr uint32_t kEmptyId = static_cast<uint32_t>(-1);
  static constexpr size_t kInitialSlots = 16;  // power of two

  void Grow() {
    std::vector<Slot> bigger(slots_.size() * 2, Slot{0, kEmptyId});
    const size_t mask = bigger.size() - 1;
    for (const Slot& slot : slots_) {
      if (slot.id == kEmptyId) continue;
      size_t i = static_cast<size_t>(slot.hash) & mask;
      while (bigger[i].id != kEmptyId) i = (i + 1) & mask;
      bigger[i] = slot;
    }
    slots_.swap(bigger);
  }

  std::vector<Slot> slots_;
  std::deque<std::string> keys_;  // deque: views into keys never move
};

}  // namespace exstream
