#include "explain/labeling.h"

#include <algorithm>
#include <cmath>

#include "ts/clustering.h"
#include "ts/entropy_distance.h"

namespace exstream {

std::string_view IntervalLabelToString(IntervalLabel label) {
  switch (label) {
    case IntervalLabel::kAbnormal:
      return "abnormal";
    case IntervalLabel::kReference:
      return "reference";
    case IntervalLabel::kDiscarded:
      return "discarded";
  }
  return "?";
}

double IntervalDistance(const TimeSeries& a, const TimeSeries& b,
                        const LabelingOptions& options) {
  if (a.empty() || b.empty()) return 1.0;
  // Entropy distance: D == 1 means the two intervals' monitored values are
  // perfectly separable (very different behavior); D near 0 means mixed
  // (similar behavior). This is exactly an inter-interval distance.
  const double d_entropy = ComputeEntropyDistance(a.values(), b.values()).distance;
  const double fa = a.Frequency();
  const double fb = b.Frequency();
  const double d_freq =
      std::max(fa, fb) > 0 ? std::fabs(fa - fb) / std::max(fa, fb) : 0.0;
  const double wsum = options.entropy_weight + options.frequency_weight;
  if (wsum <= 0) return 0.0;
  return (options.entropy_weight * d_entropy + options.frequency_weight * d_freq) /
         wsum;
}

Result<std::vector<LabeledInterval>> LabelIntervals(
    const CandidateInterval& annotated_abnormal,
    const CandidateInterval& annotated_reference,
    const std::vector<CandidateInterval>& candidates, const LabelingOptions& options) {
  // Items: [0] = annotated abnormal, [1] = annotated reference, then
  // candidates.
  std::vector<const TimeSeries*> series;
  series.push_back(&annotated_abnormal.series);
  series.push_back(&annotated_reference.series);
  for (const auto& c : candidates) series.push_back(&c.series);

  const size_t n = series.size();
  DistanceMatrix dist(n);  // one flat allocation, not n+1 row vectors
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      dist.Set(i, j, IntervalDistance(*series[i], *series[j], options));
    }
  }
  EXSTREAM_ASSIGN_OR_RETURN(const ClusteringResult clusters,
                            AgglomerativeCluster(dist, options.cut_threshold));

  const int abnormal_cluster = clusters.labels[0];
  const int reference_cluster = clusters.labels[1];
  std::vector<LabeledInterval> out;
  out.reserve(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    LabeledInterval li;
    li.candidate = candidates[c];
    const int cluster = clusters.labels[c + 2];
    if (abnormal_cluster == reference_cluster) {
      li.label = IntervalLabel::kDiscarded;  // no certainty possible
    } else if (cluster == abnormal_cluster) {
      li.label = IntervalLabel::kAbnormal;
    } else if (cluster == reference_cluster) {
      li.label = IntervalLabel::kReference;
    } else {
      // A cluster containing neither annotation: per the paper, intervals
      // whose cluster is far from the anomaly cluster are reference, but
      // ambiguous ones are discarded. Use the distance to the two annotated
      // intervals to decide, requiring a clear margin.
      const double d_abn = dist.at(c + 2, 0);
      const double d_ref = dist.at(c + 2, 1);
      if (d_ref < d_abn * 0.8) {
        li.label = IntervalLabel::kReference;
      } else if (d_abn < d_ref * 0.8) {
        li.label = IntervalLabel::kAbnormal;
      } else {
        li.label = IntervalLabel::kDiscarded;
      }
    }
    out.push_back(std::move(li));
  }
  return out;
}

}  // namespace exstream
