// ExplainResultCache: keyed, single-flight LRU cache over full Explain
// results — the serving layer that makes repeated/overlapping interactive
// requests (an incident war-room re-exploring one anomaly) near-free.
//
// A key fingerprints everything that can change the answer: the monitored
// query and column, both annotated intervals (query/partition/range), every
// result-affecting ExplainOptions field, the data watermark (events applied
// so far — new data invalidates), and the archive's degradation state
// (quarantines, tier-0 evictions, shed/rejected counts — a degraded result
// must never serve an exact request, and vice versa). Concurrent callers of
// one key share a single computation (single-flight); errors propagate to
// every waiter but are not cached, so a transient failure does not poison
// the key.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "explain/annotation.h"
#include "explain/engine.h"

namespace exstream {

/// \brief Fingerprint of every ExplainOptions field that can change the
/// explanation (feature space, leap/labeling/correlation knobs, validation
/// and clustering toggles, scan-path selection, tiered-reference opt-in).
/// num_threads and deadline_ms are deliberately excluded: results are
/// bit-identical across thread counts, and a deadline changes only whether a
/// result exists, not its value.
uint64_t FingerprintExplainOptions(const ExplainOptions& options);

/// \brief Builds the canonical cache key bytes for one Explain request.
/// `watermark` is the caller's data version; `degradation_state` folds the
/// scan-health counters (quarantined chunks, tier-0 evictions, shed and
/// rejected events) so resolution/degradation changes miss the cache.
std::string ExplainCacheKey(const AnomalyAnnotation& annotation,
                            uint32_t monitor_query, const std::string& column,
                            const ExplainOptions& options, uint64_t watermark,
                            uint64_t degradation_state);

/// \brief Single-flight LRU cache of completed Explain reports.
///
/// Thread-safe. Completed entries are shared as
/// `shared_ptr<const Result<ExplanationReport>>`, so a hit is one map lookup
/// plus a refcount bump — no report copy until the caller needs one.
class ExplainResultCache {
 public:
  using ResultPtr = std::shared_ptr<const Result<ExplanationReport>>;

  explicit ExplainResultCache(size_t capacity) : capacity_(capacity) {}

  /// \brief Returns the cached result for `key`, computing it via `compute`
  /// on a miss. Concurrent callers with the same key block on the one
  /// in-flight computation instead of repeating it. A computation that
  /// returns an error is handed to every waiter but evicted immediately.
  ResultPtr GetOrCompute(const std::string& key,
                         const std::function<Result<ExplanationReport>()>& compute);

  /// Peek without computing; nullptr on miss (does not touch LRU order).
  ResultPtr Lookup(const std::string& key) const;

  /// Drops every entry (Recover). In-flight computations complete and are
  /// delivered to their waiters but are not re-inserted.
  void Clear();

  struct Stats {
    uint64_t hits = 0;                ///< served from a completed entry
    uint64_t misses = 0;              ///< triggered a computation
    uint64_t single_flight_waits = 0; ///< joined an in-flight computation
    uint64_t computations = 0;        ///< compute() invocations
    uint64_t evictions = 0;           ///< completed entries dropped by LRU
    size_t entries = 0;               ///< completed entries resident
  };
  Stats stats() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_future<ResultPtr> future;
    ResultPtr value;  ///< set when done; hits return it without touching future
    bool done = false;
    uint64_t generation = 0;
    std::list<std::string>::iterator lru;  ///< valid only when done
  };

  void EvictExcessLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t generation_ = 0;  ///< bumped by Clear; orphans in-flight entries
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  ///< completed keys, most recent first
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t single_flight_waits_ = 0;
  uint64_t computations_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace exstream
