#include "explain/partition_table.h"

namespace exstream {

void PartitionTable::Upsert(PartitionRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(record.query_name, record.partition);
  records_[key] = std::move(record);
}

Result<PartitionRecord> PartitionTable::Get(const std::string& query_name,
                                            const std::string& partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(std::make_pair(query_name, partition));
  if (it == records_.end()) {
    return Status::NotFound("no partition record for (" + query_name + ", " +
                            partition + ")");
  }
  return it->second;
}

std::vector<PartitionRecord> PartitionTable::FindRelated(
    const PartitionRecord& record) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionRecord> out;
  for (const auto& [key, rec] : records_) {
    if (rec.query_name != record.query_name) continue;
    if (rec.partition == record.partition) continue;
    if (rec.dimensions != record.dimensions) continue;
    out.push_back(rec);
  }
  return out;
}

size_t PartitionTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<PartitionRecord> PartitionTable::AllRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionRecord> out;
  out.reserve(records_.size());
  for (const auto& [key, rec] : records_) out.push_back(rec);
  return out;
}

void PartitionTable::SaveState(BytesWriter* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->Put<uint32_t>(static_cast<uint32_t>(records_.size()));
  for (const auto& [key, rec] : records_) {
    out->PutString(rec.query_name);
    out->PutString(rec.partition);
    out->Put<uint32_t>(static_cast<uint32_t>(rec.dimensions.size()));
    for (const auto& [name, value] : rec.dimensions) {
      out->PutString(name);
      out->PutString(value);
    }
    out->Put<int64_t>(rec.start_ts);
    out->Put<int64_t>(rec.end_ts);
    out->Put<uint64_t>(rec.num_points);
  }
}

Status PartitionTable::RestoreState(BytesReader* in) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!records_.empty()) {
    return Status::InvalidArgument("partition table must be empty before restore");
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_records, in->Get<uint32_t>());
  for (uint32_t i = 0; i < n_records; ++i) {
    PartitionRecord rec;
    EXSTREAM_ASSIGN_OR_RETURN(rec.query_name, in->GetString());
    EXSTREAM_ASSIGN_OR_RETURN(rec.partition, in->GetString());
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_dims, in->Get<uint32_t>());
    for (uint32_t d = 0; d < n_dims; ++d) {
      EXSTREAM_ASSIGN_OR_RETURN(std::string name, in->GetString());
      EXSTREAM_ASSIGN_OR_RETURN(std::string value, in->GetString());
      rec.dimensions.emplace(std::move(name), std::move(value));
    }
    EXSTREAM_ASSIGN_OR_RETURN(rec.start_ts, in->Get<int64_t>());
    EXSTREAM_ASSIGN_OR_RETURN(rec.end_ts, in->Get<int64_t>());
    EXSTREAM_ASSIGN_OR_RETURN(rec.num_points, in->Get<uint64_t>());
    records_.emplace(std::make_pair(rec.query_name, rec.partition), std::move(rec));
  }
  return Status::OK();
}

}  // namespace exstream
