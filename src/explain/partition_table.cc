#include "explain/partition_table.h"

namespace exstream {

void PartitionTable::Upsert(PartitionRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(record.query_name, record.partition);
  records_[key] = std::move(record);
}

Result<PartitionRecord> PartitionTable::Get(const std::string& query_name,
                                            const std::string& partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(std::make_pair(query_name, partition));
  if (it == records_.end()) {
    return Status::NotFound("no partition record for (" + query_name + ", " +
                            partition + ")");
  }
  return it->second;
}

std::vector<PartitionRecord> PartitionTable::FindRelated(
    const PartitionRecord& record) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionRecord> out;
  for (const auto& [key, rec] : records_) {
    if (rec.query_name != record.query_name) continue;
    if (rec.partition == record.partition) continue;
    if (rec.dimensions != record.dimensions) continue;
    out.push_back(rec);
  }
  return out;
}

size_t PartitionTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

}  // namespace exstream
