// Temporal-correlation analysis — the paper's first future-work item
// (Sec. 8: "our future work will address temporal correlation in discovering
// explanations").
//
// A feature that *leads* the monitored anomaly (its change precedes the
// monitored series' change) is a stronger causal candidate than one that
// merely co-occurs or lags. These utilities measure lagged cross-correlation
// between a candidate feature and the monitored series, on differenced
// (change) signals so level offsets do not dominate, and summarize the lead
// relationship.

#pragma once

#include <vector>

#include "explain/reward.h"
#include "ts/time_series.h"

namespace exstream {

/// \brief One (lag, correlation) sample of a lag sweep.
struct LagCorrelation {
  Timestamp lag = 0;          ///< shift applied to the feature (time units)
  double correlation = 0.0;   ///< Pearson on the differenced, aligned series
};

struct TemporalOptions {
  /// Lags swept: -max_lag .. +max_lag in steps of `lag_step`.
  Timestamp max_lag = 60;
  Timestamp lag_step = 10;
  /// Common resampling grid resolution.
  size_t points = 128;
  /// Analyze differenced series (changes) instead of levels.
  bool use_differences = true;
};

/// \brief Correlation between `feature` shifted by `lag` and `target`, on a
/// common time grid. A positive lag moves the feature forward in time, so a
/// high correlation at positive lag means the feature's behaviour *precedes*
/// the target's.
double LaggedCorrelation(const TimeSeries& feature, const TimeSeries& target,
                         Timestamp lag, const TemporalOptions& options = {});

/// \brief Full sweep over the configured lag range.
std::vector<LagCorrelation> LagSweep(const TimeSeries& feature,
                                     const TimeSeries& target,
                                     const TemporalOptions& options = {});

/// \brief The lag with the highest |correlation| in the sweep.
LagCorrelation BestLag(const TimeSeries& feature, const TimeSeries& target,
                       const TemporalOptions& options = {});

/// \brief Lead score of a candidate explanation feature against the
/// monitored series: best |correlation| at non-negative lags minus best at
/// negative lags. Positive values mean the feature leads (explains), negative
/// values mean it trails (symptom/aftereffect).
double LeadScore(const TimeSeries& feature, const TimeSeries& monitored,
                 const TemporalOptions& options = {});

/// \brief Annotates ranked features with their lead score against the
/// monitored series, sorted by score descending. Does not alter the Sec. 5
/// pipeline; exposed as an additional analysis (the future-work hook).
std::vector<std::pair<RankedFeature, double>> RankByLeadScore(
    const std::vector<RankedFeature>& features, const TimeSeries& monitored,
    const TemporalOptions& options = {});

}  // namespace exstream
