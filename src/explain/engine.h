// ExplanationEngine: the end-to-end pipeline of Sec. 5 (Fig. 19b).
//
//   annotated intervals
//     -> feature generation (Sec. 3)
//     -> entropy reward ranking (Sec. 4)
//     -> Step 1: reward-leap filtering (Sec. 5.1)
//     -> Step 2: false-positive filtering via related partitions (Sec. 5.2)
//     -> Step 3: correlation clustering (Sec. 5.3)
//     -> CNF explanation (Sec. 5.4)

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "common/deadline.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "explain/annotation.h"
#include "explain/correlation_filter.h"
#include "explain/explanation.h"
#include "explain/labeling.h"
#include "explain/leap_filter.h"
#include "explain/partition_table.h"
#include "explain/reward.h"
#include "features/feature_space.h"

namespace exstream {

/// \brief Supplies the monitored (query-result) series of a partition, used
/// for alignment and interval labeling. Typically backed by the engine's
/// MatchTable (see XStreamSystem).
using SeriesProvider =
    std::function<Result<TimeSeries>(const std::string& query_name,
                                     const std::string& partition)>;

/// \brief Tuning knobs for the explanation pipeline.
struct ExplainOptions {
  FeatureSpaceOptions feature_space;
  LeapFilterOptions leap;
  LabelingOptions labeling;
  CorrelationFilterOptions correlation;
  /// Step 2: keep a feature iff its reward on the augmented labeled set is at
  /// least this (Fig. 12's "Reward (all)" column).
  double validation_min_reward = 0.5;
  /// Features with fewer samples than this in either interval get reward 0.
  size_t min_support = 5;
  /// Disable Step 2 (used when no archive history exists).
  bool enable_validation = true;
  /// Disable Step 3 — this is the paper's plain "XStream" variant; enabled is
  /// "XStream-cluster" (Fig. 14/15).
  bool enable_clustering = true;
  /// Worker threads for the analysis hot paths (feature materialization,
  /// entropy rewards, Step-2 candidate alignment and interval pooling).
  /// 1 = fully serial; 0 = one worker per hardware thread. Results are
  /// bit-identical across thread counts. With num_threads != 1 the
  /// SeriesProvider must be safe to call from multiple threads.
  size_t num_threads = 1;
  /// Wall-clock budget for one Explain call, in milliseconds (0 = unbounded).
  /// The deadline is checked cooperatively inside every ParallelFor stage
  /// (feature build, reward ranking, validation); on expiry Explain returns
  /// Status::DeadlineExceeded whose message names the stage reached, and the
  /// worker pool is left idle and reusable.
  double deadline_ms = 0.0;
  /// Feature materialization reads row-materializing archive Scans instead of
  /// the columnar ScanView path. Output is bit-identical either way; the flag
  /// exists as the A/B baseline for determinism tests and benchmarks.
  bool use_legacy_row_scan = false;
  /// Let *reference-side* feature scans (the reference interval of the
  /// reward ranking and Step 2's reference-labeled pools) be answered from
  /// the archive's downsampled tiers when a tier window divides the feature
  /// windows — wide reference intervals then skip spill reads and per-row
  /// folding entirely. Abnormal-interval scans always read exact rows, so
  /// the explanation's abnormal-side features stay bit-identical; reference
  /// aggregates switch to absolute-aligned windows (a resolution the caller
  /// opted into, not a degradation). Off by default.
  bool tiered_reference_scans = false;
};

/// \brief Step-2 detail for one feature (paper Fig. 12).
struct ValidatedFeature {
  RankedFeature feature;  ///< entropy refreshed on the pooled labeled data
  double annotated_reward = 0.0;
  double validated_reward = 0.0;
  bool kept = false;
};

/// \brief Full pipeline output with per-step diagnostics.
struct ExplanationReport {
  AnomalyAnnotation annotation;
  std::vector<RankedFeature> ranked;            ///< all features, reward-sorted
  std::vector<RankedFeature> after_leap;        ///< Step 1 survivors
  std::vector<ValidatedFeature> validation;     ///< Step 2 detail
  std::vector<RankedFeature> after_validation;  ///< Step 2 survivors
  CorrelationFilterResult clustering;           ///< Step 3 structure
  std::vector<RankedFeature> final_features;    ///< explanation features
  Explanation explanation;

  size_t num_related_partitions = 0;
  size_t num_labeled_abnormal = 0;   ///< candidates labeled abnormal
  size_t num_labeled_reference = 0;  ///< candidates labeled reference
  size_t num_discarded = 0;
  double duration_seconds = 0.0;

  /// What the archive scans behind this explanation could not read. When
  /// degraded() is true the explanation was computed from incomplete data
  /// (and `explanation` itself carries the same flag).
  DegradationReport degradation;

  std::vector<std::string> SelectedFeatureNames() const;
};

/// \brief Generates optimal explanations for annotated anomalies.
class ExplanationEngine {
 public:
  /// \param archive the event archive to replay features from
  /// \param partitions partition table for related-partition discovery; may
  ///        be nullptr (Step 2 then degrades to annotated-only validation)
  /// \param series_provider monitored-series accessor; may be empty (Step 2
  ///        is skipped entirely)
  /// \param recent incremental recent-interval tails; when non-null,
  ///        exact-resolution feature scans covered by the tails skip the
  ///        archive (bit-identical rows; see features/incremental.h). Ignored
  ///        on the legacy row-scan path.
  ExplanationEngine(const EventArchive* archive, const PartitionTable* partitions,
                    SeriesProvider series_provider, ExplainOptions options = {},
                    const IncrementalFeatureState* recent = nullptr);

  /// Runs the full pipeline for one annotation.
  Result<ExplanationReport> Explain(const AnomalyAnnotation& annotation) const;

  const ExplainOptions& options() const { return options_; }
  const std::vector<FeatureSpec>& feature_specs() const { return specs_; }

 private:
  Status RunValidation(const AnomalyAnnotation& annotation,
                       ExplanationReport* report, const CancelToken* cancel) const;

  const EventArchive* archive_;       // not owned
  const PartitionTable* partitions_;  // not owned, may be null
  SeriesProvider series_provider_;
  ExplainOptions options_;
  std::vector<FeatureSpec> specs_;
  FeatureBuilder builder_;
  std::unique_ptr<ThreadPool> pool_;  // null when options_.num_threads == 1
};

}  // namespace exstream
