// Building final explanations from selected features (paper Sec. 5.4).

#pragma once

#include "common/result.h"
#include "explain/explanation.h"
#include "explain/reward.h"

namespace exstream {

/// \brief Builds the clause for one selected feature from the abnormal value
/// ranges of its entropy segmentation.
///
/// "If a feature offers perfect separation there is one boundary and only one
///  predicate is built ... if a feature has more than one abnormal interval,
///  then multiple predicates are built" joined by disjunction.
Result<ExplanationClause> BuildClause(const RankedFeature& feature);

/// \brief Builds the CNF explanation for the final selected features.
///
/// Features whose segmentation yields no abnormal-only range (fully mixed)
/// contribute no clause.
Result<Explanation> BuildExplanation(const std::vector<RankedFeature>& features);

}  // namespace exstream
