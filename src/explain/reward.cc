#include "explain/reward.h"

#include <algorithm>

namespace exstream {

std::vector<RankedFeature> RankFeatures(const std::vector<Feature>& abnormal,
                                        const std::vector<Feature>& reference,
                                        size_t min_support) {
  std::vector<RankedFeature> out;
  const size_t n = std::min(abnormal.size(), reference.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RankedFeature rf;
    rf.spec = abnormal[i].spec;
    rf.abnormal_series = abnormal[i].series;
    rf.reference_series = reference[i].series;
    if (rf.abnormal_series.size() >= min_support &&
        rf.reference_series.size() >= min_support) {
      rf.entropy = ComputeEntropyDistance(rf.abnormal_series, rf.reference_series);
    }
    out.push_back(std::move(rf));
  }
  // Reward descending; ties break toward larger sample support (a perfect
  // separation over 400 points is stronger evidence than one over 40), then
  // stably toward spec order for determinism.
  std::stable_sort(out.begin(), out.end(),
                   [](const RankedFeature& a, const RankedFeature& b) {
                     if (a.reward() != b.reward()) return a.reward() > b.reward();
                     return FeatureSupport(a) > FeatureSupport(b);
                   });
  return out;
}

Result<std::vector<RankedFeature>> ComputeFeatureRewards(
    const FeatureBuilder& builder, const std::vector<FeatureSpec>& specs,
    const TimeInterval& abnormal, const TimeInterval& reference,
    size_t min_support) {
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Feature> fa, builder.Build(specs, abnormal));
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Feature> fr, builder.Build(specs, reference));
  return RankFeatures(fa, fr, min_support);
}

}  // namespace exstream
