#include "explain/reward.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace exstream {

std::vector<RankedFeature> RankFeatures(std::vector<Feature> abnormal,
                                        std::vector<Feature> reference,
                                        size_t min_support, ThreadPool* pool,
                                        const CancelToken* cancel) {
  const size_t n = std::min(abnormal.size(), reference.size());
  std::vector<RankedFeature> out(n);
  // Each feature's entropy distance is independent; slot-indexed writes keep
  // the pre-sort order (and thus the stable sort below) deterministic. The
  // inputs are owned, so the series move instead of copying.
  ParallelFor(pool, n, [&](size_t i) {
    RankedFeature& rf = out[i];
    rf.spec = abnormal[i].spec;
    rf.abnormal_series = std::move(abnormal[i].series);
    rf.reference_series = std::move(reference[i].series);
    if (rf.abnormal_series.size() >= min_support &&
        rf.reference_series.size() >= min_support) {
      rf.entropy = ComputeEntropyDistance(rf.abnormal_series, rf.reference_series);
    }
  }, cancel);
  // Reward descending; ties break toward larger sample support (a perfect
  // separation over 400 points is stronger evidence than one over 40), then
  // stably toward spec order for determinism.
  std::stable_sort(out.begin(), out.end(),
                   [](const RankedFeature& a, const RankedFeature& b) {
                     if (a.reward() != b.reward()) return a.reward() > b.reward();
                     return FeatureSupport(a) > FeatureSupport(b);
                   });
  return out;
}

Result<std::vector<RankedFeature>> ComputeFeatureRewards(
    const FeatureBuilder& builder, const std::vector<FeatureSpec>& specs,
    const TimeInterval& abnormal, const TimeInterval& reference,
    size_t min_support, ThreadPool* pool, const CancelToken* cancel,
    DegradationReport* degradation, bool tiered_reference) {
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Feature> fa,
                            builder.Build(specs, abnormal, pool, cancel, degradation));
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Feature> fr,
                            builder.Build(specs, reference, pool, cancel, degradation,
                                          tiered_reference));
  std::vector<RankedFeature> ranked =
      RankFeatures(std::move(fa), std::move(fr), min_support, pool, cancel);
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("reward ranking cancelled (%zu features materialized)",
                  ranked.size()));
  }
  return ranked;
}

}  // namespace exstream
