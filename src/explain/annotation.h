// User annotations: the abnormal interval I_A and reference interval I_R
// drawn on the monitoring dashboard (paper Sec. 2.1, Fig. 4).

#pragma once

#include <string>

#include "event/event.h"

namespace exstream {

/// \brief An annotated interval: I = (Q, [lower, upper], P) — query, time
/// range, and the partition (e.g. a Hadoop jobId) it refers to.
struct IntervalRef {
  std::string query;      ///< query name (Q)
  TimeInterval range;     ///< [lower, upper]
  std::string partition;  ///< partition value (P)

  std::string ToString() const;
};

/// \brief A complete anomaly annotation: the abnormal interval and the
/// reference interval (possibly on a different partition).
struct AnomalyAnnotation {
  IntervalRef abnormal;   ///< I_A
  IntervalRef reference;  ///< I_R

  std::string ToString() const;
};

}  // namespace exstream
