// Interval labeling via hierarchical clustering (paper Sec. 5.2).
//
// "XStream assigns labels through hierarchical clustering: a period that is
//  placed in the same cluster as the annotated anomaly is labeled as
//  abnormal. The clustering uses two distance functions: entropy-based, and
//  normalized difference of frequencies. ... Periods that cannot be assigned
//  with certainty are discarded."

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"
#include "ts/time_series.h"

namespace exstream {

/// \brief A candidate interval to be labeled: the aligned annotation mapped
/// into a related partition, with the monitored series restricted to it.
struct CandidateInterval {
  std::string partition;
  TimeInterval range;
  TimeSeries series;  ///< monitored (query-result) series inside `range`
};

/// \brief Label assigned to a candidate.
enum class IntervalLabel : uint8_t {
  kAbnormal = 0,
  kReference,
  kDiscarded,  ///< could not be assigned with certainty
};

std::string_view IntervalLabelToString(IntervalLabel label);

/// \brief A labeled candidate.
struct LabeledInterval {
  CandidateInterval candidate;
  IntervalLabel label = IntervalLabel::kDiscarded;
};

struct LabelingOptions {
  /// Agglomerative-clustering cut threshold on the combined distance.
  double cut_threshold = 0.35;
  /// Weight of the entropy-based value-distribution distance.
  double entropy_weight = 0.5;
  /// Weight of the normalized frequency difference.
  double frequency_weight = 0.5;
};

/// \brief Combined interval distance: entropy-based separation of the two
/// intervals' value distributions plus the normalized difference of their
/// sampling frequencies. Ranges over [0, 1].
double IntervalDistance(const TimeSeries& a, const TimeSeries& b,
                        const LabelingOptions& options = {});

/// \brief Clusters {annotated abnormal, annotated reference, candidates} and
/// labels each candidate by the cluster it shares with an annotated interval.
///
/// Degenerate case: if the two annotated intervals land in the same cluster,
/// nothing can be labeled with certainty and every candidate is discarded.
Result<std::vector<LabeledInterval>> LabelIntervals(
    const CandidateInterval& annotated_abnormal,
    const CandidateInterval& annotated_reference,
    const std::vector<CandidateInterval>& candidates,
    const LabelingOptions& options = {});

}  // namespace exstream
