// Partition alignment (paper Sec. 5.2, Fig. 11): maps an annotated interval
// onto a related partition, either by temporal fraction or by data-point
// fraction, choosing the mode under which the two partitions are most
// comparable.

#pragma once

#include <string>

#include "common/result.h"
#include "explain/partition_table.h"
#include "ts/time_series.h"

namespace exstream {

/// \brief The two alignment modes of Fig. 11.
enum class AlignmentMode : uint8_t {
  kTemporal = 0,  ///< map by fraction of the partition's temporal length
  kPointBased,    ///< map by fraction of the partition's data points
};

std::string_view AlignmentModeToString(AlignmentMode mode);

/// \brief An annotation interval mapped onto a related partition.
struct AlignedInterval {
  TimeInterval range;  ///< absolute time range within the related partition
  AlignmentMode mode = AlignmentMode::kTemporal;
};

/// \brief Chooses the alignment mode for a (annotated, related) partition
/// pair: the mode whose measure (points vs duration) differs least,
/// relatively, between the two partitions.
///
/// Paper example: "if a related partition has 10% more points, but is 50%
/// longer in time, point-based alignment is preferred."
AlignmentMode ChooseAlignmentMode(const PartitionRecord& annotated,
                                  const PartitionRecord& related);

/// \brief Maps `annotated_range` onto the related partition.
///
/// \param annotated the annotated partition's record
/// \param annotated_series the annotated partition's monitored series (for
///        point counting)
/// \param annotated_range the annotation (absolute time in the annotated
///        partition)
/// \param related the related partition's record
/// \param related_series the related partition's monitored series
Result<AlignedInterval> AlignAnnotation(const PartitionRecord& annotated,
                                        const TimeSeries& annotated_series,
                                        const TimeInterval& annotated_range,
                                        const PartitionRecord& related,
                                        const TimeSeries& related_series);

}  // namespace exstream
