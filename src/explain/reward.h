// Single-feature reward computation over annotated intervals (Sec. 4).

#pragma once

#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "features/builder.h"
#include "features/feature.h"
#include "ts/entropy_distance.h"

namespace exstream {

/// \brief A feature with its interval series and entropy-distance reward.
struct RankedFeature {
  FeatureSpec spec;
  TimeSeries abnormal_series;
  TimeSeries reference_series;
  EntropyDistanceResult entropy;

  /// The single-feature reward D(f) of Eq. 4.
  double reward() const { return entropy.distance; }
};

/// \brief Materializes every spec over both annotated intervals, computes
/// entropy rewards, and returns features sorted by reward descending
/// (stable: spec order breaks ties deterministically).
///
/// \param min_support features with fewer samples than this in either
///        interval get reward 0 — a 3-point "perfect separation" is noise,
///        not signal
/// \param pool when non-null, feature materialization and the per-feature
///        entropy distances fan out over the pool; results are merged in
///        spec order, so the ranking is identical to the serial run
/// \param cancel when non-null, polled cooperatively; expiry yields
///        Status::DeadlineExceeded with the stage reached
/// \param degradation when non-null, accumulates chunks the archive scans
///        had to skip (see EventArchive::Scan)
/// \param tiered_reference when true, the reference-interval build may fold
///        from archive tiers (FeatureBuilder::Build allow_tiers); the
///        abnormal interval always reads exact rows
Result<std::vector<RankedFeature>> ComputeFeatureRewards(
    const FeatureBuilder& builder, const std::vector<FeatureSpec>& specs,
    const TimeInterval& abnormal, const TimeInterval& reference,
    size_t min_support = 5, ThreadPool* pool = nullptr,
    const CancelToken* cancel = nullptr, DegradationReport* degradation = nullptr,
    bool tiered_reference = false);

/// \brief Reward computation on pre-built, aligned feature vectors. Takes the
/// features by value and moves their series into the ranked output (pass
/// std::move when the inputs are no longer needed — the hot path does; a
/// plain lvalue call still copies). With an expired `cancel` token the result
/// is truncated mid-ranking; callers that pass a token must check it
/// afterwards.
std::vector<RankedFeature> RankFeatures(std::vector<Feature> abnormal,
                                        std::vector<Feature> reference,
                                        size_t min_support = 5,
                                        ThreadPool* pool = nullptr,
                                        const CancelToken* cancel = nullptr);

/// \brief Total sample count of a ranked feature (both intervals).
inline size_t FeatureSupport(const RankedFeature& f) {
  return f.abnormal_series.size() + f.reference_series.size();
}

}  // namespace exstream
