#include "explain/predicate_builder.h"

namespace exstream {

Result<ExplanationClause> BuildClause(const RankedFeature& feature) {
  ExplanationClause clause;
  clause.feature = feature.spec.Name();
  const std::vector<AbnormalRange> ranges = ExtractAbnormalRanges(feature.entropy);
  for (const AbnormalRange& r : ranges) {
    RangePredicate pred;
    pred.feature = clause.feature;
    pred.has_lower = r.has_lower;
    pred.has_upper = r.has_upper;
    pred.lower = r.lower;
    pred.upper = r.upper;
    clause.disjuncts.push_back(std::move(pred));
  }
  if (clause.disjuncts.empty()) {
    return Status::InvalidArgument("feature '" + clause.feature +
                                   "' has no abnormal-only value range");
  }
  return clause;
}

Result<Explanation> BuildExplanation(const std::vector<RankedFeature>& features) {
  Explanation out;
  for (const RankedFeature& f : features) {
    auto clause = BuildClause(f);
    if (!clause.ok()) continue;  // fully mixed feature: no usable predicate
    out.AddClause(std::move(clause).MoveValue());
  }
  return out;
}

}  // namespace exstream
