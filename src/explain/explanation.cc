#include "explain/explanation.h"

#include "common/strings.h"

namespace exstream {

bool RangePredicate::Eval(double value) const {
  if (has_lower && value < lower) return false;
  if (has_upper && value > upper) return false;
  return has_lower || has_upper;  // an unbounded predicate asserts nothing
}

std::string RangePredicate::ToString() const {
  if (has_lower && has_upper) {
    return StrFormat("(%s >= %.10g AND %s <= %.10g)", feature.c_str(), lower,
                     feature.c_str(), upper);
  }
  if (has_upper) return StrFormat("%s <= %.10g", feature.c_str(), upper);
  if (has_lower) return StrFormat("%s >= %.10g", feature.c_str(), lower);
  return "true";
}

bool ExplanationClause::Eval(double value) const {
  for (const RangePredicate& p : disjuncts) {
    if (p.Eval(value)) return true;
  }
  return false;
}

std::string ExplanationClause::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(disjuncts.size());
  for (const RangePredicate& p : disjuncts) parts.push_back(p.ToString());
  if (parts.size() == 1) return parts[0];
  return "(" + Join(parts, " OR ") + ")";
}

std::vector<std::string> Explanation::FeatureNames() const {
  std::vector<std::string> out;
  out.reserve(clauses_.size());
  for (const auto& c : clauses_) out.push_back(c.feature);
  return out;
}

bool Explanation::Eval(const std::map<std::string, double>& values) const {
  if (clauses_.empty()) return false;
  for (const ExplanationClause& c : clauses_) {
    auto it = values.find(c.feature);
    if (it == values.end() || !c.Eval(it->second)) return false;
  }
  return true;
}

std::string Explanation::ToString() const {
  if (clauses_.empty()) return "(empty explanation)";
  std::vector<std::string> parts;
  parts.reserve(clauses_.size());
  for (const auto& c : clauses_) parts.push_back(c.ToString());
  return Join(parts, " AND ");
}

}  // namespace exstream
