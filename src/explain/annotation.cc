#include "explain/annotation.h"

#include "common/strings.h"

namespace exstream {

std::string IntervalRef::ToString() const {
  return StrFormat("(%s, [%lld, %lld], %s)", query.c_str(),
                   static_cast<long long>(range.lower),
                   static_cast<long long>(range.upper), partition.c_str());
}

std::string AnomalyAnnotation::ToString() const {
  return "I_A=" + abnormal.ToString() + " I_R=" + reference.ToString();
}

}  // namespace exstream
