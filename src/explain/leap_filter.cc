#include "explain/leap_filter.h"

namespace exstream {

std::vector<RankedFeature> RewardLeapFilter(const std::vector<RankedFeature>& ranked,
                                            const LeapFilterOptions& options) {
  std::vector<RankedFeature> out;
  for (size_t i = 0; i < ranked.size() && out.size() < options.max_keep; ++i) {
    const double r = ranked[i].reward();
    if (r < options.min_reward) break;  // absolute floor
    if (i > 0) {
      const double prev = ranked[i - 1].reward();
      if (prev > 0 && r < options.keep_ratio * prev) break;  // the leap
    }
    out.push_back(ranked[i]);
  }
  return out;
}

}  // namespace exstream
