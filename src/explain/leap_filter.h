// Step 1: reward-leap filtering (paper Sec. 5.1).
//
// "Sharp changes in the reward between successive features in the ranking
//  indicate a semantic change: features that rank below a sharp drop are
//  unlikely to contribute to an explanation."

#pragma once

#include <vector>

#include "explain/reward.h"

namespace exstream {

struct LeapFilterOptions {
  /// A successive pair (r_i, r_{i+1}) is a "leap" when
  /// r_{i+1} < keep_ratio * r_i; the list is cut at the first leap.
  double keep_ratio = 0.7;
  /// Features with reward below this floor are dropped regardless.
  double min_reward = 0.5;
  /// Upper bound on the number of surviving features.
  size_t max_keep = 64;
};

/// \brief Cuts a reward-descending ranking at the first sharp drop.
///
/// Input must be sorted by reward descending (ComputeFeatureRewards output).
std::vector<RankedFeature> RewardLeapFilter(const std::vector<RankedFeature>& ranked,
                                            const LeapFilterOptions& options = {});

}  // namespace exstream
