#include "explain/explain_cache.h"

#include <utility>

#include "common/bytes.h"

namespace exstream {

namespace {

// FNV-1a over raw bytes; stable across platforms (the fingerprint reaches
// bench JSON and tests compare it across configurations).
uint64_t Fnv1a(const void* data, size_t n, uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void HashString(uint64_t* h, std::string_view s) {
  const uint64_t len = s.size();
  *h = Fnv1a(&len, sizeof(len), *h);
  *h = Fnv1a(s.data(), s.size(), *h);
}

template <typename T>
void HashPod(uint64_t* h, T v) {
  *h = Fnv1a(&v, sizeof(v), *h);
}

}  // namespace

uint64_t FingerprintExplainOptions(const ExplainOptions& o) {
  uint64_t h = 1469598103934665603ull;
  for (const Timestamp w : o.feature_space.windows) HashPod(&h, w);
  HashPod(&h, static_cast<uint64_t>(o.feature_space.windows.size()));
  for (const AggregateKind a : o.feature_space.aggregates) {
    HashPod(&h, static_cast<uint32_t>(a));
  }
  HashPod(&h, static_cast<uint64_t>(o.feature_space.aggregates.size()));
  HashPod(&h, static_cast<uint8_t>(o.feature_space.include_raw));
  for (const std::string& s : o.feature_space.exclude_attributes) HashString(&h, s);
  for (const std::string& s : o.feature_space.exclude_event_types) HashString(&h, s);
  HashPod(&h, o.leap.keep_ratio);
  HashPod(&h, o.leap.min_reward);
  HashPod(&h, static_cast<uint64_t>(o.leap.max_keep));
  HashPod(&h, o.labeling.cut_threshold);
  HashPod(&h, o.labeling.entropy_weight);
  HashPod(&h, o.labeling.frequency_weight);
  HashPod(&h, o.correlation.threshold);
  HashPod(&h, static_cast<uint64_t>(o.correlation.resample_points));
  HashPod(&h, o.validation_min_reward);
  HashPod(&h, static_cast<uint64_t>(o.min_support));
  HashPod(&h, static_cast<uint8_t>(o.enable_validation));
  HashPod(&h, static_cast<uint8_t>(o.enable_clustering));
  HashPod(&h, static_cast<uint8_t>(o.use_legacy_row_scan));
  HashPod(&h, static_cast<uint8_t>(o.tiered_reference_scans));
  return h;
}

std::string ExplainCacheKey(const AnomalyAnnotation& annotation,
                            uint32_t monitor_query, const std::string& column,
                            const ExplainOptions& options, uint64_t watermark,
                            uint64_t degradation_state) {
  BytesWriter w;
  w.Put<uint32_t>(monitor_query);
  w.PutString(column);
  for (const IntervalRef* ref : {&annotation.abnormal, &annotation.reference}) {
    w.PutString(ref->query);
    w.PutString(ref->partition);
    w.Put<int64_t>(ref->range.lower);
    w.Put<int64_t>(ref->range.upper);
  }
  w.Put<uint64_t>(FingerprintExplainOptions(options));
  w.Put<uint64_t>(watermark);
  w.Put<uint64_t>(degradation_state);
  return w.Take();
}

ExplainResultCache::ResultPtr ExplainResultCache::GetOrCompute(
    const std::string& key,
    const std::function<Result<ExplanationReport>()>& compute) {
  std::shared_future<ResultPtr> wait_on;
  std::promise<ResultPtr> promise;
  uint64_t my_generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      if (it->second.done) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        return it->second.value;
      }
      ++single_flight_waits_;
      wait_on = it->second.future;
    } else {
      ++misses_;
      ++computations_;
      my_generation = generation_;
      Entry entry;
      entry.future = promise.get_future().share();
      entry.generation = my_generation;
      map_.emplace(key, std::move(entry));
    }
  }
  if (wait_on.valid()) return wait_on.get();

  // Owner path: compute outside the lock (this is the expensive part — the
  // whole point of single-flight is that only one caller pays it).
  auto result = std::make_shared<const Result<ExplanationReport>>(compute());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    // The entry may have been orphaned by Clear() (generation mismatch or
    // gone); deliver to waiters without re-inserting in that case.
    if (it != map_.end() && !it->second.done &&
        it->second.generation == my_generation) {
      if (result->ok()) {
        it->second.done = true;
        it->second.value = result;
        lru_.push_front(key);
        it->second.lru = lru_.begin();
        EvictExcessLocked();
      } else {
        map_.erase(it);  // errors reach every waiter but are never cached
      }
    }
  }
  promise.set_value(result);
  return result;
}

ExplainResultCache::ResultPtr ExplainResultCache::Lookup(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || !it->second.done) return nullptr;
  return it->second.value;
}

void ExplainResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  // In-flight entries are erased too: their owner detects the generation
  // mismatch on completion and skips insertion, so no pre-Clear computation
  // can resurface after the cache was invalidated.
  map_.clear();
  lru_.clear();
}

void ExplainResultCache::EvictExcessLocked() {
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

ExplainResultCache::Stats ExplainResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.single_flight_waits = single_flight_waits_;
  s.computations = computations_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  return s;
}

}  // namespace exstream
