// Explanations (paper Def. 2.1): boolean CNF over range predicates.
//
// "An explanation is a boolean expression in Conjunctive Normal Form. It
//  contains a conjunction of clauses, each clause is a disjunction of
//  predicates, and each predicate is of the form {v o c}."
//
// Each clause is built from one selected feature's abnormal value ranges
// (Sec. 5.4); a doubly-bounded range renders as the paper does, e.g.
// `(f >= 30 AND f <= 50)` inside a disjunction.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace exstream {

/// \brief One range predicate on a feature value.
struct RangePredicate {
  std::string feature;  ///< canonical feature name
  bool has_lower = false;
  bool has_upper = false;
  double lower = 0.0;
  double upper = 0.0;

  bool Eval(double value) const;
  std::string ToString() const;
};

/// \brief A disjunction of range predicates over the same feature.
struct ExplanationClause {
  std::string feature;
  std::vector<RangePredicate> disjuncts;

  bool Eval(double value) const;
  std::string ToString() const;
};

/// \brief A CNF explanation: the conjunction of per-feature clauses.
class Explanation {
 public:
  void AddClause(ExplanationClause clause) { clauses_.push_back(std::move(clause)); }

  const std::vector<ExplanationClause>& clauses() const { return clauses_; }
  size_t NumFeatures() const { return clauses_.size(); }
  bool empty() const { return clauses_.empty(); }

  /// \brief Flags the explanation as computed from incomplete archive data
  /// (some chunks were quarantined during the analysis scans). `note` is a
  /// human-readable summary of what was missing.
  void MarkDegraded(std::string note) {
    degraded_ = true;
    degradation_note_ = std::move(note);
  }
  bool degraded() const { return degraded_; }
  const std::string& degradation_note() const { return degradation_note_; }

  /// Names of the features used by the explanation.
  std::vector<std::string> FeatureNames() const;

  /// \brief Truth value on a feature-name -> value assignment.
  ///
  /// Features missing from the assignment make their clause false (the
  /// explanation asserts a condition we cannot confirm).
  bool Eval(const std::map<std::string, double>& values) const;

  /// Human-readable CNF, e.g.
  /// "(MemUsage.memFree.mean@10 <= 1978482) AND (...)".
  std::string ToString() const;

 private:
  std::vector<ExplanationClause> clauses_;
  bool degraded_ = false;
  std::string degradation_note_;
};

}  // namespace exstream
