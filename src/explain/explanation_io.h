// Persistence of explanations: the canonical CNF text produced by
// Explanation::ToString() round-trips through ParseExplanation(), so a rule
// learned once can be saved and re-loaded for proactive monitoring ("the
// explanation can be encoded into the system for proactive monitoring for
// similar anomalies in the future", Sec. 1.2).

#pragma once

#include <string>

#include "common/result.h"
#include "explain/explanation.h"

namespace exstream {

/// \brief Parses the textual CNF produced by Explanation::ToString().
///
/// Accepted forms, per clause (clauses joined by top-level AND):
///   f <= c
///   f >= c
///   (f >= c1 AND f <= c2)                       -- doubly bounded range
///   (p1 OR p2 OR ...)                            -- disjunction of the above
/// "(empty explanation)" parses to an empty Explanation.
Result<Explanation> ParseExplanation(std::string_view text);

/// \brief Writes `explanation.ToString()` (plus a trailing newline) to `path`.
Status SaveExplanationFile(const std::string& path, const Explanation& explanation);

/// \brief Reads and parses an explanation file written by SaveExplanationFile.
Result<Explanation> LoadExplanationFile(const std::string& path);

}  // namespace exstream
