#include "explain/explanation_io.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace exstream {

namespace {

// Tokens: "(", ")", and whitespace-delimited words.
std::vector<std::string> TokenizeCnf(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  };
  for (const char c : text) {
    if (c == '(' || c == ')') {
      flush();
      tokens.push_back(std::string(1, c));
    } else if (isspace(static_cast<unsigned char>(c))) {
      flush();
    } else {
      current += c;
    }
  }
  flush();
  return tokens;
}

class CnfParser {
 public:
  explicit CnfParser(std::vector<std::string> tokens) : tokens_(std::move(tokens)) {}

  Result<Explanation> Parse() {
    Explanation out;
    if (tokens_.empty()) return out;
    for (;;) {
      EXSTREAM_ASSIGN_OR_RETURN(ExplanationClause clause, ParseClause());
      out.AddClause(std::move(clause));
      if (AtEnd()) break;
      EXSTREAM_RETURN_NOT_OK(Expect("AND"));
    }
    return out;
  }

 private:
  bool AtEnd() const { return pos_ >= tokens_.size(); }

  const std::string& Cur() const {
    static const std::string kEnd = "<end>";
    return AtEnd() ? kEnd : tokens_[pos_];
  }

  bool Accept(const std::string& tok) {
    if (Cur() == tok) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(const std::string& tok) {
    if (!Accept(tok)) {
      return Status::ParseError(StrFormat("expected '%s', got '%s' (token %zu)",
                                          tok.c_str(), Cur().c_str(), pos_));
    }
    return Status::OK();
  }

  Result<double> ParseNumber() {
    char* end = nullptr;
    const double v = strtod(Cur().c_str(), &end);
    if (end == Cur().c_str() || *end != '\0') {
      return Status::ParseError("expected a number, got '" + Cur() + "'");
    }
    ++pos_;
    return v;
  }

  Result<std::string> ParseName() {
    const std::string& tok = Cur();
    if (tok == "(" || tok == ")" || tok == "AND" || tok == "OR" || tok == "<=" ||
        tok == ">=" || AtEnd()) {
      return Status::ParseError("expected a feature name, got '" + tok + "'");
    }
    ++pos_;
    return tok;
  }

  // `f <= c` or `f >= c`.
  Result<RangePredicate> ParseSimplePredicate() {
    RangePredicate pred;
    EXSTREAM_ASSIGN_OR_RETURN(pred.feature, ParseName());
    if (Accept("<=")) {
      pred.has_upper = true;
      EXSTREAM_ASSIGN_OR_RETURN(pred.upper, ParseNumber());
    } else if (Accept(">=")) {
      pred.has_lower = true;
      EXSTREAM_ASSIGN_OR_RETURN(pred.lower, ParseNumber());
    } else {
      return Status::ParseError("expected '<=' or '>=', got '" + Cur() + "'");
    }
    return pred;
  }

  // Either a simple predicate or "(f >= c1 AND f <= c2)".
  Result<RangePredicate> ParsePredicateAtom() {
    if (!Accept("(")) return ParseSimplePredicate();
    EXSTREAM_ASSIGN_OR_RETURN(RangePredicate lo, ParseSimplePredicate());
    EXSTREAM_RETURN_NOT_OK(Expect("AND"));
    EXSTREAM_ASSIGN_OR_RETURN(RangePredicate hi, ParseSimplePredicate());
    EXSTREAM_RETURN_NOT_OK(Expect(")"));
    return MergeBounds(lo, hi);
  }

  static Result<RangePredicate> MergeBounds(const RangePredicate& a,
                                            const RangePredicate& b) {
    if (a.feature != b.feature) {
      return Status::ParseError("bounded range must constrain one feature, got '" +
                                a.feature + "' and '" + b.feature + "'");
    }
    if (!(a.has_lower && b.has_upper) && !(a.has_upper && b.has_lower)) {
      return Status::ParseError("bounded range needs one lower and one upper bound");
    }
    RangePredicate out;
    out.feature = a.feature;
    out.has_lower = true;
    out.has_upper = true;
    out.lower = a.has_lower ? a.lower : b.lower;
    out.upper = a.has_upper ? a.upper : b.upper;
    return out;
  }

  Result<ExplanationClause> ParseClause() {
    ExplanationClause clause;
    if (!Accept("(")) {
      EXSTREAM_ASSIGN_OR_RETURN(RangePredicate pred, ParseSimplePredicate());
      clause.feature = pred.feature;
      clause.disjuncts.push_back(std::move(pred));
      return clause;
    }
    // After "(": either a bounded range (pred AND pred), a disjunction
    // (atom OR atom ...), or a lone parenthesized predicate.
    EXSTREAM_ASSIGN_OR_RETURN(RangePredicate first, ParsePredicateAtom());
    if (Accept("AND")) {
      EXSTREAM_ASSIGN_OR_RETURN(RangePredicate second, ParseSimplePredicate());
      EXSTREAM_RETURN_NOT_OK(Expect(")"));
      EXSTREAM_ASSIGN_OR_RETURN(RangePredicate merged, MergeBounds(first, second));
      clause.feature = merged.feature;
      clause.disjuncts.push_back(std::move(merged));
      return clause;
    }
    clause.disjuncts.push_back(first);
    while (Accept("OR")) {
      EXSTREAM_ASSIGN_OR_RETURN(RangePredicate pred, ParsePredicateAtom());
      if (pred.feature != first.feature) {
        return Status::ParseError(
            "a clause's disjuncts must constrain one feature");
      }
      clause.disjuncts.push_back(std::move(pred));
    }
    EXSTREAM_RETURN_NOT_OK(Expect(")"));
    clause.feature = first.feature;
    return clause;
  }

  std::vector<std::string> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Explanation> ParseExplanation(std::string_view text) {
  const std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty() || trimmed == "(empty explanation)") return Explanation();
  CnfParser parser(TokenizeCnf(trimmed));
  return parser.Parse();
}

Status SaveExplanationFile(const std::string& path, const Explanation& explanation) {
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string text = explanation.ToString() + "\n";
  const size_t written = fwrite(text.data(), 1, text.size(), f);
  fclose(f);
  if (written != text.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<Explanation> LoadExplanationFile(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string text;
  char buf[1 << 12];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  fclose(f);
  return ParseExplanation(text);
}

}  // namespace exstream
