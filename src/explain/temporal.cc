#include "explain/temporal.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace exstream {

namespace {

// Resamples `s` to the grid [lo, hi] with `points` samples, optionally
// differencing.
std::vector<double> GridValues(const TimeSeries& s, Timestamp lo, Timestamp hi,
                               size_t points, bool differences, Timestamp shift) {
  std::vector<double> out;
  out.reserve(points);
  if (s.empty() || points < 2 || hi <= lo) return out;
  for (size_t i = 0; i < points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points - 1);
    const Timestamp t = lo + static_cast<Timestamp>(
                                 frac * static_cast<double>(hi - lo));
    out.push_back(s.InterpolateAt(t - shift));
  }
  if (differences) {
    for (size_t i = out.size(); i-- > 1;) out[i] -= out[i - 1];
    out.erase(out.begin());
  }
  return out;
}

}  // namespace

double LaggedCorrelation(const TimeSeries& feature, const TimeSeries& target,
                         Timestamp lag, const TemporalOptions& options) {
  if (feature.size() < 2 || target.size() < 2) return 0.0;
  const Timestamp lo = std::max(feature.start_time(), target.start_time());
  const Timestamp hi = std::min(feature.end_time(), target.end_time());
  if (hi <= lo) return 0.0;
  // Shifting the feature by +lag means comparing feature(t - lag) with
  // target(t): the feature's past against the target's present.
  const std::vector<double> f =
      GridValues(feature, lo, hi, options.points, options.use_differences, lag);
  const std::vector<double> g =
      GridValues(target, lo, hi, options.points, options.use_differences, 0);
  return PearsonCorrelation(f, g);
}

std::vector<LagCorrelation> LagSweep(const TimeSeries& feature,
                                     const TimeSeries& target,
                                     const TemporalOptions& options) {
  std::vector<LagCorrelation> out;
  const Timestamp step = std::max<Timestamp>(1, options.lag_step);
  for (Timestamp lag = -options.max_lag; lag <= options.max_lag; lag += step) {
    out.push_back({lag, LaggedCorrelation(feature, target, lag, options)});
  }
  return out;
}

LagCorrelation BestLag(const TimeSeries& feature, const TimeSeries& target,
                       const TemporalOptions& options) {
  LagCorrelation best;
  for (const LagCorrelation& lc : LagSweep(feature, target, options)) {
    if (std::fabs(lc.correlation) > std::fabs(best.correlation)) best = lc;
  }
  return best;
}

double LeadScore(const TimeSeries& feature, const TimeSeries& monitored,
                 const TemporalOptions& options) {
  double best_lead = 0.0;
  double best_trail = 0.0;
  for (const LagCorrelation& lc : LagSweep(feature, monitored, options)) {
    const double strength = std::fabs(lc.correlation);
    if (lc.lag >= 0) {
      best_lead = std::max(best_lead, strength);
    } else {
      best_trail = std::max(best_trail, strength);
    }
  }
  return best_lead - best_trail;
}

std::vector<std::pair<RankedFeature, double>> RankByLeadScore(
    const std::vector<RankedFeature>& features, const TimeSeries& monitored,
    const TemporalOptions& options) {
  std::vector<std::pair<RankedFeature, double>> out;
  out.reserve(features.size());
  for (const RankedFeature& f : features) {
    // Lead analysis runs on the abnormal-interval series, where the causal
    // timing lives.
    out.emplace_back(f, LeadScore(f.abnormal_series, monitored, options));
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

}  // namespace exstream
