#include "explain/correlation_filter.h"

#include <cmath>

#include "common/stats.h"
#include "ts/clustering.h"

namespace exstream {

namespace {

// Concatenated, per-interval-resampled value vector of a feature. Resampled
// values land straight in the output — no intermediate TimeSeries copies.
std::vector<double> AlignedValues(const RankedFeature& f, size_t points) {
  std::vector<double> out;
  out.reserve(2 * points);
  f.abnormal_series.ResampleValuesInto(points, &out);
  f.reference_series.ResampleValuesInto(points, &out);
  out.resize(2 * points, 0.0);  // uniform length even for empty series
  return out;
}

}  // namespace

CorrelationFilterResult CorrelationClusterFilter(
    const std::vector<RankedFeature>& features, const CorrelationFilterOptions& options) {
  CorrelationFilterResult result;
  const size_t n = features.size();
  if (n == 0) return result;

  std::vector<std::vector<double>> aligned;
  aligned.reserve(n);
  for (const RankedFeature& f : features) {
    aligned.push_back(AlignedValues(f, options.resample_points));
  }

  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(PearsonCorrelation(aligned[i], aligned[j])) >= options.threshold) {
        edges.emplace_back(i, j);
      }
    }
  }
  const ClusteringResult comps = ConnectedComponents(n, edges);
  result.cluster_labels = comps.labels;
  result.num_clusters = comps.num_clusters;

  // Representative per cluster: highest reward; reward ties break toward the
  // feature with more samples (more statistical evidence behind the same
  // perfect separation), then toward the higher-ranked feature.
  std::vector<int> rep(static_cast<size_t>(comps.num_clusters), -1);
  for (size_t i = 0; i < n; ++i) {
    int& r = rep[static_cast<size_t>(comps.labels[i])];
    if (r < 0) {
      r = static_cast<int>(i);
      continue;
    }
    const RankedFeature& cur = features[static_cast<size_t>(r)];
    const RankedFeature& cand = features[i];
    const bool better =
        cand.reward() > cur.reward() + 1e-12 ||
        (std::fabs(cand.reward() - cur.reward()) <= 1e-12 &&
         FeatureSupport(cand) > FeatureSupport(cur));
    if (better) r = static_cast<int>(i);
  }
  for (int r : rep) {
    if (r >= 0) result.representatives.push_back(features[static_cast<size_t>(r)]);
  }
  return result;
}

}  // namespace exstream
