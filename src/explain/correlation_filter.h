// Step 3: filtering by correlation clustering (paper Sec. 5.3).
//
// "We represent a feature as a node; two nodes are connected if the pairwise
//  correlation of the two features exceeds a threshold. We treat each
//  connected component as a cluster, and select only one representative
//  feature from each cluster."

#pragma once

#include <vector>

#include "explain/reward.h"

namespace exstream {

struct CorrelationFilterOptions {
  /// |Pearson| at or above which two features are connected.
  double threshold = 0.8;
  /// Resampling resolution for aligning heterogeneous series.
  size_t resample_points = 64;
};

/// \brief Result of correlation clustering: the chosen representatives plus
/// the cluster structure (for conciseness accounting, Fig. 15's "ground truth
/// cluster" series).
struct CorrelationFilterResult {
  std::vector<RankedFeature> representatives;
  std::vector<int> cluster_labels;  ///< per input feature
  int num_clusters = 0;
};

/// \brief Clusters correlated features and keeps one representative (the
/// highest-reward member) per cluster. Correlation is measured on the
/// concatenated (abnormal ++ reference) resampled series, so features that
/// respond to the same underlying signal in both intervals collapse.
CorrelationFilterResult CorrelationClusterFilter(
    const std::vector<RankedFeature>& features,
    const CorrelationFilterOptions& options = {});

}  // namespace exstream
