#include "explain/alignment.h"

#include <algorithm>
#include <cmath>

namespace exstream {

std::string_view AlignmentModeToString(AlignmentMode mode) {
  switch (mode) {
    case AlignmentMode::kTemporal:
      return "temporal";
    case AlignmentMode::kPointBased:
      return "point-based";
  }
  return "?";
}

AlignmentMode ChooseAlignmentMode(const PartitionRecord& annotated,
                                  const PartitionRecord& related) {
  const double pa = static_cast<double>(annotated.num_points);
  const double pr = static_cast<double>(related.num_points);
  const double da = static_cast<double>(annotated.Duration());
  const double dr = static_cast<double>(related.Duration());
  const double rel_points =
      std::max(pa, pr) > 0 ? std::fabs(pa - pr) / std::max(pa, pr) : 1.0;
  const double rel_duration =
      std::max(da, dr) > 0 ? std::fabs(da - dr) / std::max(da, dr) : 1.0;
  return rel_points < rel_duration ? AlignmentMode::kPointBased
                                   : AlignmentMode::kTemporal;
}

namespace {

// Fraction of `series` points with timestamp <= t.
double PointFraction(const TimeSeries& series, Timestamp t) {
  if (series.empty()) return 0.0;
  const auto& times = series.times();
  const size_t idx = static_cast<size_t>(
      std::upper_bound(times.begin(), times.end(), t) - times.begin());
  return static_cast<double>(idx) / static_cast<double>(times.size());
}

// Timestamp at the given point fraction of `series`.
Timestamp TimeAtPointFraction(const TimeSeries& series, double frac) {
  if (series.empty()) return 0;
  const double pos = frac * static_cast<double>(series.size());
  size_t idx = static_cast<size_t>(std::llround(pos));
  if (idx > 0) --idx;  // fraction f covers the first f*N points
  idx = std::min(idx, series.size() - 1);
  return series.time(idx);
}

}  // namespace

Result<AlignedInterval> AlignAnnotation(const PartitionRecord& annotated,
                                        const TimeSeries& annotated_series,
                                        const TimeInterval& annotated_range,
                                        const PartitionRecord& related,
                                        const TimeSeries& related_series) {
  if (annotated.Duration() <= 0) {
    return Status::InvalidArgument("annotated partition has no duration");
  }
  AlignedInterval out;
  out.mode = ChooseAlignmentMode(annotated, related);

  if (out.mode == AlignmentMode::kTemporal) {
    const double d = static_cast<double>(annotated.Duration());
    const double lo_frac =
        static_cast<double>(annotated_range.lower - annotated.start_ts) / d;
    const double hi_frac =
        static_cast<double>(annotated_range.upper - annotated.start_ts) / d;
    const double rd = static_cast<double>(related.Duration());
    out.range.lower =
        related.start_ts + static_cast<Timestamp>(std::llround(lo_frac * rd));
    out.range.upper =
        related.start_ts + static_cast<Timestamp>(std::llround(hi_frac * rd));
  } else {
    if (annotated_series.empty() || related_series.empty()) {
      return Status::InvalidArgument("point-based alignment needs both series");
    }
    // Map the interval's point-coverage fractions onto the related series.
    const double lo_frac = PointFraction(annotated_series, annotated_range.lower - 1);
    const double hi_frac = PointFraction(annotated_series, annotated_range.upper);
    out.range.lower = lo_frac <= 0.0 ? related_series.start_time()
                                     : TimeAtPointFraction(related_series, lo_frac) + 1;
    out.range.upper = TimeAtPointFraction(related_series, hi_frac);
    if (out.range.upper < out.range.lower) out.range.upper = out.range.lower;
  }
  return out;
}

}  // namespace exstream
