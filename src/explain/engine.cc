#include "explain/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "explain/alignment.h"
#include "explain/predicate_builder.h"

namespace exstream {

std::vector<std::string> ExplanationReport::SelectedFeatureNames() const {
  std::vector<std::string> out;
  out.reserve(final_features.size());
  for (const RankedFeature& f : final_features) out.push_back(f.spec.Name());
  return out;
}

ExplanationEngine::ExplanationEngine(const EventArchive* archive,
                                     const PartitionTable* partitions,
                                     SeriesProvider series_provider,
                                     ExplainOptions options,
                                     const IncrementalFeatureState* recent)
    : archive_(archive),
      partitions_(partitions),
      series_provider_(std::move(series_provider)),
      options_(std::move(options)),
      specs_(GenerateFeatureSpecs(archive->registry(), options_.feature_space)),
      builder_(archive, options_.use_legacy_row_scan,
               options_.use_legacy_row_scan ? nullptr : recent),
      pool_(options_.num_threads == 1
                ? nullptr
                : std::make_unique<ThreadPool>(options_.num_threads)) {}

Result<ExplanationReport> ExplanationEngine::Explain(
    const AnomalyAnnotation& annotation) const {
  Stopwatch timer;
  ExplanationReport report;
  report.annotation = annotation;

  // Deadline token for this call; polled inside every parallel stage so a
  // runaway analysis yields DeadlineExceeded instead of stalling monitoring.
  const CancelToken token = options_.deadline_ms > 0
                                ? CancelToken::AfterMillis(options_.deadline_ms)
                                : CancelToken();
  const CancelToken* cancel = options_.deadline_ms > 0 ? &token : nullptr;

  // Rank every feature in the space by entropy reward over (I_A, I_R).
  EXSTREAM_ASSIGN_OR_RETURN(
      report.ranked, ComputeFeatureRewards(builder_, specs_, annotation.abnormal.range,
                                           annotation.reference.range,
                                           options_.min_support, pool_.get(), cancel,
                                           &report.degradation,
                                           options_.tiered_reference_scans));

  // Step 1: reward-leap filtering.
  report.after_leap = RewardLeapFilter(report.ranked, options_.leap);
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("deadline exceeded after reward ranking (%zu ranked, %zu after "
                  "leap filter)",
                  report.ranked.size(), report.after_leap.size()));
  }

  // Step 2: false-positive filtering on related partitions.
  if (options_.enable_validation && partitions_ != nullptr && series_provider_) {
    EXSTREAM_RETURN_NOT_OK(RunValidation(annotation, &report, cancel));
  } else {
    for (const RankedFeature& f : report.after_leap) {
      ValidatedFeature v;
      v.feature = f;
      v.annotated_reward = f.reward();
      v.validated_reward = f.reward();
      v.kept = f.reward() >= options_.validation_min_reward;
      if (v.kept) report.after_validation.push_back(f);
      report.validation.push_back(std::move(v));
    }
  }

  // Step 3: correlation clustering.
  if (options_.enable_clustering) {
    report.clustering =
        CorrelationClusterFilter(report.after_validation, options_.correlation);
    report.final_features = report.clustering.representatives;
  } else {
    report.final_features = report.after_validation;
    report.clustering.cluster_labels.assign(report.after_validation.size(), 0);
    report.clustering.num_clusters =
        static_cast<int>(report.after_validation.size());
  }

  EXSTREAM_ASSIGN_OR_RETURN(report.explanation,
                            BuildExplanation(report.final_features));
  if (report.degradation.degraded()) {
    report.explanation.MarkDegraded(report.degradation.ToString());
  }
  report.duration_seconds = timer.ElapsedSeconds();
  return report;
}

Status ExplanationEngine::RunValidation(const AnomalyAnnotation& annotation,
                                        ExplanationReport* report,
                                        const CancelToken* cancel) const {
  // Gather the labeled interval pools, starting with the annotations.
  std::vector<TimeInterval> abnormal_intervals = {annotation.abnormal.range};
  std::vector<TimeInterval> reference_intervals = {annotation.reference.range};

  auto annotated_rec =
      partitions_->Get(annotation.abnormal.query, annotation.abnormal.partition);
  if (annotated_rec.ok()) {
    auto abn_series_r = series_provider_(annotation.abnormal.query,
                                         annotation.abnormal.partition);
    auto ref_series_r = series_provider_(annotation.reference.query,
                                         annotation.reference.partition);
    if (abn_series_r.ok() && ref_series_r.ok()) {
      const TimeSeries& abn_series = *abn_series_r;
      const TimeSeries& ref_series = *ref_series_r;

      CandidateInterval annotated_abnormal{annotation.abnormal.partition,
                                           annotation.abnormal.range,
                                           abn_series.Slice(annotation.abnormal.range)};
      CandidateInterval annotated_reference{
          annotation.reference.partition, annotation.reference.range,
          ref_series.Slice(annotation.reference.range)};

      const std::vector<PartitionRecord> related =
          partitions_->FindRelated(*annotated_rec);
      report->num_related_partitions = related.size();

      std::vector<CandidateInterval> candidates;

      // The non-annotated parts of the abnormal partition are labeling
      // candidates too (Sec. 2.1: the reference "can be inferred by XStream
      // as the non-annotated parts of the partition"). Their labels anchor
      // time-monotone false positives (e.g. uptime) from both sides.
      {
        const TimeInterval& ia = annotation.abnormal.range;
        std::vector<TimeInterval> remainders;
        if (!abn_series.empty()) {
          remainders.push_back({abn_series.start_time(), ia.lower - 1});
          remainders.push_back({ia.upper + 1, abn_series.end_time()});
        }
        for (TimeInterval rem : remainders) {
          // Clip away the explicitly annotated reference when it lives in the
          // same partition.
          if (annotation.reference.partition == annotation.abnormal.partition) {
            const TimeInterval& ir = annotation.reference.range;
            if (ir.lower <= rem.lower && ir.upper >= rem.upper) continue;
            if (ir.lower > rem.lower && ir.lower <= rem.upper) rem.upper = ir.lower - 1;
            if (ir.upper < rem.upper && ir.upper >= rem.lower) rem.lower = ir.upper + 1;
          }
          if (rem.upper <= rem.lower) continue;
          CandidateInterval cand;
          cand.partition = annotation.abnormal.partition;
          cand.range = rem;
          cand.series = abn_series.Slice(rem);
          if (cand.series.size() >= options_.min_support) {
            candidates.push_back(std::move(cand));
          }
        }
      }

      // Align the annotation onto every related partition. Each partition's
      // series fetch, alignment, and slicing are independent, so they fan out
      // over the pool; merging slot-by-slot keeps the candidate order (and
      // hence labeling and all downstream output) identical to the serial run.
      std::vector<std::vector<CandidateInterval>> per_related(related.size());
      ParallelFor(pool_.get(), related.size(), [&](size_t r) {
        if (cancel != nullptr && cancel->Expired()) return;
        const PartitionRecord& rel = related[r];
        auto rel_series_r = series_provider_(rel.query_name, rel.partition);
        if (!rel_series_r.ok()) return;
        const TimeSeries& rel_series = *rel_series_r;
        for (const TimeInterval& src :
             {annotation.abnormal.range, annotation.reference.range}) {
          auto aligned = AlignAnnotation(*annotated_rec, abn_series, src, rel,
                                         rel_series);
          if (!aligned.ok()) continue;
          CandidateInterval cand;
          cand.partition = rel.partition;
          cand.range = aligned->range;
          cand.series = rel_series.Slice(aligned->range);
          if (cand.series.empty()) continue;
          per_related[r].push_back(std::move(cand));
        }
      });
      for (auto& cands : per_related) {
        for (auto& cand : cands) candidates.push_back(std::move(cand));
      }
      if (cancel != nullptr && cancel->Expired()) {
        return Status::DeadlineExceeded(StrFormat(
            "deadline exceeded during related-partition alignment "
            "(%zu candidates from %zu partitions)",
            candidates.size(), related.size()));
      }

      if (!candidates.empty()) {
        EXSTREAM_ASSIGN_OR_RETURN(
            const std::vector<LabeledInterval> labeled,
            LabelIntervals(annotated_abnormal, annotated_reference, candidates,
                           options_.labeling));
        if (GetLogLevel() <= LogLevel::kDebug) {
          for (const LabeledInterval& li : labeled) {
            EXSTREAM_LOG(Debug)
                << "label " << li.candidate.partition << " ["
                << li.candidate.range.lower << "," << li.candidate.range.upper
                << "] -> " << IntervalLabelToString(li.label) << " (d_abn="
                << IntervalDistance(li.candidate.series, annotated_abnormal.series,
                                    options_.labeling)
                << " d_ref="
                << IntervalDistance(li.candidate.series,
                                    annotated_reference.series, options_.labeling)
                << ")";
          }
        }
        for (const LabeledInterval& li : labeled) {
          switch (li.label) {
            case IntervalLabel::kAbnormal:
              abnormal_intervals.push_back(li.candidate.range);
              ++report->num_labeled_abnormal;
              break;
            case IntervalLabel::kReference:
              reference_intervals.push_back(li.candidate.range);
              ++report->num_labeled_reference;
              break;
            case IntervalLabel::kDiscarded:
              ++report->num_discarded;
              break;
          }
        }
      }
    }
  }

  // Re-evaluate every Step-1 survivor on the pooled labeled data.
  std::vector<FeatureSpec> survivor_specs;
  survivor_specs.reserve(report->after_leap.size());
  for (const RankedFeature& f : report->after_leap) survivor_specs.push_back(f.spec);

  std::vector<std::vector<double>> abnormal_pool(survivor_specs.size());
  std::vector<std::vector<double>> reference_pool(survivor_specs.size());
  auto accumulate = [&](const std::vector<TimeInterval>& intervals,
                        std::vector<std::vector<double>>* value_pool,
                        bool allow_tiers) -> Status {
    // Materialize the survivor features of every labeled interval in
    // parallel, then merge in interval order so each feature's pooled value
    // sequence matches the serial run exactly. With a single interval the
    // parallelism moves inside Build instead.
    std::vector<Result<std::vector<Feature>>> per_interval(intervals.size(),
                                                           std::vector<Feature>{});
    if (intervals.size() == 1) {
      per_interval[0] = builder_.Build(survivor_specs, intervals[0], pool_.get(),
                                       cancel, &report->degradation, allow_tiers);
    } else {
      // Each parallel Build gets a private degradation slot; merged in order
      // below so the report stays deterministic.
      std::vector<DegradationReport> per_degradation(intervals.size());
      ParallelFor(pool_.get(), intervals.size(), [&](size_t k) {
        per_interval[k] = builder_.Build(survivor_specs, intervals[k], nullptr,
                                         cancel, &per_degradation[k], allow_tiers);
      }, cancel);
      for (const DegradationReport& d : per_degradation) {
        report->degradation.Merge(d);
      }
    }
    for (auto& feats_r : per_interval) {
      EXSTREAM_RETURN_NOT_OK(feats_r.status());
      const std::vector<Feature>& feats = *feats_r;
      for (size_t i = 0; i < feats.size(); ++i) {
        const auto& vals = feats[i].series.values();
        (*value_pool)[i].insert((*value_pool)[i].end(), vals.begin(), vals.end());
      }
    }
    return Status::OK();
  };
  // Abnormal pools always fold exact rows (the explanation's abnormal side
  // must be bit-identical to raw); reference pools may take the tiered path.
  EXSTREAM_RETURN_NOT_OK(accumulate(abnormal_intervals, &abnormal_pool, false));
  EXSTREAM_RETURN_NOT_OK(accumulate(reference_intervals, &reference_pool,
                                    options_.tiered_reference_scans));
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(StrFormat(
        "deadline exceeded while pooling labeled intervals (%zu abnormal, "
        "%zu reference)",
        abnormal_intervals.size(), reference_intervals.size()));
  }

  std::vector<ValidatedFeature> validated(report->after_leap.size());
  const size_t executed =
      ParallelFor(pool_.get(), report->after_leap.size(), [&](size_t i) {
    ValidatedFeature& v = validated[i];
    v.feature = report->after_leap[i];
    v.annotated_reward = v.feature.reward();
    v.feature.entropy = ComputeEntropyDistance(abnormal_pool[i], reference_pool[i]);
    v.validated_reward = v.feature.entropy.distance;
    v.kept = v.validated_reward >= options_.validation_min_reward;
  }, cancel);
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("deadline exceeded during validation re-ranking (%zu/%zu "
                  "features re-evaluated)",
                  executed, report->after_leap.size()));
  }
  for (ValidatedFeature& v : validated) {
    if (v.kept) report->after_validation.push_back(v.feature);
    report->validation.push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace exstream
