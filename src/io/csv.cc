#include "io/csv.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace exstream {

namespace {

// Splits one CSV line honoring double-quoted fields with "" escapes.
Result<std::vector<std::string>> SplitCsvLine(std::string_view line, char delimiter,
                                              size_t line_no) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (in_quotes) {
    return Status::ParseError(StrFormat("line %zu: unterminated quote", line_no));
  }
  fields.push_back(std::move(current));
  return fields;
}

// Quotes a field if it contains the delimiter, quotes, or newlines.
std::string QuoteField(const std::string& field, char delimiter) {
  if (field.find(delimiter) == std::string::npos &&
      field.find('"') == std::string::npos &&
      field.find('\n') == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Result<Value> ParseField(const std::string& field, ValueType type, size_t line_no,
                         const std::string& attr) {
  char* end = nullptr;
  switch (type) {
    case ValueType::kInt64: {
      const long long v = strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::ParseError(StrFormat("line %zu: attribute '%s' expects an "
                                            "integer, got '%s'",
                                            line_no, attr.c_str(), field.c_str()));
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      const double v = strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::ParseError(StrFormat("line %zu: attribute '%s' expects a "
                                            "number, got '%s'",
                                            line_no, attr.c_str(), field.c_str()));
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(field);
  }
  return Status::Internal("unknown value type");
}

// Parses one content line into an event. `unknown_type` distinguishes the
// one failure non-strict mode has always skipped silently.
Result<Event> ParseCsvRow(std::string_view line, const EventTypeRegistry& registry,
                          const CsvOptions& options, size_t line_no,
                          bool* unknown_type) {
  *unknown_type = false;
  EXSTREAM_ASSIGN_OR_RETURN(const std::vector<std::string> fields,
                            SplitCsvLine(line, options.delimiter, line_no));
  if (fields.size() < 2) {
    return Status::ParseError(
        StrFormat("line %zu: need at least eventType and timestamp", line_no));
  }
  auto type_id = registry.IdOf(fields[0]);
  if (!type_id.ok()) {
    *unknown_type = true;
    return Status::ParseError(StrFormat("line %zu: unknown event type '%s'",
                                        line_no, fields[0].c_str()));
  }
  const EventSchema& schema = registry.schema(*type_id);
  if (fields.size() != schema.num_attributes() + 2) {
    return Status::ParseError(StrFormat(
        "line %zu: type '%s' expects %zu attribute columns, got %zu", line_no,
        fields[0].c_str(), schema.num_attributes(), fields.size() - 2));
  }
  char* ts_end = nullptr;
  const long long ts = strtoll(fields[1].c_str(), &ts_end, 10);
  if (ts_end == fields[1].c_str() || *ts_end != '\0') {
    return Status::ParseError(
        StrFormat("line %zu: bad timestamp '%s'", line_no, fields[1].c_str()));
  }
  Event event;
  event.type = *type_id;
  event.ts = static_cast<Timestamp>(ts);
  event.values.reserve(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const AttributeDef& attr = schema.attributes()[a];
    EXSTREAM_ASSIGN_OR_RETURN(
        Value v, ParseField(fields[a + 2], attr.type, line_no, attr.name));
    event.values.push_back(std::move(v));
  }
  return event;
}

}  // namespace

Result<CsvParseResult> ParseCsvEvents(std::string_view text,
                                      const EventTypeRegistry& registry,
                                      const CsvOptions& options) {
  CsvParseResult result;
  size_t line_no = 0;
  size_t start = 0;
  bool header_pending = options.has_header;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (!TrimWhitespace(line).empty()) {
      if (header_pending) {
        header_pending = false;
      } else {
        bool unknown_type = false;
        Result<Event> event =
            ParseCsvRow(line, registry, options, line_no, &unknown_type);
        if (event.ok()) {
          result.events.push_back(std::move(*event));
        } else if (options.permissive) {
          ++result.rejected_rows;
          if (result.row_errors.size() < CsvParseResult::kMaxRowErrors) {
            result.row_errors.push_back({line_no, event.status()});
          }
        } else if (unknown_type && !options.strict) {
          ++result.skipped_rows;
        } else {
          return event.status();
        }
      }
    }
    if (end == text.size()) break;
  }
  return result;
}

Result<CsvParseResult> ReadCsvEventsFile(const std::string& path,
                                         const EventTypeRegistry& registry,
                                         const CsvOptions& options) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  fclose(f);
  return ParseCsvEvents(text, registry, options);
}

std::string FormatCsvEvents(const std::vector<Event>& events,
                            const EventTypeRegistry& registry,
                            const CsvOptions& options) {
  std::string out;
  for (const Event& e : events) {
    const EventSchema& schema = registry.schema(e.type);
    out += schema.name();
    out += options.delimiter;
    out += StrFormat("%lld", static_cast<long long>(e.ts));
    for (size_t a = 0; a < e.values.size(); ++a) {
      out += options.delimiter;
      out += QuoteField(e.values[a].ToString(), options.delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvEventsFile(const std::string& path, const std::vector<Event>& events,
                          const EventTypeRegistry& registry,
                          const CsvOptions& options) {
  const std::string data = FormatCsvEvents(events, registry, options);
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = fwrite(data.data(), 1, data.size(), f);
  fclose(f);
  if (written != data.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace exstream
