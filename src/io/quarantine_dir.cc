#include "io/quarantine_dir.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <sys/stat.h>

#include "common/logging.h"
#include "io/file_util.h"

namespace exstream {

namespace {
bool HasQuarantineSuffix(const std::string& name) {
  static constexpr std::string_view kSuffix = ".quarantine";
  return name.size() >= kSuffix.size() &&
         std::string_view(name).substr(name.size() - kSuffix.size()) == kSuffix;
}
}  // namespace

Result<size_t> EnforceQuarantineCap(const std::string& dir, size_t max_files) {
  EXSTREAM_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDirFiles(dir));
  std::vector<std::pair<int64_t, std::string>> aged;  // (mtime, name)
  for (const std::string& name : names) {
    if (!HasQuarantineSuffix(name)) continue;
    struct stat st;
    const std::string path = dir + "/" + name;
    const int64_t mtime =
        stat(path.c_str(), &st) == 0 ? static_cast<int64_t>(st.st_mtime) : 0;
    aged.emplace_back(mtime, name);
  }
  if (aged.size() <= max_files) return size_t{0};
  std::sort(aged.begin(), aged.end());
  const size_t to_evict = aged.size() - max_files;
  size_t evicted = 0;
  for (size_t i = 0; i < to_evict; ++i) {
    const std::string path = dir + "/" + aged[i].second;
    if (RemoveFileIfExists(path).ok()) {
      ++evicted;
      EXSTREAM_LOG(Warn) << "quarantine cap (" << max_files << "): evicted "
                         << path;
    }
  }
  return evicted;
}

}  // namespace exstream
