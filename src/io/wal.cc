#include "io/wal.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <unistd.h>

#include "archive/serialization.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/strings.h"
#include "io/file_util.h"

namespace exstream {

namespace {

constexpr uint32_t kWalMagic = 0x4558574C;  // "EXWL"
constexpr uint32_t kWalVersion = 1;
constexpr uint32_t kRecMagic = 0x57524543;  // "WREC"
constexpr size_t kSegmentHeaderBytes =
    sizeof(uint32_t) + sizeof(uint32_t) + sizeof(uint64_t);
// u32 magic + u64 first_seq + u32 count + u32 payload_len + u32 crc.
constexpr size_t kRecordHeaderBytes =
    sizeof(uint32_t) + sizeof(uint64_t) + 3 * sizeof(uint32_t);

template <typename T>
void PutPod(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
T GetPodAt(std::string_view data, size_t pos) {
  T v;
  std::memcpy(&v, data.data() + pos, sizeof(T));
  return v;
}

std::string SegmentPath(const std::string& dir, uint64_t base_seq) {
  return StrFormat("%s/wal-%020llu.seg", dir.c_str(),
                   static_cast<unsigned long long>(base_seq));
}

/// Parses "wal-<digits>.seg"; false for anything else.
bool ParseSegmentName(const std::string& name, uint64_t* base_seq) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".seg";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (std::string_view(name).substr(0, kPrefix.size()) != kPrefix) return false;
  if (std::string_view(name).substr(name.size() - kSuffix.size()) != kSuffix) {
    return false;
  }
  const std::string digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = strtoull(digits.c_str(), &end, 10);
  if (end == digits.c_str() || *end != '\0') return false;
  *base_seq = v;
  return true;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WalSegmentScanStats ScanWalSegmentBuffer(
    std::string_view data,
    const std::function<void(uint64_t first_seq, EventBatch batch)>& apply) {
  WalSegmentScanStats stats;
  if (data.size() < kSegmentHeaderBytes) {
    stats.torn = true;
    stats.torn_error = "segment shorter than its header";
    return stats;
  }
  if (GetPodAt<uint32_t>(data, 0) != kWalMagic) {
    stats.torn = true;
    stats.torn_error = "bad segment magic";
    return stats;
  }
  if (GetPodAt<uint32_t>(data, 4) != kWalVersion) {
    stats.torn = true;
    stats.torn_error = "unsupported segment version";
    return stats;
  }
  size_t pos = kSegmentHeaderBytes;
  while (pos < data.size()) {
    if (data.size() - pos < kRecordHeaderBytes) {
      stats.torn = true;
      stats.torn_error = StrFormat("torn record header at offset %zu", pos);
      return stats;
    }
    const uint32_t magic = GetPodAt<uint32_t>(data, pos);
    if (magic != kRecMagic) {
      stats.torn = true;
      stats.torn_error = StrFormat("bad record magic at offset %zu", pos);
      return stats;
    }
    const uint64_t first_seq = GetPodAt<uint64_t>(data, pos + 4);
    const uint32_t count = GetPodAt<uint32_t>(data, pos + 12);
    const uint32_t payload_len = GetPodAt<uint32_t>(data, pos + 16);
    const uint32_t stored_crc = GetPodAt<uint32_t>(data, pos + 20);
    if (data.size() - pos - kRecordHeaderBytes < payload_len) {
      stats.torn = true;
      stats.torn_error = StrFormat("torn record payload at offset %zu", pos);
      return stats;
    }
    const std::string_view payload =
        data.substr(pos + kRecordHeaderBytes, payload_len);
    if (Crc32(payload.data(), payload.size()) != stored_crc) {
      stats.torn = true;
      stats.torn_error = StrFormat("record checksum mismatch at offset %zu", pos);
      return stats;
    }
    Result<std::vector<Event>> events = DeserializeEvents(payload);
    if (!events.ok() || events->size() != count) {
      stats.torn = true;
      stats.torn_error = StrFormat(
          "record payload at offset %zu undecodable: %s", pos,
          events.ok() ? "event count mismatch" : events.status().ToString().c_str());
      return stats;
    }
    stats.events += events->size();
    ++stats.records;
    apply(first_seq, std::move(*events));
    pos += kRecordHeaderBytes + payload_len;
  }
  return stats;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(WalOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WAL directory must not be empty");
  }
  EXSTREAM_RETURN_NOT_OK(EnsureDir(options.dir));
  auto wal = std::unique_ptr<WriteAheadLog>(new WriteAheadLog(std::move(options)));
  EXSTREAM_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                            ListDirFiles(wal->options_.dir));
  for (const std::string& name : names) {
    uint64_t base = 0;
    if (ParseSegmentName(name, &base)) {
      wal->segments_.emplace_back(base, wal->options_.dir + "/" + name);
    }
  }
  std::sort(wal->segments_.begin(), wal->segments_.end());
  if (!wal->segments_.empty()) {
    // The next sequence number continues after the last intact record of the
    // last segment (a torn tail does not advance it — those events are gone).
    const auto& [base, path] = wal->segments_.back();
    wal->next_seq_ = base;
    EXSTREAM_ASSIGN_OR_RETURN(const std::string data, ReadFileToString(path));
    ScanWalSegmentBuffer(data, [&](uint64_t first_seq, EventBatch batch) {
      wal->next_seq_ = std::max(wal->next_seq_, first_seq + batch.size());
    });
  }
  wal->last_sync_ms_ = NowMs();
  if (wal->options_.fsync == WalFsyncPolicy::kInterval) {
    wal->flusher_ = std::thread([w = wal.get()] { w->FlusherLoop(); });
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_flusher_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(mu_);
  SyncLocked().ok();  // best effort on shutdown
  if (file_ != nullptr) {
    fclose(file_);
    file_ = nullptr;
  }
}

Status WriteAheadLog::RotateLocked(uint64_t base_seq) {
  if (file_ != nullptr) {
    switch (options_.fsync) {
      case WalFsyncPolicy::kNone:
        // OS writeback covers sealed segments too.
        fclose(file_);
        break;
      case WalFsyncPolicy::kInterval:
        // The sealed segment's fsync+close is owed to the flusher so rotation
        // doesn't stall the append path on a disk flush.
        fflush(file_);
        sealed_pending_.emplace_back(active_path_, file_);
        flusher_cv_.notify_all();
        break;
      case WalFsyncPolicy::kEveryBatch:
        EXSTREAM_RETURN_NOT_OK(SyncLocked());
        fclose(file_);
        break;
    }
    file_ = nullptr;
    ++stats_.rotations;
  }
  const std::string path = SegmentPath(options_.dir, base_seq);
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open WAL segment " + path);
  std::string header;
  PutPod<uint32_t>(&header, kWalMagic);
  PutPod<uint32_t>(&header, kWalVersion);
  PutPod<uint64_t>(&header, base_seq);
  if (fwrite(header.data(), 1, header.size(), f) != header.size()) {
    fclose(f);
    remove(path.c_str());
    return Status::IOError("cannot write WAL segment header to " + path);
  }
  file_ = f;
  active_path_ = path;
  active_base_seq_ = base_seq;
  active_bytes_ = header.size();
  // Rotating onto the same base (retry after a poisoned first record) rewrote
  // the file in place; don't register the segment twice.
  if (segments_.empty() || segments_.back().first != base_seq) {
    segments_.emplace_back(base_seq, path);
  }
  return Status::OK();
}

Status WriteAheadLog::Append(uint64_t first_seq, const EventBatch& events) {
  if (events.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (first_seq < next_seq_) {
    return Status::InvalidArgument(
        StrFormat("WAL sequence runs backwards: append at %llu, next is %llu",
                  static_cast<unsigned long long>(first_seq),
                  static_cast<unsigned long long>(next_seq_)));
  }

  // The record is written as header + payload, two fwrites, so the payload
  // is never copied into a contiguous frame.
  std::string payload = SerializeEvents(events);
  std::string header;
  header.reserve(kRecordHeaderBytes);
  PutPod<uint32_t>(&header, kRecMagic);
  PutPod<uint64_t>(&header, first_seq);
  PutPod<uint32_t>(&header, static_cast<uint32_t>(events.size()));
  PutPod<uint32_t>(&header, static_cast<uint32_t>(payload.size()));
  PutPod<uint32_t>(&header, Crc32(payload.data(), payload.size()));
  const size_t frame_size = header.size() + payload.size();

  if (file_ == nullptr || active_poisoned_) {
    // A poisoned segment has torn bytes at its tail; writing after them would
    // hide this record behind the tear. Start fresh — replay tolerates the
    // torn tail because the next segment's base closes the gap.
    EXSTREAM_RETURN_NOT_OK(RotateLocked(first_seq));
    active_poisoned_ = false;
  } else if (active_bytes_ + frame_size > options_.segment_bytes &&
             active_bytes_ > kSegmentHeaderBytes) {
    EXSTREAM_RETURN_NOT_OK(RotateLocked(first_seq));
  }

  size_t write_bytes = frame_size;
  bool injected_torn = false;
  if (auto fault = FaultInjector::Global().Intercept(FaultOp::kWrite, "wal-append",
                                                     active_path_)) {
    switch (fault->mode) {
      case FaultMode::kFailOpen:
      case FaultMode::kReset:
        ++stats_.append_failures;
        return Status::IOError("injected open failure writing " + active_path_);
      case FaultMode::kNoSpace:
        ++stats_.append_failures;
        return Status::IOError("injected ENOSPC writing " + active_path_);
      case FaultMode::kTruncate:
        // A torn append: only a prefix of the frame reaches the segment, as
        // if the process died mid-write. The record is unrecoverable, so the
        // append reports failure after poisoning the tail.
        write_bytes = std::min(write_bytes, fault->truncate_to);
        injected_torn = true;
        break;
      case FaultMode::kCorruptBytes: {
        const size_t off = fault->corrupt_offset == SIZE_MAX
                               ? frame_size / 2
                               : std::min(fault->corrupt_offset, frame_size - 1);
        char* target = off < header.size() ? &header[off] : &payload[off - header.size()];
        *target = static_cast<char>(*target ^ 0x5A);
        break;
      }
      case FaultMode::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
        break;
    }
  }

  const size_t header_bytes = std::min(write_bytes, header.size());
  size_t written = fwrite(header.data(), 1, header_bytes, file_);
  if (written == header_bytes && write_bytes > header.size()) {
    written += fwrite(payload.data(), 1, write_bytes - header.size(), file_);
  }
  // A failed flush (e.g. ENOSPC) means some of the frame may be missing from
  // the file while later writes would land after the hole — corrupting the
  // segment mid-log. Treat it exactly like a torn write: poison the tail so
  // the next append rotates, and do not advance the sequence cursor.
  const bool flush_failed = fflush(file_) != 0;
  if (written != write_bytes || injected_torn || flush_failed) {
    if (written > 0 || flush_failed) active_poisoned_ = true;
    ++stats_.append_failures;
    return Status::IOError(
        StrFormat("torn WAL append to %s (%zu of %zu bytes%s)",
                  active_path_.c_str(), written, frame_size,
                  flush_failed ? ", flush failed" : ""));
  }
  active_bytes_ += frame_size;
  next_seq_ = first_seq + events.size();
  ++stats_.records_appended;
  stats_.events_appended += events.size();
  stats_.bytes_appended += frame_size;

  dirty_ = true;
  switch (options_.fsync) {
    case WalFsyncPolicy::kNone:
    case WalFsyncPolicy::kInterval:
      // kInterval group commit happens on the flusher thread (FlusherLoop),
      // never on the append path.
      break;
    case WalFsyncPolicy::kEveryBatch:
      EXSTREAM_RETURN_NOT_OK(SyncLocked());
      break;
  }
  return Status::OK();
}

Status WriteAheadLog::SyncLocked() {
  Status status = Status::OK();
  for (auto& [path, f] : sealed_pending_) {
    ++stats_.syncs;
    if (fflush(f) != 0 || fsync(fileno(f)) != 0) {
      ++stats_.sync_failures;
      status = Status::IOError("cannot fsync WAL segment " + path);
    }
    fclose(f);
  }
  sealed_pending_.clear();
  if (file_ != nullptr) {
    ++stats_.syncs;
    if (fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
      ++stats_.sync_failures;
      return Status::IOError("cannot fsync WAL segment " + active_path_);
    }
  }
  last_sync_ms_ = NowMs();
  dirty_ = false;
  return status;
}

void WriteAheadLog::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_flusher_) {
    flusher_cv_.wait_for(lock,
                         std::chrono::milliseconds(options_.fsync_interval_ms));
    if (stop_flusher_) break;
    if (!dirty_ && sealed_pending_.empty()) continue;
    // Snapshot the work, then drop the lock for the disk flush itself: an
    // fsync takes milliseconds and must not hold up Append. The snapshotted
    // FILE*s stay valid because every other closer defers to the flusher
    // while flusher_inflight_ is set: the sealed handles' ownership moves
    // out of sealed_pending_ here, Sync()/TruncateThrough wait for the pass
    // to finish before closing anything (the active file may rotate into
    // sealed_pending_ mid-pass, so "skip the active" is not enough), and
    // the destructor joins this thread first.
    std::vector<std::pair<std::string, FILE*>> sealed =
        std::move(sealed_pending_);
    sealed_pending_.clear();
    FILE* active = file_;
    const std::string active_path = active_path_;
    dirty_ = false;
    flusher_inflight_ = true;
    lock.unlock();
    uint64_t syncs = 0;
    uint64_t failures = 0;
    for (auto& [path, f] : sealed) {
      ++syncs;
      if (fflush(f) != 0 || fsync(fileno(f)) != 0) {
        ++failures;
        EXSTREAM_LOG(Warn) << "WAL flusher: cannot fsync sealed segment "
                           << path;
      }
      fclose(f);
    }
    if (active != nullptr) {
      ++syncs;
      // Append fflushes after every write, so the page cache already holds
      // everything acknowledged before the snapshot.
      if (fsync(fileno(active)) != 0) {
        ++failures;
        EXSTREAM_LOG(Warn) << "WAL flusher: cannot fsync " << active_path;
      }
    }
    lock.lock();
    flusher_inflight_ = false;
    flusher_done_cv_.notify_all();
    stats_.syncs += syncs;
    stats_.sync_failures += failures;
    last_sync_ms_ = NowMs();
  }
}

Status WriteAheadLog::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  flusher_done_cv_.wait(lock, [&] { return !flusher_inflight_; });
  return SyncLocked();
}

void WriteAheadLog::SetTruncatePin(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  truncate_pin_ = seq;
}

void WriteAheadLog::ClearTruncatePin() {
  std::lock_guard<std::mutex> lock(mu_);
  truncate_pin_ = UINT64_MAX;
}

Result<size_t> WriteAheadLog::TruncateThrough(uint64_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  flusher_done_cv_.wait(lock, [&] { return !flusher_inflight_; });
  // The replication pin holds back segments a downstream parent has not yet
  // acknowledged: a checkpoint may cover sequence `seq` locally, but the
  // sender still needs the pinned tail on disk to serve a resume after a
  // crash on either side.
  seq = std::min(seq, truncate_pin_);
  size_t deleted = 0;
  // segments_[i] is disposable once a successor exists whose base covers
  // `seq`: every record in it then has sequence numbers < base(i+1) <= seq.
  while (segments_.size() >= 2 && segments_[1].first <= seq &&
         (file_ == nullptr || segments_[0].second != active_path_)) {
    // A segment being deleted no longer owes anyone an fsync: release its
    // pending flusher handle (if any) before unlinking.
    for (auto it = sealed_pending_.begin(); it != sealed_pending_.end(); ++it) {
      if (it->first == segments_[0].second) {
        fclose(it->second);
        sealed_pending_.erase(it);
        break;
      }
    }
    EXSTREAM_RETURN_NOT_OK(RemoveFileIfExists(segments_[0].second));
    segments_.erase(segments_.begin());
    ++deleted;
  }
  stats_.segments_deleted += deleted;
  return deleted;
}

WriteAheadLog::Stats WriteAheadLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<WalReplayStats> WriteAheadLog::Replay(
    const std::string& dir, uint64_t from_seq,
    const std::function<void(EventBatch batch)>& apply) {
  return ReplayWithSeq(dir, from_seq,
                       [&](uint64_t, EventBatch batch) { apply(std::move(batch)); });
}

Result<WalReplayStats> WriteAheadLog::ReplayWithSeq(
    const std::string& dir, uint64_t from_seq,
    const std::function<void(uint64_t first_seq, EventBatch batch)>& apply) {
  WalReplayStats stats;
  stats.next_seq = from_seq;
  EXSTREAM_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDirFiles(dir));
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t base = 0;
    if (ParseSegmentName(name, &base)) {
      segments.emplace_back(base, dir + "/" + name);
    }
  }
  std::sort(segments.begin(), segments.end());
  // Highest sequence number after any intact record, independent of from_seq:
  // used to prove a torn segment's discarded tail left no gap in the stream.
  uint64_t intact_end = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    EXSTREAM_ASSIGN_OR_RETURN(const std::string data,
                              ReadFileToString(segments[i].second));
    const WalSegmentScanStats scan = ScanWalSegmentBuffer(
        data, [&](uint64_t first_seq, EventBatch batch) {
          ++stats.records;
          const uint64_t end_seq = first_seq + batch.size();
          stats.next_seq = std::max(stats.next_seq, end_seq);
          intact_end = std::max(intact_end, end_seq);
          if (end_seq <= from_seq) {
            stats.events_skipped += batch.size();
            return;
          }
          uint64_t apply_seq = first_seq;
          if (first_seq < from_seq) {
            const size_t skip = static_cast<size_t>(from_seq - first_seq);
            stats.events_skipped += skip;
            batch.erase(batch.begin(), batch.begin() + skip);
            apply_seq = from_seq;
          }
          stats.events_applied += batch.size();
          apply(apply_seq, std::move(batch));
        });
    ++stats.segments;
    if (scan.torn) {
      // A torn frame is the expected shape of a crash mid-append: the
      // incomplete record was never acknowledged, so discarding it is safe as
      // long as the stream has no gap. That holds for the final segment
      // (nothing follows) and for an earlier one whose successor's base picks
      // up exactly where the intact records end (the post-crash writer
      // rotated to a fresh segment at the unacknowledged sequence number).
      const bool last = i + 1 == segments.size();
      if (last || segments[i + 1].first == intact_end) {
        stats.torn_tail = true;
        EXSTREAM_LOG(Warn) << "WAL replay: torn record in " << segments[i].second
                           << " (" << scan.torn_error << "), discarded";
      } else {
        return Status::Corruption(
            StrFormat("WAL segment %s is corrupt mid-log (%s): replay would "
                      "skip a gap in the stream",
                      segments[i].second.c_str(), scan.torn_error.c_str()));
      }
    }
  }
  return stats;
}

}  // namespace exstream
