// Small filesystem helpers shared by the WAL, checkpoints, and quarantine
// housekeeping. All write paths honor the global FaultInjector so durability
// tests can inject torn writes, ENOSPC, and corruption at the same seam the
// spill writers use.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace exstream {

/// \brief Creates `dir` (one level; parents must exist). OK if it already
/// exists as a directory.
Status EnsureDir(const std::string& dir);

/// \brief Writes `data` to `path` atomically: temp file + fsync + rename.
/// Honors injected write faults (same contract as the spill writers: a
/// kTruncate fault publishes only a prefix under the final name, simulating
/// post-rename media loss).
Status WriteFileAtomic(const std::string& path, std::string data);

/// \brief Reads the raw bytes of `path`, honoring injected read faults.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Non-recursive listing of regular-file names (not paths) in `dir`,
/// sorted lexicographically. Missing directory is OK (empty listing).
Result<std::vector<std::string>> ListDirFiles(const std::string& dir);

/// \brief Deletes a file; OK if it does not exist.
Status RemoveFileIfExists(const std::string& path);

}  // namespace exstream
