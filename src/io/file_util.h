// Small filesystem helpers shared by the WAL, checkpoints, and quarantine
// housekeeping. All write paths honor the global FaultInjector so durability
// tests can inject torn writes, ENOSPC, and corruption at the same seam the
// spill writers use.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace exstream {

/// \brief Creates `dir` (one level; parents must exist). OK if it already
/// exists as a directory.
Status EnsureDir(const std::string& dir);

/// \brief Writes `data` to `path` atomically: temp file + fsync + rename.
/// Honors injected write faults (same contract as the spill writers: a
/// kTruncate fault publishes only a prefix under the final name, simulating
/// post-rename media loss).
Status WriteFileAtomic(const std::string& path, std::string data);

/// \brief Reads the raw bytes of `path`, honoring injected read faults.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Non-recursive listing of regular-file names (not paths) in `dir`,
/// sorted lexicographically. Missing directory is OK (empty listing).
Result<std::vector<std::string>> ListDirFiles(const std::string& dir);

/// \brief Deletes a file; OK if it does not exist.
Status RemoveFileIfExists(const std::string& path);

/// \brief Read-only memory mapping of a whole file — the archive's cold-read
/// path. Decoders parse straight out of the kernel page cache through
/// `view()` instead of a heap copy of the file bytes.
///
/// The mapping is MAP_PRIVATE with PROT_READ|PROT_WRITE so the fault
/// injector's kCorruptBytes mode can flip a byte in this process's COW copy
/// of the page — the file on disk is never touched. Open() makes exactly one
/// FaultInjector::Intercept call (op kRead, site "mmap-read"); kTruncate
/// shortens the visible view, kFailOpen/kReset fail the open.
///
/// Move-only; the destructor unmaps. An empty file maps to an empty view
/// (mmap of length 0 is not attempted).
class MmapFile {
 public:
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The mapped bytes (possibly shortened by an injected truncation).
  std::string_view view() const { return {data_, size_}; }

 private:
  char* data_ = nullptr;   ///< mmap base; nullptr for an empty file
  size_t size_ = 0;        ///< visible bytes (<= map_size_ under kTruncate)
  size_t map_size_ = 0;    ///< bytes to munmap
};

}  // namespace exstream
