// CSV ingestion and export of event streams.
//
// Row format:  eventType,timestamp,<attribute values in schema order>
//
// This is the practical data-source adapter (Fig. 18's gateway): users export
// their monitoring logs (Hadoop events, Ganglia metrics, sensor readings) as
// CSV and replay them through the engine and archive. Values are parsed
// according to the declared schema types; string values may be double-quoted
// with "" escaping.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"
#include "event/registry.h"
#include "event/stream.h"

namespace exstream {

struct CsvOptions {
  char delimiter = ',';
  /// Skip the first non-empty line.
  bool has_header = false;
  /// Reject rows whose type is not registered (otherwise they are skipped
  /// and counted).
  bool strict = true;
  /// \brief Keep parsing past malformed rows (wrong arity, unparsable
  /// numbers, bad timestamps, unknown types): each bad row is counted in
  /// `rejected_rows` and its error recorded in `row_errors`, instead of the
  /// first one failing the whole parse. Overrides `strict`.
  bool permissive = false;
};

/// \brief Result of a parse: the events plus per-row diagnostics.
struct CsvParseResult {
  /// One malformed row's diagnosis (permissive mode).
  struct RowError {
    size_t line_no = 0;
    Status status;
  };

  std::vector<Event> events;
  size_t skipped_rows = 0;   ///< unknown-type rows skipped in non-strict mode
  size_t rejected_rows = 0;  ///< malformed rows dropped in permissive mode
  /// Per-row errors behind `rejected_rows`, capped at kMaxRowErrors so a
  /// wholly garbage file cannot balloon the result.
  std::vector<RowError> row_errors;

  static constexpr size_t kMaxRowErrors = 100;
};

/// \brief Parses CSV text into events, validating against the registry.
Result<CsvParseResult> ParseCsvEvents(std::string_view text,
                                      const EventTypeRegistry& registry,
                                      const CsvOptions& options = {});

/// \brief Reads and parses a CSV file.
Result<CsvParseResult> ReadCsvEventsFile(const std::string& path,
                                         const EventTypeRegistry& registry,
                                         const CsvOptions& options = {});

/// \brief Serializes events to CSV (round-trips through ParseCsvEvents).
std::string FormatCsvEvents(const std::vector<Event>& events,
                            const EventTypeRegistry& registry,
                            const CsvOptions& options = {});

/// \brief Writes events to a CSV file.
Status WriteCsvEventsFile(const std::string& path, const std::vector<Event>& events,
                          const EventTypeRegistry& registry,
                          const CsvOptions& options = {});

}  // namespace exstream
