// Quarantine-directory housekeeping: *.quarantine files preserve unreadable
// spill chunks and rejected-event logs for offline triage, but an unattended
// deployment must not let them grow without bound. EnforceQuarantineCap keeps
// the newest `max_files` and deletes the rest, oldest first.

#pragma once

#include <string>

#include "common/result.h"

namespace exstream {

/// \brief Deletes the oldest `*.quarantine` files in `dir` until at most
/// `max_files` remain. Age is by mtime (name breaks ties, so eviction order
/// is deterministic for same-second files). Returns the number evicted; a
/// missing directory evicts nothing.
Result<size_t> EnforceQuarantineCap(const std::string& dir, size_t max_files);

}  // namespace exstream
