// Write-ahead log for the ingest path (the durability half of the Fig. 1c
// front end).
//
// Accepted event batches are appended — before they reach the CEP engine or
// the archive — as CRC32-framed records in append-only segment files. After a
// crash, XStreamSystem::Recover restores the latest checkpoint and replays
// the WAL tail, making recovered match tables and archive contents
// bit-identical to an uncrashed run (wal_recovery_test).
//
// On-disk layout (`<dir>/wal-<base_seq, zero-padded>.seg`):
//
//   segment header:  u32 magic "EXWL", u32 version (1), u64 base_seq
//   record:          u32 magic "WREC", u64 first_seq, u32 event count,
//                    u32 payload length, u32 CRC32(payload), payload
//
// The payload is SerializeEvents(batch) — the archive's own v3 columnar
// codec (with its v2 row fallback for mixed-type batches), so WAL bytes and
// spill bytes share one deserializer. A torn final record (crash mid-append)
// is detected by the frame bounds/CRC and tolerated; corruption before the
// tail is reported as data loss.
//
// Group-commit fsync policies trade durability for throughput:
//   kNone       — rely on OS writeback (fastest; loses the page cache on
//                 power failure, nothing on process crash).
//   kInterval   — a background flusher thread fsyncs every fsync_interval_ms
//                 (bounded loss window). The fsync happens off the append
//                 path — a disk flush takes milliseconds and must not stall
//                 producers — so Append never blocks on the disk. Flusher
//                 fsync failures surface through stats().sync_failures and
//                 the log, not through an Append status.
//   kEveryBatch — fsync per append (no loss window; slowest).
//
// One writer thread; Append/Sync/TruncateThrough are mutually serialized.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "event/event.h"

namespace exstream {

enum class WalFsyncPolicy { kNone, kInterval, kEveryBatch };

struct WalOptions {
  std::string dir;
  /// Rotation threshold: a segment that has grown past this starts a new one.
  size_t segment_bytes = 4u << 20;
  WalFsyncPolicy fsync = WalFsyncPolicy::kInterval;
  /// Group-commit window for kInterval.
  int64_t fsync_interval_ms = 50;
};

/// \brief Outcome of scanning one segment buffer (also the fuzzer surface).
struct WalSegmentScanStats {
  size_t records = 0;
  size_t events = 0;
  bool torn = false;        ///< scan stopped at an incomplete/corrupt frame
  std::string torn_error;   ///< what stopped it (empty when !torn)
};

/// \brief Scans the records of one segment buffer (header included), calling
/// `apply(first_seq, batch)` for each intact record. Stops at the first torn
/// or corrupt frame — everything before it is trusted (CRC-verified),
/// everything after is not.
WalSegmentScanStats ScanWalSegmentBuffer(
    std::string_view data,
    const std::function<void(uint64_t first_seq, EventBatch batch)>& apply);

/// \brief Whole-log replay statistics.
struct WalReplayStats {
  size_t segments = 0;
  size_t records = 0;
  size_t events_applied = 0;
  size_t events_skipped = 0;  ///< already covered by the checkpoint
  uint64_t next_seq = 0;      ///< first sequence number after the replayed tail
  bool torn_tail = false;     ///< a torn record (crash mid-append) was
                              ///< discarded; the replayed stream has no gap
};

/// \brief The append-only event-batch log.
class WriteAheadLog {
 public:
  /// Opens (creating if needed) the log directory. Existing segments are
  /// scanned to find the next sequence number; new appends always start a
  /// fresh segment (old segments are never rewritten).
  static Result<std::unique_ptr<WriteAheadLog>> Open(WalOptions options);

  ~WriteAheadLog();

  /// \brief Appends one batch as a single record. `first_seq` is the global
  /// sequence number of batch[0]; it must not run backwards. Honors injected
  /// write faults (ENOSPC, torn writes) via the global FaultInjector.
  Status Append(uint64_t first_seq, const EventBatch& events);

  /// Forces an fsync of the active segment (and any sealed segments still
  /// awaiting their background fsync) regardless of policy.
  Status Sync();

  /// \brief Deletes closed segments whose records all have seq < `seq`
  /// (i.e. are fully covered by a checkpoint). The active segment survives,
  /// and so does anything at or past the replication pin (SetTruncatePin).
  /// Returns the number of segments deleted.
  Result<size_t> TruncateThrough(uint64_t seq);

  /// \brief Replication pin: segments containing records with seq >= `seq`
  /// survive TruncateThrough even when a checkpoint covers them, so a
  /// downstream parent that has not acknowledged them can still be served a
  /// resume from this log after a crash. UINT64_MAX (the initial state after
  /// ClearTruncatePin) pins nothing.
  void SetTruncatePin(uint64_t seq);
  void ClearTruncatePin();

  /// \brief Replays every record with events at seq >= `from_seq`, in order.
  /// Records partially below `from_seq` are sliced. A torn tail on the final
  /// segment is tolerated; a torn/corrupt frame on an earlier segment is a
  /// Corruption error (there would be a gap in the replayed stream).
  static Result<WalReplayStats> Replay(
      const std::string& dir, uint64_t from_seq,
      const std::function<void(EventBatch batch)>& apply);

  /// Same, but the callback also receives the sequence number of batch[0]
  /// (after any slicing) — recovery paths that rebuild replication state need
  /// to know where each replayed batch sits in the global stream.
  static Result<WalReplayStats> ReplayWithSeq(
      const std::string& dir, uint64_t from_seq,
      const std::function<void(uint64_t first_seq, EventBatch batch)>& apply);

  /// First unused sequence number, per the segment scan at Open time.
  uint64_t next_seq() const { return next_seq_; }

  struct Stats {
    uint64_t records_appended = 0;
    uint64_t events_appended = 0;
    uint64_t bytes_appended = 0;
    uint64_t append_failures = 0;
    uint64_t syncs = 0;
    uint64_t sync_failures = 0;
    uint64_t rotations = 0;
    uint64_t segments_deleted = 0;
  };
  Stats stats() const;

  const std::string& dir() const { return options_.dir; }

 private:
  explicit WriteAheadLog(WalOptions options) : options_(std::move(options)) {}

  Status RotateLocked(uint64_t base_seq);
  Status SyncLocked();
  void FlusherLoop();

  WalOptions options_;
  mutable std::mutex mu_;
  FILE* file_ = nullptr;            // active segment (null until first append)
  /// A torn/short append left garbage at the active segment's tail; the next
  /// append rotates to a fresh segment instead of writing after it.
  bool active_poisoned_ = false;
  std::string active_path_;
  uint64_t active_base_seq_ = 0;
  size_t active_bytes_ = 0;
  int64_t last_sync_ms_ = 0;        // steady-clock ms of the last fsync
  uint64_t next_seq_ = 0;
  /// TruncateThrough clamp (SetTruncatePin); UINT64_MAX pins nothing.
  uint64_t truncate_pin_ = UINT64_MAX;
  /// Closed + active segments, as (base_seq, path), ascending.
  std::vector<std::pair<uint64_t, std::string>> segments_;
  Stats stats_;
  /// Bytes appended since the last fsync (tells the flusher to skip idle
  /// intervals).
  bool dirty_ = false;
  /// Sealed segments whose fsync+close is owed to the flusher (kInterval
  /// rotation does not pay for the old segment's fsync inline).
  std::vector<std::pair<std::string, FILE*>> sealed_pending_;
  /// Group-commit flusher (kInterval only; see FlusherLoop).
  std::thread flusher_;
  std::condition_variable flusher_cv_;
  bool stop_flusher_ = false;
  /// True while FlusherLoop is fsyncing snapshotted FILE*s with mu_
  /// released. Sync()/TruncateThrough wait for the pass to finish before
  /// closing any handle, so the flusher never touches a closed FILE*.
  bool flusher_inflight_ = false;
  std::condition_variable flusher_done_cv_;
};

}  // namespace exstream
