#include "io/file_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/fault_injection.h"
#include "common/strings.h"

namespace exstream {

Status EnsureDir(const std::string& dir) {
  if (mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    struct stat st;
    if (stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) return Status::OK();
    return Status::IOError(dir + " exists but is not a directory");
  }
  return Status::IOError(
      StrFormat("cannot create directory %s: %s", dir.c_str(), strerror(errno)));
}

Status WriteFileAtomic(const std::string& path, std::string data) {
  size_t write_bytes = data.size();
  if (auto fault =
          FaultInjector::Global().Intercept(FaultOp::kWrite, "file-write", path)) {
    switch (fault->mode) {
      case FaultMode::kFailOpen:
      case FaultMode::kReset:
        return Status::IOError("injected open failure writing " + path);
      case FaultMode::kNoSpace:
        return Status::IOError("injected ENOSPC writing " + path);
      case FaultMode::kTruncate:
        write_bytes = std::min(write_bytes, fault->truncate_to);
        break;
      case FaultMode::kCorruptBytes: {
        const size_t off = fault->corrupt_offset == SIZE_MAX
                               ? data.size() / 2
                               : std::min(fault->corrupt_offset, data.size() - 1);
        if (!data.empty()) data[off] = static_cast<char>(data[off] ^ 0x5A);
        break;
      }
      case FaultMode::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
        break;
    }
  }

  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp);
  const size_t written = fwrite(data.data(), 1, write_bytes, f);
  if (written != write_bytes) {
    fclose(f);
    remove(tmp.c_str());
    return Status::IOError(StrFormat("short write to %s (%zu of %zu bytes)",
                                     tmp.c_str(), written, write_bytes));
  }
  if (fflush(f) != 0 || fsync(fileno(f)) != 0) {
    fclose(f);
    remove(tmp.c_str());
    return Status::IOError("cannot fsync " + tmp);
  }
  fclose(f);
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  // The rename itself is only durable once the directory entry is on disk;
  // without this a post-rename crash can resurrect the old file, which would
  // break sync-then-ack consumers (the replication ledger ACKs only after
  // this returns). Best-effort: some filesystems refuse directory fsync.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dir_fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    fsync(dir_fd);
    close(dir_fd);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  auto fault =
      FaultInjector::Global().Intercept(FaultOp::kRead, "file-read", path);
  if (fault.has_value()) {
    if (fault->mode == FaultMode::kFailOpen || fault->mode == FaultMode::kReset) {
      return Status::IOError("injected open failure reading " + path);
    }
    if (fault->mode == FaultMode::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
    }
  }
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  fclose(f);
  if (fault.has_value()) {
    if (fault->mode == FaultMode::kTruncate) {
      data.resize(std::min(data.size(), fault->truncate_to));
    } else if (fault->mode == FaultMode::kCorruptBytes && !data.empty()) {
      const size_t off = fault->corrupt_offset == SIZE_MAX
                             ? data.size() / 2
                             : std::min(fault->corrupt_offset, data.size() - 1);
      data[off] = static_cast<char>(data[off] ^ 0x5A);
    }
  }
  return data;
}

Result<std::vector<std::string>> ListDirFiles(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return names;
    return Status::IOError(
        StrFormat("cannot open directory %s: %s", dir.c_str(), strerror(errno)));
  }
  while (struct dirent* ent = readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    const std::string path = dir + "/" + name;
    if (stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    names.push_back(name);
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFileIfExists(const std::string& path) {
  if (auto fault = FaultInjector::Global().Intercept(FaultOp::kDelete,
                                                     "file-delete", path)) {
    if (fault->mode == FaultMode::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
    } else {
      // Every non-delay mode behaves as "the unlink failed" — a deletion has
      // no bytes to truncate or corrupt.
      return Status::IOError("injected delete failure for " + path);
    }
  }
  if (remove(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Status::IOError(
      StrFormat("cannot remove %s: %s", path.c_str(), strerror(errno)));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) munmap(data_, map_size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), map_size_(other.map_size_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) munmap(data_, map_size_);
    data_ = other.data_;
    size_ = other.size_;
    map_size_ = other.map_size_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.map_size_ = 0;
  }
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const auto fault =
      FaultInjector::Global().Intercept(FaultOp::kRead, "mmap-read", path);
  if (fault.has_value()) {
    if (fault->mode == FaultMode::kFailOpen || fault->mode == FaultMode::kReset) {
      return Status::IOError("injected open failure mapping " + path);
    }
    if (fault->mode == FaultMode::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
    }
  }

  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("cannot open %s: %s", path.c_str(), strerror(errno)));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    const int err = errno;
    close(fd);
    return Status::IOError(
        StrFormat("cannot stat %s: %s", path.c_str(), strerror(err)));
  }
  MmapFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  out.map_size_ = out.size_;
  if (out.size_ > 0) {
    // MAP_PRIVATE + PROT_WRITE: injected corruption flips a byte in this
    // process's COW copy only. The file descriptor can close right away —
    // the mapping keeps the pages alive.
    void* p = mmap(nullptr, out.map_size_, PROT_READ | PROT_WRITE, MAP_PRIVATE,
                   fd, 0);
    if (p == MAP_FAILED) {
      const int err = errno;
      close(fd);
      return Status::IOError(
          StrFormat("cannot mmap %s: %s", path.c_str(), strerror(err)));
    }
    out.data_ = static_cast<char*>(p);
  }
  close(fd);

  if (fault.has_value() && out.size_ > 0) {
    if (fault->mode == FaultMode::kTruncate) {
      out.size_ = std::min(out.size_, fault->truncate_to);
    } else if (fault->mode == FaultMode::kCorruptBytes) {
      const size_t off = fault->corrupt_offset == SIZE_MAX
                             ? out.size_ / 2
                             : std::min(fault->corrupt_offset, out.size_ - 1);
      out.data_[off] = static_cast<char>(out.data_[off] ^ 0x5A);
    }
  }
  return out;
}

}  // namespace exstream
