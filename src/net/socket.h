// Thin POSIX TCP wrappers for the replication link (loopback or LAN).
//
// TcpSocket/TcpListener exist so the replication code above them never
// touches a raw fd, and so every socket operation passes through the global
// FaultInjector at a named site:
//
//   "repl-connect" (FaultOp::kConnect)  — connect() from the sender
//   "repl-send"    (FaultOp::kSend)     — every SendAll() on either side
//   "repl-recv"    (FaultOp::kRecv)     — every Recv() on either side
//
// The `path` passed to the injector is the peer label ("host:port"), so a
// plan's path_substring can target one link. Injected modes map to real
// network failures: kFailOpen = connect/send/recv error, kReset = peer reset
// (the fd is closed so the far end sees EOF/RST), kTruncate = the wire cuts
// out mid-frame (a prefix is delivered, then the fd closes), kCorruptBytes =
// a flipped bit in flight (exercises the frame CRC), kDelay = a slow link.
//
// Blocking I/O with poll()-based timeouts; SIGPIPE is avoided via
// MSG_NOSIGNAL. Sockets are move-only fd owners.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace exstream {

/// \brief A connected TCP stream (move-only fd owner).
class TcpSocket {
 public:
  TcpSocket() = default;
  ~TcpSocket() { Close(); }
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to host:port, waiting at most `timeout_ms`.
  static Result<TcpSocket> Connect(const std::string& host, uint16_t port,
                                   int timeout_ms);

  /// Writes all of `data` (looping over partial sends). An injected kReset /
  /// kTruncate closes the socket, so later calls fail fast on valid().
  Status SendAll(std::string_view data);

  /// Reads up to `len` bytes; returns 0 at orderly EOF. Waits at most
  /// `timeout_ms` for readability (-1 = block forever); a timeout is a
  /// DeadlineExceeded status (distinguishable from real link errors, so
  /// pollers can keep the connection).
  Result<size_t> Recv(char* buf, size_t len, int timeout_ms);

  void Close();
  bool valid() const { return fd_ >= 0; }

  /// Peer label ("host:port") used in error messages and injector paths.
  const std::string& peer() const { return peer_; }

 private:
  TcpSocket(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}
  friend class TcpListener;

  int fd_ = -1;
  std::string peer_;
};

/// \brief A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral port
  /// (read it back from port()).
  static Result<TcpListener> Listen(uint16_t port);

  /// Accepts one connection, waiting at most `timeout_ms` (-1 = forever).
  /// A timeout is a DeadlineExceeded status.
  Result<TcpSocket> Accept(int timeout_ms);

  uint16_t port() const { return port_; }
  void Close();
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace exstream
