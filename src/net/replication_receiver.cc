#include "net/replication_receiver.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "archive/serialization.h"
#include "common/logging.h"
#include "common/strings.h"
#include "xstream/system.h"
#include "xstream/tenant_hub.h"

namespace exstream {

/// One connection's state: the incremental decoder plus the identity the
/// HELLO established and the takeover epoch it holds.
struct ReplicationReceiver::Session {
  FrameDecoder decoder;
  bool hello_done = false;
  std::string tenant;
  std::string node;
  uint64_t epoch = 0;
};

struct ReplicationReceiver::SessionThread {
  std::thread thread;
  std::atomic<bool> done{false};
};

ReplicationReceiver::ReplicationReceiver(XStreamSystem* system,
                                         ReplicationReceiverOptions options)
    : hub_(nullptr),
      owned_hub_(std::make_unique<TenantHub>()),
      options_(std::move(options)) {
  hub_ = owned_hub_.get();
  const Status added = hub_->AddTenant(options_.tenant, system);
  if (!added.ok()) {
    EXSTREAM_LOG(Error) << "replication receiver tenant setup failed: "
                        << added.ToString();
  }
}

ReplicationReceiver::ReplicationReceiver(TenantHub* hub,
                                         ReplicationReceiverOptions options)
    : hub_(hub), options_(std::move(options)) {}

ReplicationReceiver::~ReplicationReceiver() { Stop(); }

Status ReplicationReceiver::EnsureStateLoaded() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_loaded_) return Status::OK();
  ledger_.Configure(options_.state_path, options_.tenant);
  EXSTREAM_RETURN_NOT_OK(ledger_.Load());
  for (const std::string& tenant : hub_->tenants()) {
    XStreamSystem* system = hub_->system(tenant);
    const auto reconciled = ledger_.ReconcileTenant(tenant, system->next_seq());
    if (reconciled.pending_landed) {
      EXSTREAM_LOG(Info) << "replication ledger: tenant '" << tenant
                         << "' pending apply landed before the crash";
    }
    // Losses disclosed before a restart live only in the ledger — the WAL
    // never saw the missing seqs. Re-disclose the delta so post-restart
    // Explains still report the incomplete coverage.
    const uint64_t disclosed = ledger_.TenantShedTotal(tenant);
    const uint64_t already = system->shed_events();
    if (disclosed > already) system->AddExternalShed(disclosed - already);
  }
  state_loaded_ = true;
  return Status::OK();
}

Status ReplicationReceiver::Start() {
  if (accept_thread_.joinable()) return Status::OK();
  EXSTREAM_RETURN_NOT_OK(EnsureStateLoaded());
  EXSTREAM_ASSIGN_OR_RETURN(listener_, TcpListener::Listen(options_.port));
  port_ = listener_.port();
  stop_.store(false);
  accept_thread_ = std::thread(&ReplicationReceiver::AcceptLoop, this);
  return Status::OK();
}

void ReplicationReceiver::Stop() {
  stop_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::unique_ptr<SessionThread>> drained;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    drained.swap(session_threads_);
  }
  for (auto& st : drained) {
    if (st->thread.joinable()) st->thread.join();
  }
}

uint64_t ReplicationReceiver::watermark() const {
  return ledger_.AggregateWatermark();
}

uint64_t ReplicationReceiver::watermark(const std::string& tenant,
                                        const std::string& child) const {
  return ledger_.Get(tenant, child).watermark();
}

ReplicationReceiver::Stats ReplicationReceiver::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.live_sessions = live_sessions_.load();
  return out;
}

std::vector<ReplicationReceiver::SessionInfo> ReplicationReceiver::sessions()
    const {
  std::vector<SessionInfo> out;
  for (const auto& [tenant, child, entry] : ledger_.Snapshot()) {
    SessionInfo info;
    info.tenant = tenant;
    info.child = child;
    info.watermark = entry.watermark();
    {
      std::lock_guard<std::mutex> lock(mu_);
      info.live = session_epochs_.count({tenant, child}) > 0;
    }
    out.push_back(std::move(info));
  }
  return out;
}

void ReplicationReceiver::ReapFinishedSessions() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  auto it = session_threads_.begin();
  while (it != session_threads_.end()) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = session_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplicationReceiver::AcceptLoop() {
  while (!stop_.load()) {
    ReapFinishedSessions();
    auto accepted = listener_.Accept(/*timeout_ms=*/100);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;
      if (stop_.load()) return;
      EXSTREAM_LOG(Warn) << "replication accept failed: "
                         << accepted.status().ToString();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.sessions;
      if (live_sessions_.load() >= options_.max_sessions) {
        ++stats_.sessions_rejected;
        continue;  // the socket closes as `accepted` goes out of scope
      }
    }
    live_sessions_.fetch_add(1);
    auto st = std::make_unique<SessionThread>();
    SessionThread* raw = st.get();
    {
      std::lock_guard<std::mutex> lock(threads_mu_);
      session_threads_.push_back(std::move(st));
    }
    raw->thread = std::thread(
        [this, raw](TcpSocket sock) {
          ServeSession(std::move(sock));
          live_sessions_.fetch_sub(1);
          raw->done.store(true);
        },
        std::move(*accepted));
  }
}

bool ReplicationReceiver::SessionCurrent(const Session* s) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = session_epochs_.find({s->tenant, s->node});
  return it != session_epochs_.end() && it->second == s->epoch;
}

void ReplicationReceiver::ReleaseSession(Session* s) {
  if (!s->hello_done) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = session_epochs_.find({s->tenant, s->node});
  // Only the current owner clears the identity — a superseded session going
  // away must not unregister its successor.
  if (it != session_epochs_.end() && it->second == s->epoch) {
    session_epochs_.erase(it);
  }
}

void ReplicationReceiver::ServeSession(TcpSocket sock) {
  Session s;
  char buf[1 << 16];
  std::string out;
  while (!stop_.load()) {
    bool session_over = false;
    for (;;) {
      auto frame = s.decoder.Next();
      if (!frame.ok()) {
        // Framing violations (bad magic/CRC/length) mean the stream cannot
        // be trusted past this point; drop the session and let the child
        // reconnect and resume from its watermark.
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.frame_errors;
        }
        EXSTREAM_LOG(Warn) << "replication frame error: "
                           << frame.status().ToString();
        session_over = true;
        break;
      }
      if (!frame->has_value()) break;
      out.clear();
      const Status handled = HandleFrame(&s, **frame, &out);
      if (!out.empty()) {
        const Status sent = sock.SendAll(out);
        if (!sent.ok()) {
          session_over = true;
          break;
        }
      }
      if (!handled.ok()) {
        EXSTREAM_LOG(Warn) << "replication session ended: "
                           << handled.ToString();
        session_over = true;
        break;
      }
      if (s.hello_done && !SessionCurrent(&s)) {
        EXSTREAM_LOG(Info) << "replication session for ('" << s.tenant << "', '"
                           << s.node << "') superseded by a newer HELLO";
        session_over = true;
        break;
      }
    }
    if (session_over) break;
    auto got = sock.Recv(buf, sizeof(buf), options_.io_timeout_ms);
    if (!got.ok()) {
      if (got.status().IsDeadlineExceeded()) {
        if (s.hello_done && !SessionCurrent(&s)) break;  // idle + superseded
        continue;  // idle link
      }
      break;  // reset / injected fault: session over, reap now
    }
    if (*got == 0) break;  // orderly EOF: reap promptly
    s.decoder.Feed(std::string_view(buf, *got));
  }
  ReleaseSession(&s);
}

Status ReplicationReceiver::HandleHello(Session* s, const Frame& frame,
                                        std::string* out) {
  if (s->hello_done) {
    // A live session re-HELLOing (duplicate, or a tenant switch attempt) is
    // a protocol violation; end this session only. State already applied for
    // the original identity is untouched.
    return Status::Corruption("duplicate HELLO on a live session for ('" +
                              s->tenant + "', '" + s->node + "')");
  }
  EXSTREAM_ASSIGN_OR_RETURN(const HelloFrame hello,
                            HelloFrame::Decode(frame.payload));
  HelloAckFrame ack;
  if (hello.protocol_version != kReplProtocolVersion) {
    ack.accepted = false;
    ack.message = StrFormat("protocol version %u unsupported (want %u)",
                            hello.protocol_version, kReplProtocolVersion);
  } else if (!hub_->HasTenant(hello.tenant)) {
    ack.accepted = false;
    ack.message = "unknown tenant '" + hello.tenant + "'";
  } else {
    ack.accepted = true;
    s->tenant = hello.tenant;
    s->node = hello.node_id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t& owner = session_epochs_[{s->tenant, s->node}];
      if (owner != 0) ++stats_.sessions_superseded;
      owner = s->epoch = next_epoch_++;
    }
    ack.resume_seq = ledger_.Open(s->tenant, s->node);
  }
  if (!ack.accepted) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hellos_rejected;
  }
  out->append(EncodeFrame(FrameType::kHelloAck, ack.Encode()));
  if (!ack.accepted) {
    return Status::InvalidArgument("session rejected: " + ack.message);
  }
  EXSTREAM_LOG(Info) << "replication session from ('" << hello.tenant << "', '"
                     << hello.node_id << "') (floor " << hello.floor_seq
                     << ", resume " << ack.resume_seq << ")";
  s->hello_done = true;
  return Status::OK();
}

Status ReplicationReceiver::HandleFrame(Session* s, const Frame& frame,
                                        std::string* out) {
  if (!s->hello_done && frame.type != FrameType::kHello) {
    return Status::Corruption("first frame must be HELLO, got " +
                              std::string(FrameTypeToString(frame.type)));
  }
  switch (frame.type) {
    case FrameType::kHello:
      return HandleHello(s, frame, out);
    case FrameType::kChunk: {
      EXSTREAM_ASSIGN_OR_RETURN(ChunkFrame chunk,
                                ChunkFrame::Decode(frame.payload));
      EXSTREAM_ASSIGN_OR_RETURN(std::vector<Event> events,
                                DeserializeEvents(chunk.events));
      if (events.size() != chunk.event_count) {
        return Status::Corruption(
            StrFormat("CHUNK %llu declares %u events, payload has %zu",
                      static_cast<unsigned long long>(chunk.chunk_id),
                      chunk.event_count, events.size()));
      }
      EXSTREAM_RETURN_NOT_OK(ApplyEvents(s, chunk.first_seq, std::move(events),
                                         /*is_chunk=*/true,
                                         frame.payload.size()));
      {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t& last = last_chunk_ids_[{s->tenant, s->node}];
        last = std::max(last, chunk.chunk_id);
      }
      return AppendAck(s, out);
    }
    case FrameType::kWalTail: {
      EXSTREAM_ASSIGN_OR_RETURN(WalTailFrame tail,
                                WalTailFrame::Decode(frame.payload));
      EXSTREAM_ASSIGN_OR_RETURN(std::vector<Event> events,
                                DeserializeEvents(tail.events));
      if (events.size() != tail.event_count) {
        return Status::Corruption(
            StrFormat("WALTAIL declares %u events, payload has %zu",
                      tail.event_count, events.size()));
      }
      EXSTREAM_RETURN_NOT_OK(ApplyEvents(s, tail.first_seq, std::move(events),
                                         /*is_chunk=*/false,
                                         frame.payload.size()));
      return AppendAck(s, out);
    }
    default:
      return Status::Corruption("unexpected " +
                                std::string(FrameTypeToString(frame.type)) +
                                " frame from child");
  }
}

namespace {
/// Releases the queue-share bytes on every exit from ApplyEvents.
struct QueueShareGuard {
  TenantHub* hub;
  const std::string* tenant;
  uint64_t bytes;
  bool active;
  ~QueueShareGuard() {
    if (active) hub->LeaveQueue(*tenant, bytes);
  }
};
}  // namespace

Status ReplicationReceiver::ApplyEvents(Session* s, uint64_t first_seq,
                                        std::vector<Event> events,
                                        bool is_chunk, size_t wire_bytes) {
  XStreamSystem* system = hub_->system(s->tenant);
  if (system == nullptr) {
    return Status::Internal("tenant '" + s->tenant + "' vanished mid-session");
  }
  const uint64_t end_seq = first_seq + events.size();
  // Queue-share admission covers the whole wait for the apply lock: it is
  // the bound on bytes a tenant's fan-in may pile up against its own applies.
  const bool queue_ok = hub_->TryEnterQueue(s->tenant, wire_bytes);
  QueueShareGuard queue_guard{hub_, &s->tenant, wire_bytes, queue_ok};
  auto apply_lock = hub_->LockApply(s->tenant);
  uint64_t wm = ledger_.Get(s->tenant, s->node).watermark();
  if (first_seq > wm) {
    // A seq jump can only mean the child shed this range during an outage
    // (the sender never skips otherwise). Record the permanent loss so this
    // tenant's Explains disclose it, persisted so the watermark arithmetic
    // survives a parent restart.
    const uint64_t gap = first_seq - wm;
    EXSTREAM_RETURN_NOT_OK(ledger_.AddGap(s->tenant, s->node, gap));
    system->AddExternalShed(gap);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.gap_events += gap;
    }
    EXSTREAM_LOG(Warn) << "replication gap: " << gap
                       << " events shed by child ('" << s->tenant << "', '"
                       << s->node << "') (seq " << wm << ".." << first_seq
                       << ")";
    wm = first_seq;
  }
  if (end_seq <= wm) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.events_deduped += events.size();
    return Status::OK();  // wholly below the watermark: a retransmit
  }
  const size_t skip = static_cast<size_t>(wm - first_seq);
  if (skip > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.events_deduped += skip;
  }
  if (skip > 0) {
    events.erase(events.begin(), events.begin() + static_cast<ptrdiff_t>(skip));
  }
  const size_t fresh = events.size();
  if (!queue_ok || !hub_->TryChargeQuota(s->tenant, wire_bytes)) {
    // Over quota: the parent sheds the frame but still advances the
    // watermark and ACKs it — the child must not retry a frame the parent
    // has chosen to drop. Disclosed only through this tenant's reports.
    EXSTREAM_RETURN_NOT_OK(ledger_.AddQuotaShed(s->tenant, s->node, fresh));
    system->AddExternalShed(fresh);
    hub_->NoteQuotaShed(s->tenant, fresh, /*queue_share=*/!queue_ok);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.quota_shed_events += fresh;
    }
    EXSTREAM_LOG(Warn) << "replication quota shed: " << fresh
                       << " events from ('" << s->tenant << "', '" << s->node
                       << "')";
    return Status::OK();
  }
  // Sync-then-ack step 1: durably record the in-flight apply before any of
  // its events reach the system, so a crash in between reconciles exactly.
  EXSTREAM_RETURN_NOT_OK(ledger_.BeginPending(s->tenant, s->node, fresh));
  // Through the front door: the tenant's guard/WAL/engine/archive see the
  // identical batch stream its single-node system would, in the same order.
  system->OnEventBatch(std::move(events));
  ledger_.MarkApplied(s->tenant, s->node, fresh);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.events_applied += fresh;
    if (is_chunk) {
      ++stats_.chunks_applied;
    } else {
      ++stats_.tail_frames_applied;
    }
  }
  return Status::OK();
}

Status ReplicationReceiver::AppendAck(Session* s, std::string* out) {
  // The ACK is a durability promise: fsync the tenant's WAL, then durably
  // rewrite the ledger (sync-then-ack), and only then let the ACK leave. A
  // failure at either step ends the session un-acked; the child retransmits
  // and the watermark dedupes.
  if (options_.sync_wal_before_ack) {
    XStreamSystem* system = hub_->system(s->tenant);
    if (system != nullptr) EXSTREAM_RETURN_NOT_OK(system->SyncWal());
  }
  EXSTREAM_RETURN_NOT_OK(ledger_.CommitDurable());
  AckFrame ack;
  ack.ack_seq = ledger_.Get(s->tenant, s->node).watermark();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ack.chunk_id = last_chunk_ids_[{s->tenant, s->node}];
    ++stats_.acks_sent;
  }
  out->append(EncodeFrame(FrameType::kAck, ack.Encode()));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SessionDriver

ReplicationReceiver::SessionDriver::SessionDriver(ReplicationReceiver* receiver)
    : receiver_(receiver), session_(std::make_unique<Session>()) {
  status_ = receiver_->EnsureStateLoaded();
  std::lock_guard<std::mutex> lock(receiver_->mu_);
  ++receiver_->stats_.sessions;
}

ReplicationReceiver::SessionDriver::~SessionDriver() {
  receiver_->ReleaseSession(session_.get());
}

Status ReplicationReceiver::SessionDriver::Feed(std::string_view bytes) {
  if (!status_.ok()) return status_;
  session_->decoder.Feed(bytes);
  for (;;) {
    auto frame = session_->decoder.Next();
    if (!frame.ok()) {
      {
        std::lock_guard<std::mutex> lock(receiver_->mu_);
        ++receiver_->stats_.frame_errors;
      }
      status_ = frame.status();
      return status_;
    }
    if (!frame->has_value()) return Status::OK();
    const Status handled = receiver_->HandleFrame(session_.get(), **frame, &out_);
    if (!handled.ok()) {
      status_ = handled;
      return status_;
    }
    if (session_->hello_done && !receiver_->SessionCurrent(session_.get())) {
      status_ = Status::InvalidArgument("session superseded");
      return status_;
    }
  }
}

}  // namespace exstream
