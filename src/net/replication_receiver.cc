#include "net/replication_receiver.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "archive/serialization.h"
#include "common/bytes.h"
#include "common/logging.h"
#include "common/strings.h"
#include "io/file_util.h"
#include "xstream/system.h"

namespace exstream {

namespace {
constexpr uint32_t kGapStateMagic = 0x47525845;  // "EXRG"
}  // namespace

ReplicationReceiver::ReplicationReceiver(XStreamSystem* system,
                                         ReplicationReceiverOptions options)
    : system_(system), options_(std::move(options)) {}

ReplicationReceiver::~ReplicationReceiver() { Stop(); }

Status ReplicationReceiver::LoadGapTotal() {
  if (!options_.state_path.has_value()) return Status::OK();
  auto data = ReadFileToString(*options_.state_path);
  if (!data.ok()) return Status::OK();  // first run: no state yet
  BytesReader r(*data);
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t magic, r.Get<uint32_t>());
  if (magic != kGapStateMagic) {
    return Status::Corruption("bad replication gap-state magic in " +
                              *options_.state_path);
  }
  EXSTREAM_ASSIGN_OR_RETURN(gap_total_, r.Get<uint64_t>());
  return Status::OK();
}

Status ReplicationReceiver::PersistGapTotal() {
  if (!options_.state_path.has_value()) return Status::OK();
  BytesWriter w;
  w.Put<uint32_t>(kGapStateMagic);
  w.Put<uint64_t>(gap_total_);
  return WriteFileAtomic(*options_.state_path, w.Take());
}

Status ReplicationReceiver::Start() {
  if (thread_.joinable()) return Status::OK();
  EXSTREAM_RETURN_NOT_OK(LoadGapTotal());
  EXSTREAM_ASSIGN_OR_RETURN(listener_, TcpListener::Listen(options_.port));
  port_ = listener_.port();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The parent applied system_->next_seq() events; the child's seq space
    // additionally counts every event shed before it could reach us.
    watermark_ = system_->next_seq() + gap_total_;
  }
  stop_.store(false);
  thread_ = std::thread(&ReplicationReceiver::AcceptLoop, this);
  return Status::OK();
}

void ReplicationReceiver::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  listener_.Close();
}

uint64_t ReplicationReceiver::watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watermark_;
}

ReplicationReceiver::Stats ReplicationReceiver::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ReplicationReceiver::AcceptLoop() {
  while (!stop_.load()) {
    auto accepted = listener_.Accept(/*timeout_ms=*/100);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;
      if (stop_.load()) return;
      EXSTREAM_LOG(Warn) << "replication accept failed: "
                         << accepted.status().ToString();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.sessions;
    }
    // One session at a time: a child retrying in the background queues in
    // the listen backlog until the current session ends.
    ServeSession(std::move(*accepted));
  }
}

void ReplicationReceiver::ServeSession(TcpSocket sock) {
  FrameDecoder decoder;
  bool hello_done = false;
  char buf[1 << 16];
  while (!stop_.load()) {
    for (;;) {
      auto frame = decoder.Next();
      if (!frame.ok()) {
        // Framing violations (bad magic/CRC/length) mean the stream cannot
        // be trusted past this point; drop the session and let the child
        // reconnect and resume from the watermark.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.frame_errors;
        EXSTREAM_LOG(Warn) << "replication frame error: "
                           << frame.status().ToString();
        return;
      }
      if (!frame->has_value()) break;
      const Status handled = HandleFrame(&sock, **frame, &hello_done);
      if (!handled.ok()) {
        EXSTREAM_LOG(Warn) << "replication session ended: "
                           << handled.ToString();
        return;
      }
    }
    auto got = sock.Recv(buf, sizeof(buf), options_.io_timeout_ms);
    if (!got.ok()) {
      if (got.status().IsDeadlineExceeded()) continue;  // idle link
      return;  // reset / injected fault: session over
    }
    if (*got == 0) return;  // orderly EOF
    decoder.Feed(std::string_view(buf, *got));
  }
}

Status ReplicationReceiver::HandleFrame(TcpSocket* sock, const Frame& frame,
                                        bool* hello_done) {
  if (!*hello_done) {
    if (frame.type != FrameType::kHello) {
      return Status::Corruption("first frame must be HELLO, got " +
                                std::string(FrameTypeToString(frame.type)));
    }
    EXSTREAM_ASSIGN_OR_RETURN(const HelloFrame hello,
                              HelloFrame::Decode(frame.payload));
    HelloAckFrame ack;
    if (hello.protocol_version != kReplProtocolVersion) {
      ack.accepted = false;
      ack.message = StrFormat("protocol version %u unsupported (want %u)",
                              hello.protocol_version, kReplProtocolVersion);
    } else if (hello.tenant != options_.tenant) {
      ack.accepted = false;
      ack.message = "unknown tenant '" + hello.tenant + "'";
    } else {
      ack.accepted = true;
      std::lock_guard<std::mutex> lock(mu_);
      ack.resume_seq = watermark_;
    }
    if (!ack.accepted) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hellos_rejected;
    }
    EXSTREAM_RETURN_NOT_OK(
        sock->SendAll(EncodeFrame(FrameType::kHelloAck, ack.Encode())));
    if (!ack.accepted) {
      return Status::InvalidArgument("session rejected: " + ack.message);
    }
    EXSTREAM_LOG(Info) << "replication session from node '" << hello.node_id
                       << "' (floor " << hello.floor_seq << ", resume "
                       << ack.resume_seq << ")";
    *hello_done = true;
    return Status::OK();
  }

  switch (frame.type) {
    case FrameType::kChunk: {
      EXSTREAM_ASSIGN_OR_RETURN(ChunkFrame chunk,
                                ChunkFrame::Decode(frame.payload));
      EXSTREAM_ASSIGN_OR_RETURN(std::vector<Event> events,
                                DeserializeEvents(chunk.events));
      if (events.size() != chunk.event_count) {
        return Status::Corruption(
            StrFormat("CHUNK %llu declares %u events, payload has %zu",
                      static_cast<unsigned long long>(chunk.chunk_id),
                      chunk.event_count, events.size()));
      }
      EXSTREAM_RETURN_NOT_OK(
          ApplyEvents(chunk.first_seq, std::move(events), /*is_chunk=*/true));
      {
        std::lock_guard<std::mutex> lock(mu_);
        last_chunk_id_ = std::max(last_chunk_id_, chunk.chunk_id);
      }
      return SendAck(sock);
    }
    case FrameType::kWalTail: {
      EXSTREAM_ASSIGN_OR_RETURN(WalTailFrame tail,
                                WalTailFrame::Decode(frame.payload));
      EXSTREAM_ASSIGN_OR_RETURN(std::vector<Event> events,
                                DeserializeEvents(tail.events));
      if (events.size() != tail.event_count) {
        return Status::Corruption(
            StrFormat("WALTAIL declares %u events, payload has %zu",
                      tail.event_count, events.size()));
      }
      EXSTREAM_RETURN_NOT_OK(
          ApplyEvents(tail.first_seq, std::move(events), /*is_chunk=*/false));
      return SendAck(sock);
    }
    default:
      return Status::Corruption("unexpected " +
                                std::string(FrameTypeToString(frame.type)) +
                                " frame from child");
  }
}

Status ReplicationReceiver::ApplyEvents(uint64_t first_seq,
                                        std::vector<Event> events,
                                        bool is_chunk) {
  const uint64_t end_seq = first_seq + events.size();
  size_t skip = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_seq > watermark_) {
      // A seq jump can only mean the child shed this range during an outage
      // (the sender never skips otherwise). Record the permanent loss so
      // parent-side Explains disclose it, and persist it so the watermark
      // arithmetic survives a parent restart.
      const uint64_t gap = first_seq - watermark_;
      gap_total_ += gap;
      stats_.gap_events += gap;
      system_->AddExternalShed(gap);
      EXSTREAM_RETURN_NOT_OK(PersistGapTotal());
      EXSTREAM_LOG(Warn) << "replication gap: " << gap
                         << " events shed by the child (seq " << watermark_
                         << ".." << first_seq << ")";
      watermark_ = first_seq;
    }
    if (end_seq <= watermark_) {
      stats_.events_deduped += events.size();
      return Status::OK();  // wholly below the watermark: a retransmit
    }
    skip = static_cast<size_t>(watermark_ - first_seq);
    stats_.events_deduped += skip;
  }
  if (skip > 0) {
    events.erase(events.begin(), events.begin() + static_cast<ptrdiff_t>(skip));
  }
  const size_t applied = events.size();
  // Through the front door: the parent's guard/WAL/engine/archive see the
  // identical batch stream a single-node system would, in the same order.
  system_->OnEventBatch(std::move(events));
  {
    std::lock_guard<std::mutex> lock(mu_);
    watermark_ = end_seq;
    stats_.events_applied += applied;
    if (is_chunk) {
      ++stats_.chunks_applied;
    } else {
      ++stats_.tail_frames_applied;
    }
  }
  return Status::OK();
}

Status ReplicationReceiver::SendAck(TcpSocket* sock) {
  // The ACK is a durability promise: fsync the parent WAL first so a parent
  // crash after the ACK cannot lose what the child now believes is safe.
  if (options_.sync_wal_before_ack) {
    EXSTREAM_RETURN_NOT_OK(system_->SyncWal());
  }
  AckFrame ack;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ack.ack_seq = watermark_;
    ack.chunk_id = last_chunk_id_;
    ++stats_.acks_sent;
  }
  return sock->SendAll(EncodeFrame(FrameType::kAck, ack.Encode()));
}

}  // namespace exstream
