// ReplLedger: the per-(tenant, child) durable watermark ledger behind the
// multi-child ReplicationReceiver.
//
// Each child session owns its own seq space; the ledger records, per
// (tenant, child) identity:
//
//   applied      events applied to the tenant's system from this child
//   gap_events   events the child shed before they reached the parent
//   quota_shed   events the parent shed over the tenant's ingest quota
//
// and the identity's resume watermark is the sum of the three — "the next
// seq of yours I have accounted for", whether the accounting was an apply or
// a disclosed loss.
//
// Crash consistency (the sync-then-ack contract): before a frame's events are
// applied, the ledger persists a *pending* marker {child, count} for the
// tenant; after the tenant's WAL fsyncs, the ledger persists the advanced
// `applied` and clears the marker — and only then may the ACK leave the
// parent. Every persist is WriteFileAtomic (temp + fsync + rename + directory
// fsync), so the file on disk always reflects a state at or before the last
// ACK sent. On recovery, ReconcileTenant compares the tenant system's
// recovered seq S against the ledger sum L: a pending marker resolves to
// "landed" iff S == L + count (one frame is one atomic WAL record, so there
// is no in-between), surplus S - L is parked as an unclaimed pool the
// tenant's next child HELLO absorbs (legacy single-child files carry no child
// key), and a deficit only clamps `applied` down — the un-acked events are
// still spooled at the child and will be re-applied.
//
// File format v2 ("EXRG" magic, version, CRC32 body): per-entry
// tenant/child/applied/gap/quota rows plus pending markers. 12-byte v1 files
// (magic + u64 gap total) written by the single-child receiver load as an
// unclaimed gap pool for the configured legacy tenant.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/result.h"

namespace exstream {

class ReplLedger {
 public:
  struct Entry {
    uint64_t applied = 0;
    uint64_t gap_events = 0;
    uint64_t quota_shed = 0;
    /// Next seq of this child not yet accounted for.
    uint64_t watermark() const { return applied + gap_events + quota_shed; }
  };

  /// Sets the backing file (nullopt = memory only) and the tenant that owns
  /// state from legacy v1 files. Call once, before Load().
  void Configure(std::optional<std::string> path, std::string legacy_tenant);

  /// Loads the backing file if it exists. A missing file is a fresh ledger.
  Status Load();

  /// Snapshot of one identity's entry (zero entry when unknown).
  Entry Get(const std::string& tenant, const std::string& child) const;

  /// All entries, sorted by (tenant, child).
  std::vector<std::tuple<std::string, std::string, Entry>> Snapshot() const;

  /// Sum of every identity's watermark plus unclaimed pools — the legacy
  /// aggregate watermark (exact for single-child receivers).
  uint64_t AggregateWatermark() const;

  /// Lifetime disclosed losses for `tenant`: child gaps + parent quota sheds
  /// + any unclaimed gap pool. Drives restart-time AddExternalShed deltas.
  uint64_t TenantShedTotal(const std::string& tenant) const;

  /// \brief Opens (tenant, child) at HELLO time: creates the entry if absent
  /// and folds the tenant's unclaimed pools (recovered-but-unattributed
  /// applied events, legacy v1 gap totals) into it — the first child to
  /// connect inherits them, which is exactly the single-child semantics those
  /// pools came from. Returns the identity's resume watermark.
  uint64_t Open(const std::string& tenant, const std::string& child);

  /// Records `events` the child skipped past (child-shed); persisted.
  Status AddGap(const std::string& tenant, const std::string& child,
                uint64_t events);

  /// Records `events` shed by the parent over the tenant's quota; persisted.
  /// The watermark advances past them so the child never retries a frame the
  /// parent has chosen to drop.
  Status AddQuotaShed(const std::string& tenant, const std::string& child,
                      uint64_t events);

  /// Persists a pending-apply marker for the tenant (fsynced) — must succeed
  /// before the frame's events reach the tenant system.
  Status BeginPending(const std::string& tenant, const std::string& child,
                      uint64_t count);

  /// Advances `applied` and clears the pending marker in memory; the durable
  /// write is CommitDurable(), after the WAL fsync.
  void MarkApplied(const std::string& tenant, const std::string& child,
                   uint64_t count);

  /// Persists the current state if anything changed since the last persist.
  /// The caller must not ACK until this returns OK.
  Status CommitDurable();

  struct ReconcileResult {
    bool pending_landed = false;   ///< pending marker resolved as applied
    uint64_t unclaimed = 0;        ///< recovered events no child entry claims
    uint64_t clamped = 0;          ///< ledger rolled back to the recovered seq
  };

  /// Reconciles the ledger against `recovered_seq`, the tenant system's
  /// next_seq() after recovery. See the file comment for the algorithm.
  ReconcileResult ReconcileTenant(const std::string& tenant,
                                  uint64_t recovered_seq);

 private:
  using Key = std::pair<std::string, std::string>;  // (tenant, child)

  Entry& GetLocked(const std::string& tenant, const std::string& child);
  Status PersistLocked();
  std::string EncodeLocked() const;

  mutable std::mutex mu_;
  std::optional<std::string> path_;
  std::string legacy_tenant_ = "default";
  std::map<Key, Entry> entries_;
  /// At most one in-flight apply per tenant (the tenant apply lock serializes
  /// sessions), so one marker per tenant suffices.
  std::map<std::string, std::pair<std::string, uint64_t>> pending_;
  /// Recovered-but-unattributed applied events / legacy v1 gap totals, per
  /// tenant; folded into the first child to Open().
  std::map<std::string, uint64_t> unclaimed_applied_;
  std::map<std::string, uint64_t> unclaimed_gap_;
  bool dirty_ = false;
};

}  // namespace exstream
