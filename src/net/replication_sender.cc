#include "net/replication_sender.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "archive/serialization.h"
#include "common/logging.h"
#include "common/strings.h"

namespace exstream {

ReplicationSender::ReplicationSender(ReplicationSenderOptions options)
    : options_(std::move(options)) {}

ReplicationSender::~ReplicationSender() { Stop(); }

void ReplicationSender::Start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = false;
  }
  thread_ = std::thread(&ReplicationSender::SenderLoop, this);
}

void ReplicationSender::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool ReplicationSender::SleepUnlessStopped(double ms) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait_for(lock,
                    std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)),
                    [&] { return stop_; });
  return !stop_;
}

void ReplicationSender::OnBatch(uint64_t first_seq, const EventBatch& batch) {
  if (batch.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!spool_initialized_) {
    // First feed after construction or crash recovery: the stream starts
    // wherever the WAL's oldest surviving record starts.
    spool_first_seq_ = next_expected_ = first_seq;
    shed_floor_ = std::max(shed_floor_, first_seq);
    spool_initialized_ = true;
  }
  const uint64_t end_seq = first_seq + batch.size();
  if (end_seq <= next_expected_) return;  // wholly re-fed (WAL replay overlap)
  size_t skip = 0;
  if (first_seq < next_expected_) {
    skip = static_cast<size_t>(next_expected_ - first_seq);
  } else if (first_seq > next_expected_) {
    // The feed contract (contiguous WAL-durable seqs) was broken upstream.
    // Don't mis-attribute events to the missing range: seal what we have and
    // restart the spool at the new position; the parent will record the gap.
    EXSTREAM_LOG(Warn) << "replication feed gap: expected seq " << next_expected_
                       << ", got " << first_seq;
    while (!spool_.empty()) SealLocked();
    spool_first_seq_ = next_expected_ = first_seq;
  }
  spool_.insert(spool_.end(), batch.begin() + skip, batch.end());
  next_expected_ = end_seq;
  stats_.events_spooled += batch.size() - skip;
  while (spool_.size() >= options_.chunk_events) SealLocked();
}

void ReplicationSender::SealLocked() {
  const size_t n = std::min(spool_.size(), options_.chunk_events);
  if (n == 0) return;
  PendingChunk chunk;
  chunk.chunk_id = next_chunk_id_++;
  chunk.first_seq = spool_first_seq_;
  chunk.count = static_cast<uint32_t>(n);
  {
    std::vector<Event> events(spool_.begin(), spool_.begin() + n);
    chunk.payload = SerializeEvents(events, SpillFormat::kV4);
  }
  spool_.erase(spool_.begin(), spool_.begin() + n);
  spool_first_seq_ += n;
  tail_sent_seq_ = std::max(tail_sent_seq_, spool_first_seq_);
  pending_.push_back(std::move(chunk));
  ++stats_.chunks_sealed;
  // Bounded queue: a long parent outage sheds the oldest unacked chunks
  // rather than growing without limit. The shed floor advances so the WAL
  // pin does not retain segments nobody will ever resend.
  while (pending_.size() > options_.max_pending_chunks) {
    const PendingChunk& oldest = pending_.front();
    shed_floor_ = std::max(shed_floor_, oldest.first_seq + oldest.count);
    ++stats_.shed_chunks;
    stats_.shed_events += oldest.count;
    pending_.pop_front();
  }
}

uint64_t ReplicationSender::pin_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::max(acked_seq_, shed_floor_);
}

bool ReplicationSender::WaitForDrain(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return drain_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return pending_.empty() && acked_seq_ >= next_expected_;
  });
}

ReplicationSender::Stats ReplicationSender::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.acked_seq = acked_seq_;
  return s;
}

void ReplicationSender::ApplyAckLocked(const AckFrame& ack) {
  acked_seq_ = std::max(acked_seq_, ack.ack_seq);
  while (!pending_.empty() &&
         pending_.front().first_seq + pending_.front().count <= acked_seq_) {
    pending_.pop_front();
  }
  drain_cv_.notify_all();
}

Result<TcpSocket> ReplicationSender::ConnectAndHandshake(FrameDecoder* decoder) {
  EXSTREAM_ASSIGN_OR_RETURN(
      TcpSocket sock, TcpSocket::Connect(options_.host, options_.port,
                                         options_.connect_timeout_ms));
  HelloFrame hello;
  hello.tenant = options_.tenant;
  hello.node_id = options_.node_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hello.floor_seq =
        pending_.empty() ? std::max(spool_first_seq_, shed_floor_)
                         : std::max(pending_.front().first_seq, shed_floor_);
  }
  EXSTREAM_RETURN_NOT_OK(
      sock.SendAll(EncodeFrame(FrameType::kHello, hello.Encode())));

  // Read until the HELLOACK lands (one io_timeout budget overall).
  char buf[4096];
  for (;;) {
    EXSTREAM_ASSIGN_OR_RETURN(auto frame, decoder->Next());
    if (frame.has_value()) {
      if (frame->type != FrameType::kHelloAck) {
        return Status::Corruption(
            StrFormat("expected HELLOACK, got %.*s frame",
                      static_cast<int>(FrameTypeToString(frame->type).size()),
                      FrameTypeToString(frame->type).data()));
      }
      EXSTREAM_ASSIGN_OR_RETURN(const HelloAckFrame ack,
                                HelloAckFrame::Decode(frame->payload));
      if (!ack.accepted) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hello_rejects;
        return Status::InvalidArgument("parent rejected session: " + ack.message);
      }
      std::lock_guard<std::mutex> lock(mu_);
      // The parent's resume watermark acts as an ACK for everything below it
      // (it survived the outage on the parent's side); a fresh session also
      // retransmits every still-pending chunk, so mark them unsent.
      ApplyAckLocked(AckFrame{ack.resume_seq, 0});
      for (PendingChunk& chunk : pending_) chunk.sent = false;
      tail_sent_seq_ = spool_first_seq_;  // resend the tail too
      return sock;
    }
    EXSTREAM_ASSIGN_OR_RETURN(
        const size_t n, sock.Recv(buf, sizeof(buf), options_.io_timeout_ms));
    if (n == 0) return Status::IOError("parent closed during handshake");
    decoder->Feed(std::string_view(buf, n));
  }
}

Status ReplicationSender::PollAcks(TcpSocket* sock, FrameDecoder* decoder,
                                   int timeout_ms) {
  char buf[4096];
  for (;;) {
    for (;;) {
      EXSTREAM_ASSIGN_OR_RETURN(auto frame, decoder->Next());
      if (!frame.has_value()) break;
      if (frame->type != FrameType::kAck) {
        return Status::Corruption(
            StrFormat("unexpected %.*s frame from parent",
                      static_cast<int>(FrameTypeToString(frame->type).size()),
                      FrameTypeToString(frame->type).data()));
      }
      EXSTREAM_ASSIGN_OR_RETURN(const AckFrame ack,
                                AckFrame::Decode(frame->payload));
      std::lock_guard<std::mutex> lock(mu_);
      ApplyAckLocked(ack);
      timeout_ms = 0;  // drain whatever else already arrived, then return
    }
    const auto got = sock->Recv(buf, sizeof(buf), timeout_ms);
    if (!got.ok()) {
      if (got.status().IsDeadlineExceeded()) return Status::OK();  // no data
      return got.status();
    }
    if (*got == 0) return Status::IOError("parent closed the connection");
    decoder->Feed(std::string_view(buf, *got));
  }
}

void ReplicationSender::SenderLoop() {
  Backoff backoff(options_.reconnect);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      if (stop_) return;
    }
    FrameDecoder decoder;
    auto connected = ConnectAndHandshake(&decoder);
    if (!connected.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.connect_failures;
      }
      if (!SleepUnlessStopped(backoff.NextSleepMs())) return;
      continue;
    }
    TcpSocket sock = std::move(*connected);
    backoff.Reset();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.connected = true;
    }

    Status session = Status::OK();
    while (session.ok()) {
      {
        std::lock_guard<std::mutex> lock(stop_mu_);
        if (stop_) break;
      }
      // Pick the next frame to send under the spool lock, send it outside.
      std::string wire;
      bool sent_chunk = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto next =
            std::find_if(pending_.begin(), pending_.end(),
                         [](const PendingChunk& c) { return !c.sent; });
        if (next != pending_.end()) {
          ChunkFrame frame;
          frame.chunk_id = next->chunk_id;
          frame.first_seq = next->first_seq;
          frame.event_count = next->count;
          frame.events = next->payload;
          wire = EncodeFrame(FrameType::kChunk, frame.Encode());
          next->sent = true;
          ++stats_.chunks_sent;
          sent_chunk = true;
        } else if (!spool_.empty() &&
                   spool_first_seq_ + spool_.size() > tail_sent_seq_ &&
                   spool_first_seq_ + spool_.size() > acked_seq_) {
          WalTailFrame frame;
          frame.first_seq = spool_first_seq_;
          frame.event_count = static_cast<uint32_t>(spool_.size());
          frame.events = SerializeEvents(spool_, SpillFormat::kV4);
          wire = EncodeFrame(FrameType::kWalTail, frame.Encode());
          tail_sent_seq_ = spool_first_seq_ + spool_.size();
          ++stats_.tail_frames_sent;
        }
      }
      if (!wire.empty()) {
        session = sock.SendAll(wire);
        if (session.ok()) {
          // Opportunistic drain: after a chunk keep the pipeline moving, after
          // the tail wait a beat for the covering ACK.
          session = PollAcks(&sock, &decoder, sent_chunk ? 0 : options_.idle_poll_ms);
        }
      } else {
        session = PollAcks(&sock, &decoder, options_.idle_poll_ms);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.connected = false;
      if (!session.ok()) ++stats_.reconnects;
      for (PendingChunk& chunk : pending_) chunk.sent = false;
      tail_sent_seq_ = spool_first_seq_;
    }
    if (!session.ok()) {
      EXSTREAM_LOG(Info) << "replication session to " << options_.host << ":"
                         << options_.port << " ended: " << session.ToString();
      if (!SleepUnlessStopped(backoff.NextSleepMs())) return;
    }
  }
}

}  // namespace exstream
