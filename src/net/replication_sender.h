// ReplicationSender: the child half of parent/child replication.
//
// A child XStreamSystem feeds every WAL-durable batch into the sender
// (OnBatch). The sender spools events in sequence order, seals the spool into
// *replication chunks* of `chunk_events` events, and streams them — plus the
// unsealed spool tail — to the parent's ReplicationReceiver over the EXRP
// frame protocol (net/frame.h). Replication chunks are deliberately the raw
// seq-contiguous event stream, not the archive's per-type chunks: the parent
// applies them through its own OnEventBatch in arrival order, so its engine,
// archive, and Explain results are bit-identical to a single-node run over
// the same stream.
//
// Delivery contract:
//  - Acked data is exactly-once: the parent's ACK cursor (`ack_seq`) is a
//    durable watermark; on reconnect the HELLOACK resume watermark trims
//    everything below it and the parent dedupes any overlap by seq.
//  - Unacked data is at-least-once: chunks are retransmitted after every
//    reconnect until acked.
//  - The pending-chunk queue is bounded (`max_pending_chunks`); during a long
//    parent outage the oldest unacked chunks are shed (counted in stats(),
//    surfaced through fault_stats() and the parent's DegradationReport via
//    the seq gap the parent observes).
//
// Crash-resume: pin_seq() — max(acked watermark, shed floor) — is installed
// as the WAL's truncate pin before every checkpoint truncation, so the WAL
// keeps every segment the parent might still need. After a child crash,
// XStreamSystem::Recover replays the surviving WAL from its oldest record
// back into OnBatch, rebuilding the spool/pending state; the parent's resume
// watermark then discards whatever it already has.
//
// The sender runs one background thread: connect (decorrelated-jitter
// backoff, common/retry), HELLO/HELLOACK handshake, stream frames, poll ACKs.
// A dead or partitioned parent never blocks ingest — OnBatch only ever takes
// the spool mutex, and total sender memory is bounded by
// max_pending_chunks + chunk_events.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "event/event.h"
#include "net/frame.h"
#include "net/socket.h"

namespace exstream {

struct ReplicationSenderOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Tenant label; the receiver rejects a HELLO for a different tenant.
  std::string tenant = "default";
  /// This child's identity in HELLO frames (logs/debugging).
  std::string node_id = "child";
  /// Spool seal threshold: events per replication chunk.
  size_t chunk_events = 256;
  /// Bounded pending queue: unacked sealed chunks beyond this shed oldest.
  size_t max_pending_chunks = 64;
  int connect_timeout_ms = 1000;
  /// Recv timeout for the HELLOACK and for ACK polling while idle.
  int io_timeout_ms = 2000;
  /// Idle ACK-poll interval; also bounds how fast the thread notices Stop().
  int idle_poll_ms = 20;
  /// Reconnect backoff (decorrelated jitter; max_attempts is ignored — the
  /// sender retries until stopped).
  RetryPolicy reconnect{/*max_attempts=*/0, /*base_backoff_ms=*/10.0,
                        /*max_backoff_ms=*/500.0,
                        BackoffMode::kDecorrelatedJitter};
};

class ReplicationSender {
 public:
  explicit ReplicationSender(ReplicationSenderOptions options);
  ~ReplicationSender();

  ReplicationSender(const ReplicationSender&) = delete;
  ReplicationSender& operator=(const ReplicationSender&) = delete;

  /// Starts the background sender thread (idempotent).
  void Start();
  /// Stops and joins the thread. Spooled-but-unacked data stays in memory
  /// (and in the WAL, via the truncate pin) for the next session.
  void Stop();

  /// \brief Feeds one WAL-durable batch. `first_seq` is the global sequence
  /// number of batch[0]; calls must be in order on one thread (the system's
  /// applying thread). Batches at or below the already-spooled cursor are
  /// deduped — WAL replay after recovery can safely re-feed everything.
  void OnBatch(uint64_t first_seq, const EventBatch& batch);

  /// \brief Lowest sequence number the parent might still need from this
  /// child: max(acked watermark, shed floor). The WAL must keep segments at
  /// or past this (WriteAheadLog::SetTruncatePin).
  uint64_t pin_seq() const;

  /// Blocks until everything spooled so far is acked by the parent (or the
  /// timeout passes). Returns true on full drain.
  bool WaitForDrain(int timeout_ms);

  struct Stats {
    uint64_t chunks_sealed = 0;
    uint64_t chunks_sent = 0;     ///< CHUNK frames put on the wire (retries count)
    uint64_t tail_frames_sent = 0;
    uint64_t events_spooled = 0;
    uint64_t acked_seq = 0;       ///< parent durable cursor
    uint64_t shed_chunks = 0;     ///< sealed chunks dropped by the bounded queue
    uint64_t shed_events = 0;
    uint64_t reconnects = 0;      ///< sessions torn down by link errors
    uint64_t connect_failures = 0;
    uint64_t hello_rejects = 0;   ///< HELLOACKs with accepted=false
    bool connected = false;
  };
  Stats stats() const;

 private:
  /// One sealed, unacked replication chunk.
  struct PendingChunk {
    uint64_t chunk_id = 0;
    uint64_t first_seq = 0;
    uint32_t count = 0;
    std::string payload;  ///< SerializeEvents(events, kV4)
    bool sent = false;    ///< sent in the current session (reset on reconnect)
  };

  void SenderLoop();
  /// Connects and completes the HELLO/HELLOACK handshake; on success applies
  /// the resume watermark and returns the connected socket.
  Result<TcpSocket> ConnectAndHandshake(FrameDecoder* decoder);
  /// Reads frames until an ACK arrives or `timeout_ms` passes. DeadlineExceeded
  /// means "no data" (the session stays up); other errors end the session.
  Status PollAcks(TcpSocket* sock, FrameDecoder* decoder, int timeout_ms);
  void ApplyAckLocked(const AckFrame& ack);
  void SealLocked();
  /// Interruptible sleep; returns false when Stop() was requested.
  bool SleepUnlessStopped(double ms);

  const ReplicationSenderOptions options_;

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  std::deque<PendingChunk> pending_;
  std::vector<Event> spool_;       ///< unsealed tail, seq-contiguous
  uint64_t spool_first_seq_ = 0;   ///< seq of spool_[0]
  uint64_t next_expected_ = 0;     ///< seq after the last spooled event
  bool spool_initialized_ = false;
  uint64_t next_chunk_id_ = 1;
  uint64_t acked_seq_ = 0;
  uint64_t shed_floor_ = 0;        ///< seq after the last shed chunk
  uint64_t tail_sent_seq_ = 0;     ///< spool end covered by the last WALTAIL
  Stats stats_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace exstream
