#include "net/socket.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fault_injection.h"
#include "common/strings.h"

namespace exstream {

namespace {

Status ErrnoError(const std::string& what, const std::string& peer) {
  return Status::IOError(
      StrFormat("%s %s: %s", what.c_str(), peer.c_str(), strerror(errno)));
}

/// Waits for `events` (POLLIN/POLLOUT) on fd; false on timeout.
Result<bool> PollFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return Status::IOError(StrFormat("poll failed: %s", strerror(errno)));
  }
}

}  // namespace

TcpSocket::TcpSocket(TcpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), peer_(std::move(other.peer_)) {}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    peer_ = std::move(other.peer_);
  }
  return *this;
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<TcpSocket> TcpSocket::Connect(const std::string& host, uint16_t port,
                                     int timeout_ms) {
  const std::string peer = StrFormat("%s:%u", host.c_str(), unsigned{port});
  if (auto fault = FaultInjector::Global().Intercept(FaultOp::kConnect,
                                                     "repl-connect", peer)) {
    if (fault->mode == FaultMode::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
    } else {
      return Status::IOError("injected connect failure to " + peer);
    }
  }

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("cannot create socket for", peer);

  // Non-blocking connect so the timeout is enforceable.
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const Status st = ErrnoError("cannot connect to", peer);
    close(fd);
    return st;
  }
  if (rc != 0) {
    auto ready = PollFor(fd, POLLOUT, timeout_ms);
    if (!ready.ok() || !*ready) {
      close(fd);
      if (!ready.ok()) return ready.status();
      return Status::IOError("connect to " + peer + " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      close(fd);
      return Status::IOError(
          StrFormat("cannot connect to %s: %s", peer.c_str(), strerror(err)));
    }
  }
  fcntl(fd, F_SETFL, flags);  // back to blocking

  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpSocket(fd, peer);
}

Status TcpSocket::SendAll(std::string_view data) {
  if (fd_ < 0) return Status::IOError("send on closed socket to " + peer_);

  std::string mutated;  // only allocated when a fault rewrites the bytes
  bool close_after = false;
  if (auto fault =
          FaultInjector::Global().Intercept(FaultOp::kSend, "repl-send", peer_)) {
    switch (fault->mode) {
      case FaultMode::kFailOpen:
      case FaultMode::kNoSpace:
        return Status::IOError("injected send failure to " + peer_);
      case FaultMode::kReset:
        Close();
        return Status::IOError("injected connection reset by " + peer_);
      case FaultMode::kTruncate:
        // Deliver a prefix, then drop the link: the classic mid-frame cut.
        data = data.substr(0, std::min(data.size(), fault->truncate_to));
        close_after = true;
        break;
      case FaultMode::kCorruptBytes: {
        mutated.assign(data);
        if (!mutated.empty()) {
          const size_t off =
              fault->corrupt_offset == SIZE_MAX
                  ? mutated.size() / 2
                  : std::min(fault->corrupt_offset, mutated.size() - 1);
          mutated[off] = static_cast<char>(mutated[off] ^ 0x5A);
        }
        data = mutated;
        break;
      }
      case FaultMode::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
        break;
    }
  }

  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("send failed to", peer_);
    }
    sent += static_cast<size_t>(n);
  }
  if (close_after) {
    Close();
    return Status::IOError("injected mid-frame truncation to " + peer_);
  }
  return Status::OK();
}

Result<size_t> TcpSocket::Recv(char* buf, size_t len, int timeout_ms) {
  if (fd_ < 0) return Status::IOError("recv on closed socket from " + peer_);

  auto fault =
      FaultInjector::Global().Intercept(FaultOp::kRecv, "repl-recv", peer_);
  if (fault.has_value()) {
    switch (fault->mode) {
      case FaultMode::kFailOpen:
      case FaultMode::kNoSpace:
        return Status::IOError("injected recv failure from " + peer_);
      case FaultMode::kReset:
        Close();
        return Status::IOError("injected connection reset by " + peer_);
      case FaultMode::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
        break;
      case FaultMode::kTruncate:
      case FaultMode::kCorruptBytes:
        break;  // applied to the received bytes below
    }
  }

  EXSTREAM_ASSIGN_OR_RETURN(const bool readable,
                            PollFor(fd_, POLLIN, timeout_ms));
  if (!readable) {
    return Status::DeadlineExceeded("recv from " + peer_ + " timed out");
  }

  for (;;) {
    const ssize_t n = recv(fd_, buf, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("recv failed from", peer_);
    }
    size_t got = static_cast<size_t>(n);
    if (fault.has_value() && got > 0) {
      if (fault->mode == FaultMode::kTruncate) {
        got = std::min(got, fault->truncate_to);
        // The rest of the stream is gone for this socket.
        const size_t keep = got;
        Close();
        return keep;
      }
      if (fault->mode == FaultMode::kCorruptBytes) {
        const size_t off = fault->corrupt_offset == SIZE_MAX
                               ? got / 2
                               : std::min(fault->corrupt_offset, got - 1);
        buf[off] = static_cast<char>(buf[off] ^ 0x5A);
      }
    }
    return got;
  }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Listen(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("cannot create listener socket: %s", strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::IOError(
        StrFormat("cannot bind 127.0.0.1:%u: %s", unsigned{port},
                  strerror(errno)));
    close(fd);
    return st;
  }
  if (listen(fd, 8) != 0) {
    const Status st = Status::IOError(
        StrFormat("cannot listen on 127.0.0.1:%u: %s", unsigned{port},
                  strerror(errno)));
    close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    const Status st =
        Status::IOError(StrFormat("getsockname failed: %s", strerror(errno)));
    close(fd);
    return st;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpSocket> TcpListener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::IOError("accept on closed listener");
  EXSTREAM_ASSIGN_OR_RETURN(const bool ready,
                            PollFor(fd_, POLLIN, timeout_ms));
  if (!ready) return Status::DeadlineExceeded("accept timed out");

  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  int cfd;
  for (;;) {
    cfd = accept(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    if (cfd >= 0) break;
    if (errno == EINTR) continue;
    return Status::IOError(StrFormat("accept failed: %s", strerror(errno)));
  }
  char ip[INET_ADDRSTRLEN] = "?";
  inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  const int one = 1;
  setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpSocket(cfd, StrFormat("%s:%u", ip, unsigned{ntohs(addr.sin_port)}));
}

}  // namespace exstream
