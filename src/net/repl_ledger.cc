#include "net/repl_ledger.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/strings.h"
#include "io/file_util.h"

namespace exstream {

namespace {
constexpr uint32_t kGapStateMagic = 0x47525845;  // "EXRG"
constexpr uint32_t kLedgerVersion = 2;
/// v1 files are exactly magic + u64 gap total.
constexpr size_t kV1FileBytes = 4 + 8;
}  // namespace

void ReplLedger::Configure(std::optional<std::string> path,
                           std::string legacy_tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = std::move(path);
  legacy_tenant_ = std::move(legacy_tenant);
}

Status ReplLedger::Load() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!path_.has_value()) return Status::OK();
  auto data = ReadFileToString(*path_);
  if (!data.ok()) return Status::OK();  // first run: no state yet
  BytesReader r(*data);
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t magic, r.Get<uint32_t>());
  if (magic != kGapStateMagic) {
    return Status::Corruption("bad replication ledger magic in " + *path_);
  }
  if (data->size() == kV1FileBytes) {
    // Single-child v1 state: one gap total, owned by the legacy tenant and
    // claimed by its first child to connect.
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t gap, r.Get<uint64_t>());
    if (gap > 0) unclaimed_gap_[legacy_tenant_] += gap;
    return Status::OK();
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t version, r.Get<uint32_t>());
  if (version != kLedgerVersion) {
    return Status::Corruption(
        StrFormat("replication ledger %s has version %u (want %u)",
                  path_->c_str(), version, kLedgerVersion));
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t crc, r.Get<uint32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const std::string_view body,
                            r.GetView(r.remaining()));
  if (Crc32(body) != crc) {
    return Status::Corruption("replication ledger CRC mismatch in " + *path_);
  }
  BytesReader br(body);
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_entries, br.Get<uint32_t>());
  for (uint32_t i = 0; i < n_entries; ++i) {
    EXSTREAM_ASSIGN_OR_RETURN(std::string tenant, br.GetString());
    EXSTREAM_ASSIGN_OR_RETURN(std::string child, br.GetString());
    Entry e;
    EXSTREAM_ASSIGN_OR_RETURN(e.applied, br.Get<uint64_t>());
    EXSTREAM_ASSIGN_OR_RETURN(e.gap_events, br.Get<uint64_t>());
    EXSTREAM_ASSIGN_OR_RETURN(e.quota_shed, br.Get<uint64_t>());
    entries_[Key(std::move(tenant), std::move(child))] = e;
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_pending, br.Get<uint32_t>());
  for (uint32_t i = 0; i < n_pending; ++i) {
    EXSTREAM_ASSIGN_OR_RETURN(std::string tenant, br.GetString());
    EXSTREAM_ASSIGN_OR_RETURN(std::string child, br.GetString());
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t count, br.Get<uint64_t>());
    pending_[std::move(tenant)] = {std::move(child), count};
  }
  return Status::OK();
}

std::string ReplLedger::EncodeLocked() const {
  BytesWriter body;
  body.Put<uint32_t>(static_cast<uint32_t>(entries_.size()));
  for (const auto& [key, e] : entries_) {
    body.PutString(key.first);
    body.PutString(key.second);
    body.Put<uint64_t>(e.applied);
    body.Put<uint64_t>(e.gap_events);
    body.Put<uint64_t>(e.quota_shed);
  }
  body.Put<uint32_t>(static_cast<uint32_t>(pending_.size()));
  for (const auto& [tenant, p] : pending_) {
    body.PutString(tenant);
    body.PutString(p.first);
    body.Put<uint64_t>(p.second);
  }
  const std::string payload = body.Take();
  BytesWriter w;
  w.Put<uint32_t>(kGapStateMagic);
  w.Put<uint32_t>(kLedgerVersion);
  w.Put<uint32_t>(Crc32(payload));
  w.PutRaw(payload);
  return w.Take();
}

Status ReplLedger::PersistLocked() {
  if (!path_.has_value()) {
    dirty_ = false;
    return Status::OK();
  }
  EXSTREAM_RETURN_NOT_OK(WriteFileAtomic(*path_, EncodeLocked()));
  dirty_ = false;
  return Status::OK();
}

ReplLedger::Entry& ReplLedger::GetLocked(const std::string& tenant,
                                         const std::string& child) {
  return entries_[Key(tenant, child)];
}

ReplLedger::Entry ReplLedger::Get(const std::string& tenant,
                                  const std::string& child) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key(tenant, child));
  return it != entries_.end() ? it->second : Entry{};
}

std::vector<std::tuple<std::string, std::string, ReplLedger::Entry>>
ReplLedger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::tuple<std::string, std::string, Entry>> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    out.emplace_back(key.first, key.second, e);
  }
  return out;
}

uint64_t ReplLedger::AggregateWatermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, e] : entries_) total += e.watermark();
  for (const auto& [tenant, n] : unclaimed_applied_) total += n;
  for (const auto& [tenant, n] : unclaimed_gap_) total += n;
  return total;
}

uint64_t ReplLedger::TenantShedTotal(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, e] : entries_) {
    if (key.first == tenant) total += e.gap_events + e.quota_shed;
  }
  auto gap = unclaimed_gap_.find(tenant);
  if (gap != unclaimed_gap_.end()) total += gap->second;
  return total;
}

uint64_t ReplLedger::Open(const std::string& tenant, const std::string& child) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = GetLocked(tenant, child);
  auto applied = unclaimed_applied_.find(tenant);
  if (applied != unclaimed_applied_.end()) {
    e.applied += applied->second;
    unclaimed_applied_.erase(applied);
    dirty_ = true;
  }
  auto gap = unclaimed_gap_.find(tenant);
  if (gap != unclaimed_gap_.end()) {
    e.gap_events += gap->second;
    unclaimed_gap_.erase(gap);
    dirty_ = true;
  }
  return e.watermark();
}

Status ReplLedger::AddGap(const std::string& tenant, const std::string& child,
                          uint64_t events) {
  std::lock_guard<std::mutex> lock(mu_);
  GetLocked(tenant, child).gap_events += events;
  dirty_ = true;
  return PersistLocked();
}

Status ReplLedger::AddQuotaShed(const std::string& tenant,
                                const std::string& child, uint64_t events) {
  std::lock_guard<std::mutex> lock(mu_);
  GetLocked(tenant, child).quota_shed += events;
  dirty_ = true;
  return PersistLocked();
}

Status ReplLedger::BeginPending(const std::string& tenant,
                                const std::string& child, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_[tenant] = {child, count};
  dirty_ = true;
  return PersistLocked();
}

void ReplLedger::MarkApplied(const std::string& tenant,
                             const std::string& child, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  GetLocked(tenant, child).applied += count;
  pending_.erase(tenant);
  dirty_ = true;
}

Status ReplLedger::CommitDurable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dirty_) return Status::OK();
  return PersistLocked();
}

ReplLedger::ReconcileResult ReplLedger::ReconcileTenant(
    const std::string& tenant, uint64_t recovered_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  ReconcileResult result;
  auto tenant_applied = [&] {
    uint64_t sum = 0;
    for (const auto& [key, e] : entries_) {
      if (key.first == tenant) sum += e.applied;
    }
    auto it = unclaimed_applied_.find(tenant);
    if (it != unclaimed_applied_.end()) sum += it->second;
    return sum;
  };
  uint64_t ledger_applied = tenant_applied();
  auto pending = pending_.find(tenant);
  if (pending != pending_.end()) {
    const auto& [child, count] = pending->second;
    if (recovered_seq == ledger_applied + count) {
      // The frame's WAL record survived the crash: the apply landed even
      // though the post-apply persist never did. Claim it for the child —
      // its un-acked retransmit will dedupe against the raised watermark.
      GetLocked(tenant, child).applied += count;
      result.pending_landed = true;
    }
    // recovered_seq == ledger_applied: the apply never reached the WAL; the
    // child still holds the frame and will resend it. Any other value is
    // covered by the surplus/deficit arms below.
    pending_.erase(pending);
    dirty_ = true;
    ledger_applied = tenant_applied();
  }
  if (recovered_seq > ledger_applied) {
    // Events recovered from the WAL that no child entry accounts for — a
    // ledger that lagged the WAL (memory-only ledgers, v1 files). Parked for
    // the tenant's first child to claim at HELLO.
    result.unclaimed = recovered_seq - ledger_applied;
    unclaimed_applied_[tenant] += result.unclaimed;
    dirty_ = true;
  } else if (recovered_seq < ledger_applied) {
    // The ledger ran ahead of what the WAL durably kept (a power-loss-style
    // torn tail). Roll `applied` back so the resume watermark re-requests
    // the missing events — the children never saw an ACK for them, so their
    // spools still hold them.
    uint64_t deficit = result.clamped = ledger_applied - recovered_seq;
    auto pool = unclaimed_applied_.find(tenant);
    if (pool != unclaimed_applied_.end()) {
      const uint64_t take = std::min(deficit, pool->second);
      pool->second -= take;
      deficit -= take;
      if (pool->second == 0) unclaimed_applied_.erase(pool);
    }
    while (deficit > 0) {
      Entry* largest = nullptr;
      for (auto& [key, e] : entries_) {
        if (key.first != tenant || e.applied == 0) continue;
        if (largest == nullptr || e.applied > largest->applied) largest = &e;
      }
      if (largest == nullptr) break;
      const uint64_t take = std::min(deficit, largest->applied);
      largest->applied -= take;
      deficit -= take;
    }
    EXSTREAM_LOG(Warn) << "replication ledger for tenant '" << tenant
                       << "' was ahead of the recovered WAL by "
                       << result.clamped << " events; rolled back for resend";
    dirty_ = true;
  }
  return result;
}

}  // namespace exstream
