// Replication wire protocol: the CRC32-framed binary frames exchanged between
// a child node's ReplicationSender and a parent node's ReplicationReceiver.
//
// Every frame on the wire is:
//
//   u32 magic "EXRP", u8 frame type, u32 payload length,
//   u32 CRC32(payload), payload bytes
//
// and the payloads are BytesWriter/BytesReader encodings of the typed structs
// below. The session protocol (see replication_sender.h for the state
// machine):
//
//   child -> parent   HELLO    protocol version, tenant, node id, and the
//                              lowest seq the child can still serve (its WAL
//                              floor) — opens or resumes a session.
//   parent -> child   HELLOACK accepted/rejected + the parent's resume
//                              watermark: the first seq it has NOT durably
//                              applied. The child trims its spool to this.
//   child -> parent   CHUNK    a sealed replication chunk: chunk id, first
//                              seq, event count, and a SerializeEvents v4
//                              payload (the compressed archive spill codec,
//                              verbatim).
//   child -> parent   WALTAIL  the unsealed spool tail, same payload codec —
//                              sent so a parent-side Explain can see events
//                              that have not filled a chunk yet. Never acked;
//                              superseded by the chunk that later covers it.
//   parent -> child   ACK      durable cursor: every event with
//                              seq < ack_seq is applied at the parent, and
//                              chunk_id is the highest chunk id covered.
//
// Delivery semantics built on these frames: chunks at or past the parent's
// watermark apply exactly once (the watermark dedupes replays after a
// reconnect); the WALTAIL overlap region is at-least-once on the wire but the
// same watermark makes it exactly-once in effect.
//
// FrameDecoder is incremental (feed arbitrary byte slices, e.g. straight from
// recv) and is the fuzz surface (fuzz/fuzz_repl_frame.cc): bad magic, bad
// CRC, oversized or truncated lengths, and unknown frame types must all
// surface as Status errors, never as crashes or unbounded allocation.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace exstream {

/// Bumped on incompatible wire changes; HELLO/HELLOACK carry it and a
/// mismatch rejects the session (replication never half-speaks a version).
inline constexpr uint32_t kReplProtocolVersion = 1;

inline constexpr uint32_t kReplFrameMagic = 0x50525845u;  // "EXRP" little-endian

/// Hard cap on one frame's payload; a declared length past this is
/// Corruption, not an allocation. Generous: chunks seal well below 1 MiB.
inline constexpr uint32_t kReplMaxPayloadBytes = 64u << 20;

/// Bytes of framing before the payload (magic + type + length + CRC).
inline constexpr size_t kReplFrameHeaderBytes = 4 + 1 + 4 + 4;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kChunk = 3,
  kWalTail = 4,
  kAck = 5,
};

std::string_view FrameTypeToString(FrameType type);

/// \brief One decoded frame: the type tag plus the CRC-verified payload.
struct Frame {
  FrameType type;
  std::string payload;
};

/// \brief Encodes a complete wire frame (header + CRC + payload).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// \brief Incremental frame parser. Feed() bytes as they arrive; Next()
/// yields completed frames. Any framing violation poisons the decoder — a
/// stream that lied once cannot be trusted to re-synchronize, so the
/// connection must be dropped and re-established.
class FrameDecoder {
 public:
  /// Appends raw bytes from the wire.
  void Feed(std::string_view data);

  /// Returns the next complete frame, std::nullopt when more bytes are
  /// needed, or an error (bad magic / CRC mismatch / oversized length /
  /// unknown type) that permanently poisons the decoder.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buf_.size() - pos_; }

  bool poisoned() const { return poisoned_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  bool poisoned_ = false;
};

// ---------------------------------------------------------------------------
// Typed payloads. Each struct round-trips through Encode()/Decode(); Decode
// rejects truncated or trailing-garbage payloads.

struct HelloFrame {
  uint32_t protocol_version = kReplProtocolVersion;
  std::string tenant;
  std::string node_id;
  /// Lowest seq the child can re-serve (its WAL/spool floor). The parent
  /// detects an unrecoverable gap when its watermark is below this.
  uint64_t floor_seq = 0;

  std::string Encode() const;
  static Result<HelloFrame> Decode(std::string_view payload);
};

struct HelloAckFrame {
  uint32_t protocol_version = kReplProtocolVersion;
  bool accepted = false;
  /// First seq the parent has NOT durably applied; the child resumes here.
  uint64_t resume_seq = 0;
  /// Human-readable rejection reason (empty when accepted).
  std::string message;

  std::string Encode() const;
  static Result<HelloAckFrame> Decode(std::string_view payload);
};

struct ChunkFrame {
  uint64_t chunk_id = 0;
  uint64_t first_seq = 0;
  uint32_t event_count = 0;
  /// SerializeEvents(events, kV4) — the compressed spill codec, reused
  /// verbatim (receivers accept any spill format version, so mixed-version
  /// pairs interoperate).
  std::string events;

  std::string Encode() const;
  static Result<ChunkFrame> Decode(std::string_view payload);
};

struct WalTailFrame {
  uint64_t first_seq = 0;
  uint32_t event_count = 0;
  std::string events;  ///< SerializeEvents, same codec as ChunkFrame

  std::string Encode() const;
  static Result<WalTailFrame> Decode(std::string_view payload);
};

struct AckFrame {
  /// Durable cursor: every event with seq < ack_seq is applied at the parent.
  uint64_t ack_seq = 0;
  /// Highest chunk id covered by ack_seq (0 when none yet).
  uint64_t chunk_id = 0;

  std::string Encode() const;
  static Result<AckFrame> Decode(std::string_view payload);
};

}  // namespace exstream
