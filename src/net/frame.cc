#include "net/frame.h"

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/strings.h"

namespace exstream {

namespace {

bool IsKnownFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kAck);
}

/// Decode() helpers share this epilogue: a payload with trailing bytes is as
/// corrupt as a short one (a well-formed peer never pads).
Status CheckFullyConsumed(const BytesReader& reader, std::string_view what) {
  if (!reader.AtEnd()) {
    return Status::Corruption(StrFormat("%.*s payload has %zu trailing bytes",
                                        static_cast<int>(what.size()),
                                        what.data(), reader.remaining()));
  }
  return Status::OK();
}

}  // namespace

std::string_view FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kHelloAck:
      return "HELLOACK";
    case FrameType::kChunk:
      return "CHUNK";
    case FrameType::kWalTail:
      return "WALTAIL";
    case FrameType::kAck:
      return "ACK";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  BytesWriter w;
  w.Put<uint32_t>(kReplFrameMagic);
  w.Put<uint8_t>(static_cast<uint8_t>(type));
  w.Put<uint32_t>(static_cast<uint32_t>(payload.size()));
  w.Put<uint32_t>(Crc32(payload));
  w.PutRaw(payload);
  return w.Take();
}

void FrameDecoder::Feed(std::string_view data) {
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state feeding is append-only.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data);
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (poisoned_) {
    return Status::Corruption("frame decoder poisoned by an earlier error");
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < kReplFrameHeaderBytes) return std::optional<Frame>();

  BytesReader reader(std::string_view(buf_).substr(pos_));
  const uint32_t magic = reader.Get<uint32_t>().ValueOrDie();
  if (magic != kReplFrameMagic) {
    poisoned_ = true;
    return Status::Corruption(
        StrFormat("bad frame magic 0x%08X (want 0x%08X \"EXRP\")", magic,
                  kReplFrameMagic));
  }
  const uint8_t type_byte = reader.Get<uint8_t>().ValueOrDie();
  if (!IsKnownFrameType(type_byte)) {
    poisoned_ = true;
    return Status::Corruption(
        StrFormat("unknown frame type %u", unsigned{type_byte}));
  }
  const uint32_t payload_len = reader.Get<uint32_t>().ValueOrDie();
  if (payload_len > kReplMaxPayloadBytes) {
    poisoned_ = true;
    return Status::Corruption(StrFormat("frame payload length %u exceeds %u",
                                        payload_len, kReplMaxPayloadBytes));
  }
  const uint32_t want_crc = reader.Get<uint32_t>().ValueOrDie();
  if (avail < kReplFrameHeaderBytes + payload_len) return std::optional<Frame>();

  const std::string_view payload =
      std::string_view(buf_).substr(pos_ + kReplFrameHeaderBytes, payload_len);
  const uint32_t got_crc = Crc32(payload);
  if (got_crc != want_crc) {
    poisoned_ = true;
    return Status::Corruption(
        StrFormat("%.*s frame CRC mismatch (stored 0x%08X, computed 0x%08X)",
                  static_cast<int>(
                      FrameTypeToString(static_cast<FrameType>(type_byte)).size()),
                  FrameTypeToString(static_cast<FrameType>(type_byte)).data(),
                  want_crc, got_crc));
  }
  Frame frame{static_cast<FrameType>(type_byte), std::string(payload)};
  pos_ += kReplFrameHeaderBytes + payload_len;
  return std::optional<Frame>(std::move(frame));
}

// ---------------------------------------------------------------------------

std::string HelloFrame::Encode() const {
  BytesWriter w;
  w.Put<uint32_t>(protocol_version);
  w.PutString(tenant);
  w.PutString(node_id);
  w.Put<uint64_t>(floor_seq);
  return w.Take();
}

Result<HelloFrame> HelloFrame::Decode(std::string_view payload) {
  BytesReader r(payload);
  HelloFrame f;
  EXSTREAM_ASSIGN_OR_RETURN(f.protocol_version, r.Get<uint32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(f.tenant, r.GetString());
  EXSTREAM_ASSIGN_OR_RETURN(f.node_id, r.GetString());
  EXSTREAM_ASSIGN_OR_RETURN(f.floor_seq, r.Get<uint64_t>());
  EXSTREAM_RETURN_NOT_OK(CheckFullyConsumed(r, "HELLO"));
  return f;
}

std::string HelloAckFrame::Encode() const {
  BytesWriter w;
  w.Put<uint32_t>(protocol_version);
  w.Put<uint8_t>(accepted ? 1 : 0);
  w.Put<uint64_t>(resume_seq);
  w.PutString(message);
  return w.Take();
}

Result<HelloAckFrame> HelloAckFrame::Decode(std::string_view payload) {
  BytesReader r(payload);
  HelloAckFrame f;
  EXSTREAM_ASSIGN_OR_RETURN(f.protocol_version, r.Get<uint32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint8_t accepted, r.Get<uint8_t>());
  if (accepted > 1) {
    return Status::Corruption(
        StrFormat("HELLOACK accepted byte is %u (want 0/1)", unsigned{accepted}));
  }
  f.accepted = accepted == 1;
  EXSTREAM_ASSIGN_OR_RETURN(f.resume_seq, r.Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(f.message, r.GetString());
  EXSTREAM_RETURN_NOT_OK(CheckFullyConsumed(r, "HELLOACK"));
  return f;
}

std::string ChunkFrame::Encode() const {
  BytesWriter w;
  w.Put<uint64_t>(chunk_id);
  w.Put<uint64_t>(first_seq);
  w.Put<uint32_t>(event_count);
  w.PutString(events);
  return w.Take();
}

Result<ChunkFrame> ChunkFrame::Decode(std::string_view payload) {
  BytesReader r(payload);
  ChunkFrame f;
  EXSTREAM_ASSIGN_OR_RETURN(f.chunk_id, r.Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(f.first_seq, r.Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(f.event_count, r.Get<uint32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(f.events, r.GetString());
  EXSTREAM_RETURN_NOT_OK(CheckFullyConsumed(r, "CHUNK"));
  return f;
}

std::string WalTailFrame::Encode() const {
  BytesWriter w;
  w.Put<uint64_t>(first_seq);
  w.Put<uint32_t>(event_count);
  w.PutString(events);
  return w.Take();
}

Result<WalTailFrame> WalTailFrame::Decode(std::string_view payload) {
  BytesReader r(payload);
  WalTailFrame f;
  EXSTREAM_ASSIGN_OR_RETURN(f.first_seq, r.Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(f.event_count, r.Get<uint32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(f.events, r.GetString());
  EXSTREAM_RETURN_NOT_OK(CheckFullyConsumed(r, "WALTAIL"));
  return f;
}

std::string AckFrame::Encode() const {
  BytesWriter w;
  w.Put<uint64_t>(ack_seq);
  w.Put<uint64_t>(chunk_id);
  return w.Take();
}

Result<AckFrame> AckFrame::Decode(std::string_view payload) {
  BytesReader r(payload);
  AckFrame f;
  EXSTREAM_ASSIGN_OR_RETURN(f.ack_seq, r.Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(f.chunk_id, r.Get<uint64_t>());
  EXSTREAM_RETURN_NOT_OK(CheckFullyConsumed(r, "ACK"));
  return f;
}

}  // namespace exstream
