// ReplicationReceiver: the parent half of parent/child replication.
//
// Listens on loopback TCP, accepts one child session at a time, decodes EXRP
// frames (net/frame.h), and applies replicated events to the parent
// XStreamSystem through its ordinary OnEventBatch path — so the parent's
// engine state, archive chunks (spill v3 and all), and Explain output are
// bit-identical to a single-node system fed the same stream.
//
// Exactly-once without a chunk-id ledger: the receiver keeps a single seq
// *watermark* — the next event it has not applied. Everything below it is
// discarded (CHUNK retransmits after a reconnect, the WALTAIL/CHUNK overlap),
// everything at it is applied and advances it, and a frame starting above it
// is a *gap*: events the child shed during an outage. Gaps are counted,
// folded into the parent's DegradationReport (XStreamSystem::AddExternalShed,
// so a parent-side Explain discloses the loss), and persisted in a tiny state
// file so the watermark stays honest across parent restarts even though the
// parent's own WAL never saw the missing seqs.
//
// ACKs carry the watermark after the parent's WAL has fsynced the applied
// events (sync_wal_before_ack), so a child treating ACK as "durable at
// parent" survives a parent crash: on restart the watermark is rebuilt as
// (recovered parent seq + persisted gap total) and the HELLOACK tells the
// child exactly where to resume.
//
// The parent system should run with queue_capacity == 0 (synchronous apply):
// the ACK must not race ahead of the apply.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "event/event.h"
#include "net/frame.h"
#include "net/socket.h"

namespace exstream {

class XStreamSystem;

struct ReplicationReceiverOptions {
  /// Listening port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// HELLOs for any other tenant are rejected.
  std::string tenant = "default";
  /// Per-recv idle timeout inside a session; bounds Stop() latency.
  int io_timeout_ms = 2000;
  /// If set, the cumulative gap total (child-shed events) is persisted here
  /// so the resume watermark survives parent restarts.
  std::optional<std::string> state_path;
  /// Fsync the parent WAL before each ACK, making the ACK a durability
  /// promise rather than a memory promise. No-op when the parent has no WAL.
  bool sync_wal_before_ack = true;
};

class ReplicationReceiver {
 public:
  /// `system` must outlive the receiver and should be fully recovered
  /// (Recover()) before Start(), so the initial watermark is correct.
  ReplicationReceiver(XStreamSystem* system, ReplicationReceiverOptions options);
  ~ReplicationReceiver();

  ReplicationReceiver(const ReplicationReceiver&) = delete;
  ReplicationReceiver& operator=(const ReplicationReceiver&) = delete;

  /// Binds the listener and starts the accept thread.
  Status Start();
  void Stop();

  /// Actual listening port (after an ephemeral bind).
  uint16_t port() const { return port_; }

  /// Next seq not yet durably applied (child seq space).
  uint64_t watermark() const;

  struct Stats {
    uint64_t sessions = 0;
    uint64_t hellos_rejected = 0;
    uint64_t chunks_applied = 0;      ///< CHUNK frames with >= 1 fresh event
    uint64_t tail_frames_applied = 0; ///< WALTAIL frames with >= 1 fresh event
    uint64_t events_applied = 0;
    uint64_t events_deduped = 0;      ///< below-watermark events discarded
    uint64_t gap_events = 0;          ///< child-shed events (watermark jumps)
    uint64_t acks_sent = 0;
    uint64_t frame_errors = 0;        ///< sessions ended by bad frames
  };
  Stats stats() const;

 private:
  void AcceptLoop();
  void ServeSession(TcpSocket sock);
  /// Handles one decoded frame; a returned error ends the session.
  Status HandleFrame(TcpSocket* sock, const Frame& frame, bool* hello_done);
  /// Watermark-dedupes and applies one event run starting at `first_seq`.
  /// `is_chunk` attributes the frame in stats (CHUNK vs WALTAIL).
  Status ApplyEvents(uint64_t first_seq, std::vector<Event> events,
                     bool is_chunk);
  Status SendAck(TcpSocket* sock);
  Status LoadGapTotal();
  Status PersistGapTotal();

  XStreamSystem* system_;  // not owned
  const ReplicationReceiverOptions options_;
  TcpListener listener_;
  uint16_t port_ = 0;

  mutable std::mutex mu_;
  uint64_t watermark_ = 0;
  uint64_t gap_total_ = 0;      ///< lifetime child-shed events (persisted)
  uint64_t last_chunk_id_ = 0;  ///< highest applied chunk id, echoed in ACKs
  Stats stats_;

  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace exstream
