// ReplicationReceiver: the parent half of parent/child replication.
//
// Listens on loopback TCP and accepts N concurrent child sessions, each on
// its own thread. A session is identified by (tenant, node_id) from its
// HELLO; the tenant resolves through a TenantHub to that tenant's own
// XStreamSystem, so events of different tenants never co-mingle in archive
// chunks, match tables, or Explain results. Decoded EXRP frames (net/frame.h)
// apply through the tenant system's ordinary OnEventBatch path — the parent's
// engine state, archive chunks, and Explain output for a tenant are
// bit-identical to a single-node system fed the same per-child streams.
//
// Exactly-once per identity: each (tenant, child) owns its own seq space and
// *watermark* — the next seq not yet accounted for — kept in a ReplLedger
// (net/repl_ledger.h). Below the watermark is discarded (retransmits, the
// WALTAIL/CHUNK overlap); at it applies and advances it; above it is a *gap*:
// events the child shed during an outage, counted, folded into that tenant's
// DegradationReport (XStreamSystem::AddExternalShed), and persisted.
//
// Sync-then-ack: a frame's events are applied only after the ledger durably
// records a pending marker; the ACK leaves only after the tenant's WAL has
// fsynced AND the advanced ledger is durably rewritten (atomic temp + fsync +
// rename + directory fsync). A crash between any two steps reconciles on
// restart — the ledger can trail the WAL, never lead an ACK.
//
// Admission: per-tenant quotas (TenantHub) shed over-quota frames at the
// parent — the watermark still advances and the frame is ACKed (the child
// must not retry a frame the parent chose to drop), and the shed count is
// disclosed only through the owning tenant's fault_stats()/Explain.
//
// Concurrency: sessions of one tenant serialize on the hub's per-tenant
// apply lock; different tenants apply in parallel. A second HELLO for a live
// identity supersedes the old session (takeover: the dead socket of a
// kill -9'd child must not block its own reconnect); session threads reap
// promptly on recv-EOF/reset. Tenant systems should run with
// queue_capacity == 0 (synchronous apply): the ACK must not race the apply.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "event/event.h"
#include "net/frame.h"
#include "net/repl_ledger.h"
#include "net/socket.h"

namespace exstream {

class TenantHub;
class XStreamSystem;

struct ReplicationReceiverOptions {
  /// Listening port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Single-system mode only (the XStreamSystem* constructor): the one
  /// tenant served; HELLOs for any other tenant are rejected. Ignored when a
  /// TenantHub is supplied — the hub's registry decides.
  std::string tenant = "default";
  /// Per-recv idle timeout inside a session; bounds Stop() latency.
  int io_timeout_ms = 2000;
  /// If set, the per-(tenant, child) ledger (watermarks, gap totals, quota
  /// sheds) persists here so resume watermarks survive parent restarts.
  std::optional<std::string> state_path;
  /// Fsync the parent WAL before each ACK, making the ACK a durability
  /// promise rather than a memory promise. No-op when the parent has no WAL.
  bool sync_wal_before_ack = true;
  /// Concurrent session cap; connections past it are closed immediately.
  size_t max_sessions = 64;
};

class ReplicationReceiver {
 public:
  /// Single-system mode: serves exactly `options.tenant` on `system` (an
  /// internal one-tenant hub). `system` must outlive the receiver and be
  /// fully recovered (Recover()) before Start().
  ReplicationReceiver(XStreamSystem* system, ReplicationReceiverOptions options);

  /// Fan-in mode: serves every tenant registered in `hub` (not owned; its
  /// tenants' systems must be recovered before Start()).
  ReplicationReceiver(TenantHub* hub, ReplicationReceiverOptions options);

  ~ReplicationReceiver();

  ReplicationReceiver(const ReplicationReceiver&) = delete;
  ReplicationReceiver& operator=(const ReplicationReceiver&) = delete;

  /// Loads + reconciles the ledger, binds the listener, starts accepting.
  Status Start();
  void Stop();

  /// Actual listening port (after an ephemeral bind).
  uint16_t port() const { return port_; }

  /// Aggregate watermark across every (tenant, child): for a single-child
  /// receiver this is exactly the child's next un-applied seq.
  uint64_t watermark() const;

  /// One identity's watermark (0 when unknown).
  uint64_t watermark(const std::string& tenant, const std::string& child) const;

  TenantHub* hub() { return hub_; }

  struct Stats {
    uint64_t sessions = 0;            ///< connections accepted
    uint64_t hellos_rejected = 0;
    uint64_t chunks_applied = 0;      ///< CHUNK frames with >= 1 fresh event
    uint64_t tail_frames_applied = 0; ///< WALTAIL frames with >= 1 fresh event
    uint64_t events_applied = 0;
    uint64_t events_deduped = 0;      ///< below-watermark events discarded
    uint64_t gap_events = 0;          ///< child-shed events (watermark jumps)
    uint64_t acks_sent = 0;
    uint64_t frame_errors = 0;        ///< sessions ended by bad frames
    uint64_t sessions_superseded = 0; ///< sessions ended by a takeover HELLO
    uint64_t sessions_rejected = 0;   ///< connections refused at max_sessions
    uint64_t quota_shed_events = 0;   ///< over-quota events shed (all tenants)
    uint64_t live_sessions = 0;       ///< session threads currently serving
  };
  Stats stats() const;

  struct SessionInfo {
    std::string tenant;
    std::string child;
    uint64_t watermark = 0;
    bool live = false;  ///< a session currently owns this identity
  };
  /// Every identity the ledger knows, with liveness from the session registry.
  std::vector<SessionInfo> sessions() const;

  struct Session;  // one connection's state (internal; see .cc)

  /// \brief Socket-free session driver: feeds raw wire bytes through the same
  /// per-session decode/handshake/apply path a TCP session uses, collecting
  /// response frames in out(). The fuzz harness interleaves several drivers
  /// against one receiver to prove session confusion poisons only the
  /// offending session; protocol tests use it to inspect HELLOACKs directly.
  class SessionDriver {
   public:
    explicit SessionDriver(ReplicationReceiver* receiver);
    ~SessionDriver();

    SessionDriver(const SessionDriver&) = delete;
    SessionDriver& operator=(const SessionDriver&) = delete;

    /// Feeds bytes as if they arrived on the socket. After the first error
    /// the session is ended and further bytes are ignored (returns the
    /// original error), exactly like a dropped connection.
    Status Feed(std::string_view bytes);

    bool ended() const { return !status_.ok(); }
    const Status& status() const { return status_; }
    const std::string& out() const { return out_; }
    void ClearOut() { out_.clear(); }

   private:
    ReplicationReceiver* receiver_;
    std::unique_ptr<Session> session_;
    std::string out_;
    Status status_;
  };

 private:
  friend class SessionDriver;
  struct SessionThread;

  /// Ledger load + per-tenant reconcile + historical shed disclosure. Runs
  /// once (Start() and SessionDriver share it).
  Status EnsureStateLoaded();
  void AcceptLoop();
  void ServeSession(TcpSocket sock);
  void ReapFinishedSessions();
  /// Handles one decoded frame; response frames append to `out`. A returned
  /// error ends the session.
  Status HandleFrame(Session* s, const Frame& frame, std::string* out);
  Status HandleHello(Session* s, const Frame& frame, std::string* out);
  /// Watermark-dedupes, quota-checks, and applies one event run.
  Status ApplyEvents(Session* s, uint64_t first_seq, std::vector<Event> events,
                     bool is_chunk, size_t wire_bytes);
  /// SyncWal + durable ledger commit + ACK frame (sync-then-ack).
  Status AppendAck(Session* s, std::string* out);
  /// True while `s` still owns its identity (no takeover HELLO arrived).
  bool SessionCurrent(const Session* s) const;
  void ReleaseSession(Session* s);

  TenantHub* hub_;                        // registry (owned_hub_ or external)
  std::unique_ptr<TenantHub> owned_hub_;  // single-system mode only
  const ReplicationReceiverOptions options_;
  ReplLedger ledger_;
  TcpListener listener_;
  uint16_t port_ = 0;

  mutable std::mutex mu_;  ///< stats, session registry, state_loaded_
  bool state_loaded_ = false;
  Stats stats_;
  /// identity -> epoch of the session that owns it; a takeover bumps the
  /// epoch and the old session exits at its next frame/idle check.
  std::map<std::pair<std::string, std::string>, uint64_t> session_epochs_;
  uint64_t next_epoch_ = 1;
  /// Highest applied chunk id per identity, echoed in ACKs. In-memory only.
  std::map<std::pair<std::string, std::string>, uint64_t> last_chunk_ids_;

  std::atomic<bool> stop_{false};
  std::atomic<size_t> live_sessions_{0};
  std::thread accept_thread_;
  std::mutex threads_mu_;
  std::vector<std::unique_ptr<SessionThread>> session_threads_;
};

}  // namespace exstream
