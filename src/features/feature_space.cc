#include "features/feature_space.h"

#include <algorithm>

#include "common/strings.h"

namespace exstream {

std::vector<FeatureSpec> GenerateFeatureSpecs(const EventTypeRegistry& registry,
                                              const FeatureSpaceOptions& options) {
  std::vector<FeatureSpec> specs;
  for (EventTypeId t = 0; t < registry.size(); ++t) {
    const EventSchema& schema = registry.schema(t);
    if (std::find(options.exclude_event_types.begin(),
                  options.exclude_event_types.end(),
                  schema.name()) != options.exclude_event_types.end()) {
      continue;
    }
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const AttributeDef& attr = schema.attributes()[a];
      if (attr.type == ValueType::kString) continue;  // only numeric features
      if (std::find(options.exclude_attributes.begin(),
                    options.exclude_attributes.end(),
                    attr.name) != options.exclude_attributes.end()) {
        continue;
      }
      FeatureSpec base;
      base.type = t;
      base.attr_index = a;
      base.event_type_name = schema.name();
      base.attribute_name = attr.name;
      if (options.include_raw) {
        FeatureSpec raw = base;
        raw.agg = AggregateKind::kRaw;
        raw.window = 0;
        specs.push_back(raw);
      }
      for (const Timestamp w : options.windows) {
        for (const AggregateKind agg : options.aggregates) {
          FeatureSpec s = base;
          s.agg = agg;
          s.window = w;
          specs.push_back(s);
        }
      }
    }
  }
  return specs;
}

Result<FeatureSpec> FindSpecByName(const std::vector<FeatureSpec>& specs,
                                   std::string_view name) {
  for (const FeatureSpec& s : specs) {
    if (s.Name() == name) return s;
  }
  return Status::NotFound(StrFormat("no feature spec named '%.*s'",
                                    static_cast<int>(name.size()), name.data()));
}

}  // namespace exstream
