// IncrementalFeatureState: the in-memory recent-interval tail that lets
// FeatureBuilder answer sliding-window feature requests without archive
// scans (ROADMAP "close the loop": continuous explanation serving).
//
// As batches apply, each event type's recent events accumulate in a columnar
// tail. A feature build over an interval whose lower bound is at or above the
// tail's coverage floor is served entirely from memory; an interval that
// starts earlier backfills the cold prefix from the archive and takes the
// tail for the rest. Both paths produce byte-identical rows to a full
// archive scan (same append order, same columnar fold), so explanations are
// bit-identical whichever path answered — the same contract PR 4's
// use_legacy_row_scan A/B established for view-vs-row scans.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "archive/archive.h"
#include "archive/columns.h"
#include "common/result.h"
#include "event/event.h"
#include "event/registry.h"

namespace exstream {

/// \brief Per-event-type recent columnar tails with coverage accounting.
///
/// Thread model: one applying thread calls OnEvent/OnEventBatch; any number
/// of explanation threads call ScanRecent/ScanWithBackfill concurrently.
/// State is sharded per type with one mutex each, so an Explain snapshotting
/// one type's tail never stalls ingest of another type.
class IncrementalFeatureState {
 public:
  /// \param retention keep at most this much trailing time per type (0 =
  ///        unbounded). Evicted rows lower nothing but the coverage floor:
  ///        requests reaching below it transparently backfill from the
  ///        archive.
  explicit IncrementalFeatureState(const EventTypeRegistry* registry,
                                   Timestamp retention = 0);

  /// Ingest hooks (applying thread). Must see exactly the events the archive
  /// sees, in the same order — XStreamSystem::ApplyBatch feeds both.
  void OnEvent(const Event& event);
  void OnEventBatch(const EventBatch& batch);

  /// \brief Declares that the archive holds data this state never saw
  /// (checkpoint restore). The next event of each type then establishes a
  /// conservative coverage floor *above* its own timestamp, because archived
  /// external events may share it.
  void MarkExternalData();

  /// Drops all tails and coverage floors (Recover on a fresh system).
  void Reset();

  /// \brief Serves `interval` for `type` from the tail when covered,
  /// backfilling the cold prefix from `archive` otherwise. Exact rows only
  /// (resolution 0); callers wanting tiered scans go straight to the archive.
  ///
  /// The returned view's rows are byte-identical, in order, to
  /// `archive.ScanColumns(type, interval, ..., 0)`: the tail holds the same
  /// events in the same append order, and the cold scan covers strictly
  /// earlier timestamps than the tail segment appended after it.
  Result<ScanView> ScanWithBackfill(const EventArchive& archive, EventTypeId type,
                                    const TimeInterval& interval,
                                    DegradationReport* degradation = nullptr,
                                    const CancelToken* cancel = nullptr) const;

  Timestamp retention() const { return retention_; }

  /// Serving counters (monitoring / bench surface).
  struct Stats {
    uint64_t full_hits = 0;      ///< scans served entirely from memory
    uint64_t partial_hits = 0;   ///< scans that mixed tail + archive backfill
    uint64_t misses = 0;         ///< scans that fell through to the archive
    uint64_t events_buffered = 0;///< events currently held across all tails
    uint64_t events_evicted = 0; ///< rows dropped by retention (lifetime)
    uint64_t disorder_resets = 0;///< tails poisoned by out-of-order events
  };
  Stats stats() const;

 private:
  /// One event type's tail. `cols` rows [start, rows) are live; rows before
  /// `start` were evicted by retention and ignored (they sit below `floor`,
  /// so scans never reach them). Invariant: when `has_floor`, the live rows
  /// are exactly the archived events of this type with ts >= floor, in
  /// archive append order, with non-decreasing ts.
  struct TypeTail {
    mutable std::mutex mu;
    ChunkColumns cols;
    size_t start = 0;
    bool has_floor = false;
    Timestamp floor = 0;
    /// Largest event timestamp ever observed for the type (poison target:
    /// after an out-of-order event the tail restarts above everything seen).
    Timestamp max_ts_seen = 0;
  };

  void Ingest(TypeTail* tail, const Event& event);
  void EvictLocked(TypeTail* tail);

  const EventTypeRegistry* registry_;  // not owned
  Timestamp retention_ = 0;
  /// Set by MarkExternalData: types without a floor yet must start theirs
  /// one past their first event (equal-timestamp external rows may exist).
  std::atomic<bool> external_data_{false};
  std::vector<std::unique_ptr<TypeTail>> tails_;  // indexed by EventTypeId

  mutable std::atomic<uint64_t> full_hits_{0};
  mutable std::atomic<uint64_t> partial_hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> events_buffered_{0};
  std::atomic<uint64_t> events_evicted_{0};
  std::atomic<uint64_t> disorder_resets_{0};
};

}  // namespace exstream
