// FeatureBuilder: materializes features over an interval from the archive
// (the "feature generation" stage of the explanation module, Fig. 19b).

#pragma once

#include <vector>

#include "archive/archive.h"
#include "common/deadline.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "features/feature.h"
#include "features/incremental.h"

namespace exstream {

/// \brief Builds feature time series by replaying archived events.
///
/// Events of each (type, attribute) pair are scanned once per interval and
/// shared across all aggregates/windows derived from that pair, so the
/// archive read amplification is independent of the feature-space size.
///
/// By default scans go through the archive's columnar ScanView path: raw
/// series are folded straight off pinned ts/value column spans, with no
/// per-event materialization. `use_legacy_row_scan` switches to the row
/// `Scan` shim — same output bit for bit, kept as the A/B baseline for
/// determinism tests and benchmarks.
///
/// With `recent` set, exact-resolution scans are answered from the
/// incremental in-memory tail when it covers the interval (archive scans
/// remain the backfill for cold prefixes). Rows are byte-identical either
/// way, so features — and the explanations built from them — do not change;
/// tiered scans and the legacy row path always go straight to the archive.
class FeatureBuilder {
 public:
  explicit FeatureBuilder(const EventArchive* archive,
                          bool use_legacy_row_scan = false,
                          const IncrementalFeatureState* recent = nullptr)
      : archive_(archive),
        use_legacy_row_scan_(use_legacy_row_scan),
        recent_(recent) {}

  /// \brief Materializes each spec over `interval`.
  ///
  /// Features whose underlying attribute produced no samples in the interval
  /// are still returned (with an empty series); downstream reward computation
  /// treats empty-vs-nonempty contrast via count features.
  ///
  /// When `pool` is non-null, the three stages (archive scans, raw-series
  /// derivation, per-spec aggregation) each fan out over the pool. Every
  /// stage writes into index-addressed slots, so the output is identical to
  /// the serial run regardless of thread count.
  ///
  /// `cancel`, when non-null, is polled cooperatively inside and between the
  /// stages; an expired token makes Build return Status::DeadlineExceeded
  /// with the stage reached. `degradation`, when non-null, accumulates what
  /// the underlying archive scans had to skip (quarantined chunks).
  ///
  /// `allow_tiers` lets scans be answered from the archive's downsampled
  /// tiers: each event type's fixed-window aggregate specs share a scan that
  /// declares the gcd of their windows as its resolution, and sealed chunks
  /// carrying an aligned tier contribute pre-aggregated windows instead of
  /// raw rows (no spill read, no row folding). Raw specs (and non-positive
  /// windows) scan separately at exact resolution, so a feature space that
  /// mixes raw and windowed features still tiers the windowed ones. Tiered
  /// aggregation uses absolute-aligned windows, so results can differ from
  /// the default series-anchored windows — callers opt in per scan (e.g.
  /// reference-interval pools) and never for the abnormal interval, whose
  /// explanation must be bit-identical to raw. A scan whose chunks carry no
  /// aligned tier silently takes the exact path.
  Result<std::vector<Feature>> Build(const std::vector<FeatureSpec>& specs,
                                     const TimeInterval& interval,
                                     ThreadPool* pool = nullptr,
                                     const CancelToken* cancel = nullptr,
                                     DegradationReport* degradation = nullptr,
                                     bool allow_tiers = false) const;

  /// \brief Materializes one spec over `interval`.
  Result<Feature> BuildOne(const FeatureSpec& spec, const TimeInterval& interval) const;

 private:
  const EventArchive* archive_;  // not owned
  bool use_legacy_row_scan_ = false;
  const IncrementalFeatureState* recent_ = nullptr;  // not owned, may be null
};

}  // namespace exstream
