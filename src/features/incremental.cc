#include "features/incremental.h"

#include <algorithm>
#include <utility>

namespace exstream {

IncrementalFeatureState::IncrementalFeatureState(const EventTypeRegistry* registry,
                                                 Timestamp retention)
    : registry_(registry), retention_(retention) {
  tails_.reserve(registry_->size());
  for (EventTypeId id = 0; id < registry_->size(); ++id) {
    auto tail = std::make_unique<TypeTail>();
    tail->cols = ChunkColumns(id, &registry_->schema(id));
    tails_.push_back(std::move(tail));
  }
}

void IncrementalFeatureState::OnEvent(const Event& event) {
  if (event.type >= tails_.size()) return;
  TypeTail& tail = *tails_[event.type];
  std::lock_guard<std::mutex> lock(tail.mu);
  Ingest(&tail, event);
  EvictLocked(&tail);
}

void IncrementalFeatureState::OnEventBatch(const EventBatch& batch) {
  for (const Event& event : batch) OnEvent(event);
}

void IncrementalFeatureState::MarkExternalData() {
  external_data_.store(true, std::memory_order_relaxed);
}

void IncrementalFeatureState::Reset() {
  for (EventTypeId id = 0; id < tails_.size(); ++id) {
    TypeTail& tail = *tails_[id];
    std::lock_guard<std::mutex> lock(tail.mu);
    tail.cols = ChunkColumns(id, &registry_->schema(id));
    tail.start = 0;
    tail.has_floor = false;
    tail.floor = 0;
    tail.max_ts_seen = 0;
  }
  events_buffered_.store(0, std::memory_order_relaxed);
  external_data_.store(false, std::memory_order_relaxed);
}

void IncrementalFeatureState::Ingest(TypeTail* tail, const Event& event) {
  if (!tail->has_floor) {
    // External (checkpoint-restored) events may share this event's timestamp,
    // so coverage can only be claimed strictly above it in that case.
    tail->floor =
        external_data_.load(std::memory_order_relaxed) ? event.ts + 1 : event.ts;
    tail->has_floor = true;
    tail->max_ts_seen = event.ts;
  }
  tail->max_ts_seen = std::max(tail->max_ts_seen, event.ts);
  if (event.ts < tail->floor) return;  // below coverage: archive-only
  const bool live = tail->cols.rows() > tail->start;
  if (live && event.ts < tail->cols.ts().back()) {
    // Out-of-order inside the covered span. The archive may accept such an
    // event (a freshly sealed chunk's first append is unchecked), so the tail
    // cannot stay both sorted and complete — restart coverage above
    // everything seen so far and leave the disputed range to archive scans.
    const size_t dropped = tail->cols.rows() - tail->start;
    tail->cols = ChunkColumns(tail->cols.type(),
                              &registry_->schema(tail->cols.type()));
    tail->start = 0;
    tail->floor = tail->max_ts_seen + 1;
    events_buffered_.fetch_sub(dropped, std::memory_order_relaxed);
    disorder_resets_.fetch_add(1, std::memory_order_relaxed);
    return;  // event.ts < new floor by construction
  }
  tail->cols.AppendEvent(event);
  events_buffered_.fetch_add(1, std::memory_order_relaxed);
}

void IncrementalFeatureState::EvictLocked(TypeTail* tail) {
  if (retention_ <= 0 || tail->cols.rows() <= tail->start) return;
  const Timestamp cut = tail->cols.ts().back() - retention_;
  if (cut <= tail->floor) return;
  const std::vector<Timestamp>& ts = tail->cols.ts();
  size_t start = tail->start;
  while (start < ts.size() && ts[start] < cut) ++start;
  if (start == tail->start) {
    // No row evicted, but the floor still rises: coverage below `cut` is no
    // longer promised once retention passes it (keeps Serve semantics stable
    // whether or not rows happened to exist there).
    tail->floor = cut;
    return;
  }
  events_evicted_.fetch_add(start - tail->start, std::memory_order_relaxed);
  events_buffered_.fetch_sub(start - tail->start, std::memory_order_relaxed);
  tail->start = start;
  tail->floor = cut;
  // Compact once the dead prefix dominates; amortized O(1) per append.
  if (tail->start * 2 > tail->cols.rows()) {
    tail->cols = tail->cols.Slice(tail->start, tail->cols.rows());
    tail->start = 0;
  }
}

Result<ScanView> IncrementalFeatureState::ScanWithBackfill(
    const EventArchive& archive, EventTypeId type, const TimeInterval& interval,
    DegradationReport* degradation, const CancelToken* cancel) const {
  const TypeTail* tail = type < tails_.size() ? tails_[type].get() : nullptr;
  if (tail != nullptr) {
    std::unique_lock<std::mutex> lock(tail->mu);
    if (tail->has_floor && interval.lower >= tail->floor) {
      // Entire interval covered by the tail: one deep-copied segment (the
      // same cost class as the archive's open-tail snapshot), no archive
      // locks, no spill I/O.
      const auto [lo, hi] = tail->cols.RowRange(interval);
      ScanView view;
      if (hi > lo) {
        auto cols = std::make_shared<ChunkColumns>(tail->cols.Slice(lo, hi));
        const size_t n = cols->rows();
        view.segments.push_back(ScanView::Segment{std::move(cols), 0, n, 0});
      }
      full_hits_.fetch_add(1, std::memory_order_relaxed);
      return view;
    }
    if (tail->has_floor && interval.upper >= tail->floor) {
      // The tail covers [floor, upper]; backfill [lower, floor-1] from the
      // archive. Archive rows there are strictly older than every tail row,
      // so appending the tail segment last keeps global time order.
      const Timestamp floor = tail->floor;
      const auto [lo, hi] =
          tail->cols.RowRange(TimeInterval{floor, interval.upper});
      std::shared_ptr<ChunkColumns> cols;
      if (hi > lo) {
        cols = std::make_shared<ChunkColumns>(tail->cols.Slice(lo, hi));
      }
      lock.unlock();
      EXSTREAM_ASSIGN_OR_RETURN(
          ScanView view,
          archive.ScanColumns(type, TimeInterval{interval.lower, floor - 1},
                              degradation, cancel, /*resolution=*/0));
      if (cols != nullptr) {
        const size_t n = cols->rows();
        view.segments.push_back(
            ScanView::Segment{std::move(cols), 0, n, view.segments.size()});
      }
      partial_hits_.fetch_add(1, std::memory_order_relaxed);
      return view;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return archive.ScanColumns(type, interval, degradation, cancel, /*resolution=*/0);
}

IncrementalFeatureState::Stats IncrementalFeatureState::stats() const {
  Stats s;
  s.full_hits = full_hits_.load(std::memory_order_relaxed);
  s.partial_hits = partial_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.events_buffered = events_buffered_.load(std::memory_order_relaxed);
  s.events_evicted = events_evicted_.load(std::memory_order_relaxed);
  s.disorder_resets = disorder_resets_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace exstream
