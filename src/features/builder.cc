#include "features/builder.h"

#include <map>

namespace exstream {

namespace {

// Builds the raw (type, attribute) series from a scanned event vector.
TimeSeries RawSeries(const std::vector<Event>& events, size_t attr_index) {
  TimeSeries out;
  for (const Event& e : events) {
    if (attr_index >= e.values.size()) continue;
    // Append drops NaN; out-of-order cannot occur because Scan returns
    // time-ordered events.
    (void)out.Append(e.ts, e.values[attr_index].AsDouble());
  }
  return out;
}

// Count (frequency) features are defined over the *query interval*, not the
// series' own span: a window with no events is a real observation (count 0).
// This is what lets a fully silent sensor (the supply-chain "missing
// monitoring" anomaly) produce a maximally separating frequency feature
// instead of an empty series.
Result<TimeSeries> CountOverInterval(const TimeSeries& raw, Timestamp window,
                                     const TimeInterval& interval) {
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  TimeSeries out;
  const auto& times = raw.times();
  size_t idx = 0;
  for (Timestamp wstart = interval.lower; wstart <= interval.upper; wstart += window) {
    const Timestamp wend = wstart + window;
    while (idx < times.size() && times[idx] < wstart) ++idx;
    size_t hi = idx;
    while (hi < times.size() && times[hi] < wend) ++hi;
    EXSTREAM_RETURN_NOT_OK(out.Append(wend, static_cast<double>(hi - idx)));
    idx = hi;
  }
  return out;
}

}  // namespace

Result<std::vector<Feature>> FeatureBuilder::Build(const std::vector<FeatureSpec>& specs,
                                                   const TimeInterval& interval) const {
  // Scan each referenced event type once.
  std::map<EventTypeId, std::vector<Event>> scans;
  for (const FeatureSpec& s : specs) {
    if (scans.count(s.type) == 0) {
      EXSTREAM_ASSIGN_OR_RETURN(std::vector<Event> events,
                                archive_->Scan(s.type, interval));
      scans.emplace(s.type, std::move(events));
    }
  }
  // Derive each (type, attr) raw series once.
  std::map<std::pair<EventTypeId, size_t>, TimeSeries> raws;
  for (const FeatureSpec& s : specs) {
    const auto key = std::make_pair(s.type, s.attr_index);
    if (raws.count(key) == 0) {
      raws.emplace(key, RawSeries(scans.at(s.type), s.attr_index));
    }
  }

  std::vector<Feature> out;
  out.reserve(specs.size());
  for (const FeatureSpec& s : specs) {
    const TimeSeries& raw = raws.at(std::make_pair(s.type, s.attr_index));
    Feature f;
    f.spec = s;
    if (s.agg == AggregateKind::kRaw) {
      f.series = raw;
    } else if (s.agg == AggregateKind::kCount) {
      EXSTREAM_ASSIGN_OR_RETURN(f.series, CountOverInterval(raw, s.window, interval));
    } else {
      EXSTREAM_ASSIGN_OR_RETURN(f.series, ApplyWindowAggregate(raw, s.agg, s.window));
    }
    out.push_back(std::move(f));
  }
  return out;
}

Result<Feature> FeatureBuilder::BuildOne(const FeatureSpec& spec,
                                         const TimeInterval& interval) const {
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Feature> feats,
                            Build(std::vector<FeatureSpec>{spec}, interval));
  return std::move(feats.front());
}

}  // namespace exstream
