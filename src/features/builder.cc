#include "features/builder.h"

#include "common/strings.h"

namespace exstream {

namespace {

// Builds the raw (type, attribute) series from a scanned event vector.
TimeSeries RawSeries(const std::vector<Event>& events, size_t attr_index) {
  TimeSeries out;
  out.Reserve(events.size());
  for (const Event& e : events) {
    if (attr_index >= e.values.size()) continue;
    // Append drops NaN; out-of-order cannot occur because Scan returns
    // time-ordered events.
    (void)out.Append(e.ts, e.values[attr_index].AsDouble());
  }
  return out;
}

// Builds the raw (type, attribute) series straight off column spans: a walk
// over the pinned ts array and the attribute's contiguous numeric view, no
// Event materialization. Matches RawSeries bit for bit: a missing tag is the
// rows-with-fewer-values case RawSeries skips, and `nums` holds the same
// AsDouble conversion (NaN for strings, which Append drops either way).
TimeSeries RawSeriesFromView(const ScanView& view, size_t attr_index) {
  TimeSeries out;
  out.Reserve(view.rows());
  for (const ScanView::Segment& seg : view.segments) {
    const ChunkColumns& cols = *seg.columns;
    if (attr_index >= cols.num_columns()) continue;
    const AttributeColumn& col = cols.attr(attr_index);
    // Segments arrive in time order with sorted ts columns, so the whole
    // range bulk-appends; missing tags and NaN (string) values are skipped
    // inside, matching Append's per-sample drops bit for bit.
    out.AppendColumnRange(cols.ts().data() + seg.begin,
                          col.nums.data() + seg.begin,
                          col.tags.data() + seg.begin, kMissingValueTag,
                          seg.end - seg.begin);
  }
  return out;
}

// Count (frequency) features are defined over the *query interval*, not the
// series' own span: a window with no events is a real observation (count 0).
// This is what lets a fully silent sensor (the supply-chain "missing
// monitoring" anomaly) produce a maximally separating frequency feature
// instead of an empty series.
Result<TimeSeries> CountOverInterval(const TimeSeries& raw, Timestamp window,
                                     const TimeInterval& interval) {
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  TimeSeries out;
  out.Reserve(static_cast<size_t>((interval.upper - interval.lower) / window) + 1);
  const auto& times = raw.times();
  size_t idx = 0;
  for (Timestamp wstart = interval.lower; wstart <= interval.upper; wstart += window) {
    const Timestamp wend = wstart + window;
    while (idx < times.size() && times[idx] < wstart) ++idx;
    size_t hi = idx;
    while (hi < times.size() && times[hi] < wend) ++hi;
    EXSTREAM_RETURN_NOT_OK(out.Append(wend, static_cast<double>(hi - idx)));
    idx = hi;
  }
  return out;
}

}  // namespace

Result<std::vector<Feature>> FeatureBuilder::Build(const std::vector<FeatureSpec>& specs,
                                                   const TimeInterval& interval,
                                                   ThreadPool* pool,
                                                   const CancelToken* cancel,
                                                   DegradationReport* degradation) const {
  // Stage 1: scan each referenced event type once (spilled chunks mean disk
  // I/O, so the scans themselves are worth parallelizing). Each slot gets its
  // own degradation report; the serial merge below keeps accumulation
  // deterministic.
  // Slot assignment is array-based rather than hashed: spec lists repeat a
  // handful of types, so a linear probe over the dedup list beats hashing,
  // and the per-spec slot vectors make the later stages straight lookups.
  std::vector<EventTypeId> scan_types;
  std::vector<size_t> spec_scan(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const EventTypeId type = specs[i].type;
    size_t slot = 0;
    while (slot < scan_types.size() && scan_types[slot] != type) ++slot;
    if (slot == scan_types.size()) scan_types.push_back(type);
    spec_scan[i] = slot;
  }
  std::vector<Result<ScanView>> views(scan_types.size(), ScanView{});
  std::vector<Result<std::vector<Event>>> row_scans(
      use_legacy_row_scan_ ? scan_types.size() : 0, std::vector<Event>{});
  std::vector<DegradationReport> scan_degradation(scan_types.size());
  const size_t scans_done = ParallelFor(
      pool, scan_types.size(),
      [&](size_t i) {
        DegradationReport* deg =
            degradation != nullptr ? &scan_degradation[i] : nullptr;
        if (use_legacy_row_scan_) {
          row_scans[i] = archive_->Scan(scan_types[i], interval, deg, cancel);
        } else {
          views[i] = archive_->ScanColumns(scan_types[i], interval, deg, cancel);
        }
      },
      cancel);
  if (degradation != nullptr) {
    for (const DegradationReport& d : scan_degradation) degradation->Merge(d);
  }
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("feature build cancelled during archive scans (%zu/%zu types)",
                  scans_done, scan_types.size()));
  }
  if (use_legacy_row_scan_) {
    for (const auto& scan : row_scans) EXSTREAM_RETURN_NOT_OK(scan.status());
  } else {
    for (const auto& view : views) EXSTREAM_RETURN_NOT_OK(view.status());
  }

  // Stage 2: derive each (type, attr) raw series once.
  std::vector<std::pair<size_t, size_t>> raw_pairs;  // (scan slot, attr)
  std::vector<size_t> spec_raw(specs.size());
  std::vector<std::vector<int64_t>> attr_slot(scan_types.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    std::vector<int64_t>& slots = attr_slot[spec_scan[i]];
    const size_t attr = specs[i].attr_index;
    if (attr >= slots.size()) slots.resize(attr + 1, -1);
    if (slots[attr] < 0) {
      slots[attr] = static_cast<int64_t>(raw_pairs.size());
      raw_pairs.emplace_back(spec_scan[i], attr);
    }
    spec_raw[i] = static_cast<size_t>(slots[attr]);
  }
  std::vector<TimeSeries> raws(raw_pairs.size());
  const size_t raws_done = ParallelFor(
      pool, raw_pairs.size(),
      [&](size_t i) {
        const auto& [s, attr] = raw_pairs[i];
        raws[i] = use_legacy_row_scan_ ? RawSeries(*row_scans[s], attr)
                                       : RawSeriesFromView(*views[s], attr);
      },
      cancel);
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("feature build cancelled during raw-series derivation (%zu/%zu)",
                  raws_done, raw_pairs.size()));
  }

  // Stage 3: one aggregate per spec, into its own slot.
  std::vector<Result<Feature>> built(specs.size(), Feature{});
  const size_t built_done = ParallelFor(pool, specs.size(), [&](size_t i) {
    const FeatureSpec& s = specs[i];
    const TimeSeries& raw = raws[spec_raw[i]];
    Feature f;
    f.spec = s;
    if (s.agg == AggregateKind::kRaw) {
      f.series = raw;
    } else if (s.agg == AggregateKind::kCount) {
      auto series = CountOverInterval(raw, s.window, interval);
      if (!series.ok()) {
        built[i] = series.status();
        return;
      }
      f.series = std::move(*series);
    } else {
      auto series = ApplyWindowAggregate(raw, s.agg, s.window);
      if (!series.ok()) {
        built[i] = series.status();
        return;
      }
      f.series = std::move(*series);
    }
    built[i] = std::move(f);
  }, cancel);
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("feature build cancelled during aggregation (%zu/%zu specs)",
                  built_done, specs.size()));
  }

  std::vector<Feature> out;
  out.reserve(specs.size());
  for (auto& b : built) {
    EXSTREAM_RETURN_NOT_OK(b.status());
    out.push_back(std::move(*b));
  }
  return out;
}

Result<Feature> FeatureBuilder::BuildOne(const FeatureSpec& spec,
                                         const TimeInterval& interval) const {
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Feature> feats,
                            Build(std::vector<FeatureSpec>{spec}, interval));
  return std::move(feats.front());
}

}  // namespace exstream
