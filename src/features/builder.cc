#include "features/builder.h"

#include <unordered_map>

#include "common/strings.h"

namespace exstream {

namespace {

// Cache key for one (type, attribute) raw series.
inline uint64_t RawKey(EventTypeId type, size_t attr_index) {
  return (static_cast<uint64_t>(type) << 32) | static_cast<uint32_t>(attr_index);
}

// Builds the raw (type, attribute) series from a scanned event vector.
TimeSeries RawSeries(const std::vector<Event>& events, size_t attr_index) {
  TimeSeries out;
  out.Reserve(events.size());
  for (const Event& e : events) {
    if (attr_index >= e.values.size()) continue;
    // Append drops NaN; out-of-order cannot occur because Scan returns
    // time-ordered events.
    (void)out.Append(e.ts, e.values[attr_index].AsDouble());
  }
  return out;
}

// Count (frequency) features are defined over the *query interval*, not the
// series' own span: a window with no events is a real observation (count 0).
// This is what lets a fully silent sensor (the supply-chain "missing
// monitoring" anomaly) produce a maximally separating frequency feature
// instead of an empty series.
Result<TimeSeries> CountOverInterval(const TimeSeries& raw, Timestamp window,
                                     const TimeInterval& interval) {
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  TimeSeries out;
  const auto& times = raw.times();
  size_t idx = 0;
  for (Timestamp wstart = interval.lower; wstart <= interval.upper; wstart += window) {
    const Timestamp wend = wstart + window;
    while (idx < times.size() && times[idx] < wstart) ++idx;
    size_t hi = idx;
    while (hi < times.size() && times[hi] < wend) ++hi;
    EXSTREAM_RETURN_NOT_OK(out.Append(wend, static_cast<double>(hi - idx)));
    idx = hi;
  }
  return out;
}

}  // namespace

Result<std::vector<Feature>> FeatureBuilder::Build(const std::vector<FeatureSpec>& specs,
                                                   const TimeInterval& interval,
                                                   ThreadPool* pool,
                                                   const CancelToken* cancel,
                                                   DegradationReport* degradation) const {
  // Stage 1: scan each referenced event type once (spilled chunks mean disk
  // I/O, so the scans themselves are worth parallelizing). Each slot gets its
  // own degradation report; the serial merge below keeps accumulation
  // deterministic.
  std::vector<EventTypeId> scan_types;
  std::unordered_map<EventTypeId, size_t> scan_index;
  scan_index.reserve(specs.size());
  for (const FeatureSpec& s : specs) {
    if (scan_index.emplace(s.type, scan_types.size()).second) {
      scan_types.push_back(s.type);
    }
  }
  std::vector<Result<std::vector<Event>>> scans(scan_types.size(),
                                                std::vector<Event>{});
  std::vector<DegradationReport> scan_degradation(scan_types.size());
  const size_t scans_done = ParallelFor(
      pool, scan_types.size(),
      [&](size_t i) {
        scans[i] = archive_->Scan(scan_types[i], interval,
                                  degradation != nullptr ? &scan_degradation[i]
                                                         : nullptr);
      },
      cancel);
  if (degradation != nullptr) {
    for (const DegradationReport& d : scan_degradation) degradation->Merge(d);
  }
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("feature build cancelled during archive scans (%zu/%zu types)",
                  scans_done, scan_types.size()));
  }
  for (const auto& scan : scans) EXSTREAM_RETURN_NOT_OK(scan.status());

  // Stage 2: derive each (type, attr) raw series once.
  std::vector<std::pair<EventTypeId, size_t>> raw_pairs;
  std::unordered_map<uint64_t, size_t> raw_index;
  raw_index.reserve(specs.size());
  for (const FeatureSpec& s : specs) {
    if (raw_index.emplace(RawKey(s.type, s.attr_index), raw_pairs.size()).second) {
      raw_pairs.emplace_back(s.type, s.attr_index);
    }
  }
  std::vector<TimeSeries> raws(raw_pairs.size());
  const size_t raws_done = ParallelFor(
      pool, raw_pairs.size(),
      [&](size_t i) {
        const auto& [type, attr] = raw_pairs[i];
        raws[i] = RawSeries(*scans[scan_index.at(type)], attr);
      },
      cancel);
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("feature build cancelled during raw-series derivation (%zu/%zu)",
                  raws_done, raw_pairs.size()));
  }

  // Stage 3: one aggregate per spec, into its own slot.
  std::vector<Result<Feature>> built(specs.size(), Feature{});
  const size_t built_done = ParallelFor(pool, specs.size(), [&](size_t i) {
    const FeatureSpec& s = specs[i];
    const TimeSeries& raw = raws[raw_index.at(RawKey(s.type, s.attr_index))];
    Feature f;
    f.spec = s;
    if (s.agg == AggregateKind::kRaw) {
      f.series = raw;
    } else if (s.agg == AggregateKind::kCount) {
      auto series = CountOverInterval(raw, s.window, interval);
      if (!series.ok()) {
        built[i] = series.status();
        return;
      }
      f.series = std::move(*series);
    } else {
      auto series = ApplyWindowAggregate(raw, s.agg, s.window);
      if (!series.ok()) {
        built[i] = series.status();
        return;
      }
      f.series = std::move(*series);
    }
    built[i] = std::move(f);
  }, cancel);
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("feature build cancelled during aggregation (%zu/%zu specs)",
                  built_done, specs.size()));
  }

  std::vector<Feature> out;
  out.reserve(specs.size());
  for (auto& b : built) {
    EXSTREAM_RETURN_NOT_OK(b.status());
    out.push_back(std::move(*b));
  }
  return out;
}

Result<Feature> FeatureBuilder::BuildOne(const FeatureSpec& spec,
                                         const TimeInterval& interval) const {
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Feature> feats,
                            Build(std::vector<FeatureSpec>{spec}, interval));
  return std::move(feats.front());
}

}  // namespace exstream
