#include "features/builder.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "archive/tiers.h"
#include "common/strings.h"

namespace exstream {

namespace {

// Builds the raw (type, attribute) series from a scanned event vector.
TimeSeries RawSeries(const std::vector<Event>& events, size_t attr_index) {
  TimeSeries out;
  out.Reserve(events.size());
  for (const Event& e : events) {
    if (attr_index >= e.values.size()) continue;
    // Append drops NaN; out-of-order cannot occur because Scan returns
    // time-ordered events.
    (void)out.Append(e.ts, e.values[attr_index].AsDouble());
  }
  return out;
}

// Builds the raw (type, attribute) series straight off column spans: a walk
// over the pinned ts array and the attribute's contiguous numeric view, no
// Event materialization. Matches RawSeries bit for bit: a missing tag is the
// rows-with-fewer-values case RawSeries skips, and `nums` holds the same
// AsDouble conversion (NaN for strings, which Append drops either way).
TimeSeries RawSeriesFromView(const ScanView& view, size_t attr_index) {
  TimeSeries out;
  out.Reserve(view.rows());
  for (const ScanView::Segment& seg : view.segments) {
    const ChunkColumns& cols = *seg.columns;
    if (attr_index >= cols.num_columns()) continue;
    const AttributeColumn& col = cols.attr(attr_index);
    // Segments arrive in time order with sorted ts columns, so the whole
    // range bulk-appends; missing tags and NaN (string) values are skipped
    // inside, matching Append's per-sample drops bit for bit.
    out.AppendColumnRange(cols.ts().data() + seg.begin,
                          col.nums.data() + seg.begin,
                          col.tags.data() + seg.begin, kMissingValueTag,
                          seg.end - seg.begin);
  }
  return out;
}

// Count (frequency) features are defined over the *query interval*, not the
// series' own span: a window with no events is a real observation (count 0).
// This is what lets a fully silent sensor (the supply-chain "missing
// monitoring" anomaly) produce a maximally separating frequency feature
// instead of an empty series.
Result<TimeSeries> CountOverInterval(const TimeSeries& raw, Timestamp window,
                                     const TimeInterval& interval) {
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  TimeSeries out;
  out.Reserve(static_cast<size_t>((interval.upper - interval.lower) / window) + 1);
  const auto& times = raw.times();
  size_t idx = 0;
  for (Timestamp wstart = interval.lower; wstart <= interval.upper; wstart += window) {
    const Timestamp wend = wstart + window;
    while (idx < times.size() && times[idx] < wstart) ++idx;
    size_t hi = idx;
    while (hi < times.size() && times[hi] < wend) ++hi;
    EXSTREAM_RETURN_NOT_OK(out.Append(wend, static_cast<double>(hi - idx)));
    idx = hi;
  }
  return out;
}

// One absolute-aligned aggregation window being folded from tier windows
// and/or raw rows. `count` counts numeric samples (matching what RawSeries
// keeps: NaN and missing rows are excluded everywhere).
struct WindowPartial {
  Timestamp wend = 0;
  uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double sumsq = 0.0;
};

// Folds a tiered scan view into one spec's series: tier segments contribute
// pre-aggregated windows, raw segments (chunks without an aligned tier, the
// open tail) contribute rows, merged in chunk order via each segment's
// `order` stamp. Windows are absolute-aligned with length spec.window; a tier
// window nests entirely inside one aggregation window because its length
// divides the scan resolution, which divides every spec window of the type.
Result<TimeSeries> TieredAggregate(const ScanView& view, const FeatureSpec& spec,
                                   const TimeInterval& interval) {
  const Timestamp window = spec.window;
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  std::vector<WindowPartial> partials;
  // Window ends arrive non-decreasing (rows are time-ordered within and
  // across chunks), so folding only ever extends or reuses the last partial.
  auto fold_into = [&partials](Timestamp wend) -> WindowPartial& {
    if (partials.empty() || partials.back().wend != wend) {
      partials.push_back(WindowPartial{wend});
    }
    return partials.back();
  };
  size_t ri = 0, ti = 0;
  while (ri < view.segments.size() || ti < view.tier_segments.size()) {
    const bool take_raw =
        ti >= view.tier_segments.size() ||
        (ri < view.segments.size() &&
         view.segments[ri].order < view.tier_segments[ti].order);
    if (take_raw) {
      const ScanView::Segment& seg = view.segments[ri++];
      const ChunkColumns& cols = *seg.columns;
      if (spec.attr_index >= cols.num_columns()) continue;
      const AttributeColumn& col = cols.attr(spec.attr_index);
      for (size_t i = seg.begin; i < seg.end; ++i) {
        const double v = col.nums[i];
        if (std::isnan(v)) continue;  // missing or string row
        WindowPartial& p = fold_into(TierWindowEnd(cols.ts()[i], window));
        if (p.count == 0) {
          p.min = p.max = v;
        } else {
          p.min = std::min(p.min, v);
          p.max = std::max(p.max, v);
        }
        p.sum += v;
        p.sumsq += v * v;
        ++p.count;
      }
    } else {
      const ScanView::TierSegment& seg = view.tier_segments[ti++];
      const TierColumns& tier = *seg.tier;
      if (spec.attr_index >= tier.attrs.size()) continue;
      const TierAttr& agg = tier.attrs[spec.attr_index];
      for (size_t i = seg.begin; i < seg.end; ++i) {
        if (agg.count[i] == 0) continue;  // no numeric sample in this window
        WindowPartial& p =
            fold_into(TierWindowEnd(tier.ts[i] - tier.window, window));
        if (p.count == 0) {
          p.min = agg.min[i];
          p.max = agg.max[i];
        } else {
          p.min = std::min(p.min, agg.min[i]);
          p.max = std::max(p.max, agg.max[i]);
        }
        p.sum += agg.sum[i];
        p.sumsq += agg.sumsq[i];
        p.count += agg.count[i];
      }
    }
  }

  std::vector<Timestamp> times;
  std::vector<double> vals;
  if (spec.agg == AggregateKind::kCount) {
    // Count features observe silence: every aligned window overlapping the
    // query interval emits a sample, zeros included (cf. CountOverInterval).
    size_t pi = 0;
    for (Timestamp wend = TierWindowEnd(interval.lower, window);
         wend - window <= interval.upper; wend += window) {
      while (pi < partials.size() && partials[pi].wend < wend) ++pi;
      const bool hit = pi < partials.size() && partials[pi].wend == wend;
      times.push_back(wend);
      vals.push_back(hit ? static_cast<double>(partials[pi].count) : 0.0);
    }
  } else {
    times.reserve(partials.size());
    vals.reserve(partials.size());
    for (const WindowPartial& p : partials) {
      if (p.count == 0) continue;
      const double n = static_cast<double>(p.count);
      double v = 0.0;
      switch (spec.agg) {
        case AggregateKind::kMean:
          v = p.sum / n;
          break;
        case AggregateKind::kSum:
          v = p.sum;
          break;
        case AggregateKind::kMin:
          v = p.min;
          break;
        case AggregateKind::kMax:
          v = p.max;
          break;
        case AggregateKind::kStdDev: {
          // Population stddev from moments; n < 2 is 0 by the repo-wide
          // convention (common/stats), and the max() guards the tiny negative
          // variance floating-point cancellation can produce.
          const double mean = p.sum / n;
          v = p.count < 2
                  ? 0.0
                  : std::sqrt(std::max(0.0, p.sumsq / n - mean * mean));
          break;
        }
        case AggregateKind::kRaw:
        case AggregateKind::kCount:
          break;  // unreachable: raw specs force the exact path, count above
      }
      times.push_back(p.wend);
      vals.push_back(v);
    }
  }
  TimeSeries out;
  out.AppendAggregatedSpan(times.data(), vals.data(), times.size());
  return out;
}

}  // namespace

Result<std::vector<Feature>> FeatureBuilder::Build(const std::vector<FeatureSpec>& specs,
                                                   const TimeInterval& interval,
                                                   ThreadPool* pool,
                                                   const CancelToken* cancel,
                                                   DegradationReport* degradation,
                                                   bool allow_tiers) const {
  // Stage 1: scan each referenced event type once (spilled chunks mean disk
  // I/O, so the scans themselves are worth parallelizing). Each slot gets its
  // own degradation report; the serial merge below keeps accumulation
  // deterministic.
  // Slot assignment is array-based rather than hashed: spec lists repeat a
  // handful of types, so a linear probe over the dedup list beats hashing,
  // and the per-spec slot vectors make the later stages straight lookups.
  // With tiering allowed, a type's specs split into two slots: raw specs (and
  // non-positive windows, which must reach the classic error path) share an
  // exact-rows scan, while fixed-window aggregates share a resolution-aware
  // scan that the archive may answer from downsampled tiers. The declared
  // resolution is the gcd of the aggregate windows, so any tier whose window
  // divides it nests into every spec's aggregation windows. Without tiering
  // the split is inert (every spec maps to the type's single exact slot).
  const bool tiering = allow_tiers && !use_legacy_row_scan_;
  std::vector<EventTypeId> scan_types;
  std::vector<char> scan_wants_tier;  // parallel to scan_types
  std::vector<size_t> spec_scan(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const EventTypeId type = specs[i].type;
    const char tiered = tiering && specs[i].agg != AggregateKind::kRaw &&
                        specs[i].window > 0;
    size_t slot = 0;
    while (slot < scan_types.size() &&
           (scan_types[slot] != type || scan_wants_tier[slot] != tiered)) {
      ++slot;
    }
    if (slot == scan_types.size()) {
      scan_types.push_back(type);
      scan_wants_tier.push_back(tiered);
    }
    spec_scan[i] = slot;
  }
  std::vector<Timestamp> scan_resolution(scan_types.size(), 0);
  for (size_t i = 0; i < specs.size(); ++i) {
    const size_t slot = spec_scan[i];
    if (scan_wants_tier[slot]) {
      scan_resolution[slot] = std::gcd(scan_resolution[slot], specs[i].window);
    }
  }
  std::vector<Result<ScanView>> views(scan_types.size(), ScanView{});
  std::vector<Result<std::vector<Event>>> row_scans(
      use_legacy_row_scan_ ? scan_types.size() : 0, std::vector<Event>{});
  std::vector<DegradationReport> scan_degradation(scan_types.size());
  const size_t scans_done = ParallelFor(
      pool, scan_types.size(),
      [&](size_t i) {
        DegradationReport* deg =
            degradation != nullptr ? &scan_degradation[i] : nullptr;
        if (use_legacy_row_scan_) {
          row_scans[i] = archive_->Scan(scan_types[i], interval, deg, cancel);
        } else if (recent_ != nullptr && scan_resolution[i] == 0) {
          // Exact-resolution scans may be served from the incremental tail
          // (cold prefixes backfill from the archive inside). Tiered slots
          // stay on the archive: a tier answer is not reproducible from the
          // raw tail without re-running the tier fold.
          views[i] = recent_->ScanWithBackfill(*archive_, scan_types[i],
                                               interval, deg, cancel);
        } else {
          views[i] = archive_->ScanColumns(scan_types[i], interval, deg, cancel,
                                           scan_resolution[i]);
        }
      },
      cancel);
  if (degradation != nullptr) {
    for (const DegradationReport& d : scan_degradation) degradation->Merge(d);
  }
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("feature build cancelled during archive scans (%zu/%zu types)",
                  scans_done, scan_types.size()));
  }
  if (use_legacy_row_scan_) {
    for (const auto& scan : row_scans) EXSTREAM_RETURN_NOT_OK(scan.status());
  } else {
    for (const auto& view : views) EXSTREAM_RETURN_NOT_OK(view.status());
  }
  // A slot is tiered iff at least one chunk actually answered from a tier;
  // otherwise the view is raw-only and the classic fold below stays
  // bit-identical to an allow_tiers=false build.
  std::vector<char> slot_tiered(scan_types.size(), 0);
  if (!use_legacy_row_scan_) {
    for (size_t s = 0; s < views.size(); ++s) {
      slot_tiered[s] = views[s]->tier_segments.empty() ? 0 : 1;
    }
  }

  // Stage 2: derive each (type, attr) raw series once.
  std::vector<std::pair<size_t, size_t>> raw_pairs;  // (scan slot, attr)
  std::vector<size_t> spec_raw(specs.size());
  std::vector<std::vector<int64_t>> attr_slot(scan_types.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    std::vector<int64_t>& slots = attr_slot[spec_scan[i]];
    const size_t attr = specs[i].attr_index;
    if (attr >= slots.size()) slots.resize(attr + 1, -1);
    if (slots[attr] < 0) {
      slots[attr] = static_cast<int64_t>(raw_pairs.size());
      raw_pairs.emplace_back(spec_scan[i], attr);
    }
    spec_raw[i] = static_cast<size_t>(slots[attr]);
  }
  std::vector<TimeSeries> raws(raw_pairs.size());
  const size_t raws_done = ParallelFor(
      pool, raw_pairs.size(),
      [&](size_t i) {
        const auto& [s, attr] = raw_pairs[i];
        if (!use_legacy_row_scan_ && slot_tiered[s]) return;  // folded in stage 3
        raws[i] = use_legacy_row_scan_ ? RawSeries(*row_scans[s], attr)
                                       : RawSeriesFromView(*views[s], attr);
      },
      cancel);
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("feature build cancelled during raw-series derivation (%zu/%zu)",
                  raws_done, raw_pairs.size()));
  }

  // Stage 3: one aggregate per spec, into its own slot.
  std::vector<Result<Feature>> built(specs.size(), Feature{});
  const size_t built_done = ParallelFor(pool, specs.size(), [&](size_t i) {
    const FeatureSpec& s = specs[i];
    const TimeSeries& raw = raws[spec_raw[i]];
    Feature f;
    f.spec = s;
    if (!use_legacy_row_scan_ && slot_tiered[spec_scan[i]]) {
      // Tiered slots never carry raw specs (those pin the scan to exact
      // rows), so every spec here folds windows straight off the view.
      auto series = TieredAggregate(*views[spec_scan[i]], s, interval);
      if (!series.ok()) {
        built[i] = series.status();
        return;
      }
      f.series = std::move(*series);
      built[i] = std::move(f);
      return;
    }
    if (s.agg == AggregateKind::kRaw) {
      f.series = raw;
    } else if (s.agg == AggregateKind::kCount) {
      auto series = CountOverInterval(raw, s.window, interval);
      if (!series.ok()) {
        built[i] = series.status();
        return;
      }
      f.series = std::move(*series);
    } else {
      auto series = ApplyWindowAggregate(raw, s.agg, s.window);
      if (!series.ok()) {
        built[i] = series.status();
        return;
      }
      f.series = std::move(*series);
    }
    built[i] = std::move(f);
  }, cancel);
  if (cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("feature build cancelled during aggregation (%zu/%zu specs)",
                  built_done, specs.size()));
  }

  std::vector<Feature> out;
  out.reserve(specs.size());
  for (auto& b : built) {
    EXSTREAM_RETURN_NOT_OK(b.status());
    out.push_back(std::move(*b));
  }
  return out;
}

Result<Feature> FeatureBuilder::BuildOne(const FeatureSpec& spec,
                                         const TimeInterval& interval) const {
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Feature> feats,
                            Build(std::vector<FeatureSpec>{spec}, interval));
  return std::move(feats.front());
}

}  // namespace exstream
