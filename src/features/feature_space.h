// Sufficient feature space generation (paper Sec. 3).
//
// "Our system includes a module that automatically transforms raw data
//  streams into a richer feature space F to enable explanations."
//
// For every numeric attribute of every registered event type we emit the raw
// feature plus one smoothed feature per (aggregate, window) combination. The
// architecture is open: callers add aggregate kinds and window sizes through
// FeatureSpaceOptions.

#pragma once

#include <string>
#include <vector>

#include "event/registry.h"
#include "features/feature.h"

namespace exstream {

/// \brief Controls which features GenerateFeatureSpecs produces.
struct FeatureSpaceOptions {
  /// Window lengths (time units) for smoothed features.
  std::vector<Timestamp> windows = {10, 30};
  /// Aggregates applied per window. The paper's generated features are means
  /// ("...Mean") and frequencies ("...Frequency"); sum/min/max/stddev remain
  /// available for callers that opt in.
  std::vector<AggregateKind> aggregates = {AggregateKind::kMean, AggregateKind::kCount};
  /// Also include the raw (unsmoothed) series as features.
  bool include_raw = true;
  /// Attribute names excluded everywhere (identifiers carry no signal and
  /// would show up as false positives).
  std::vector<std::string> exclude_attributes = {"eventId", "eventType"};
  /// Event type names to skip entirely (e.g. the monitored query's own
  /// output type when it should not explain itself).
  std::vector<std::string> exclude_event_types;
};

/// \brief Enumerates the feature space F for all types in `registry`.
std::vector<FeatureSpec> GenerateFeatureSpecs(const EventTypeRegistry& registry,
                                              const FeatureSpaceOptions& options = {});

/// \brief Finds a spec by canonical name in a spec list.
Result<FeatureSpec> FindSpecByName(const std::vector<FeatureSpec>& specs,
                                   std::string_view name);

}  // namespace exstream
