#include "features/feature.h"

#include "common/strings.h"

namespace exstream {

std::string FeatureSpec::Name() const {
  std::string name = event_type_name + "." + attribute_name + "." +
                     std::string(AggregateKindToString(agg));
  if (agg != AggregateKind::kRaw && window > 0) {
    name += StrFormat("@%lld", static_cast<long long>(window));
  }
  return name;
}

}  // namespace exstream
