// Features: measurable properties derived from archived event streams
// (paper Sec. 3).
//
// A raw feature is the time series of one numeric attribute of one event type
// within an interval. Smoothed features apply a windowed aggregate on top
// (e.g. MemUsage.memFree with kMean over 10s windows ~ the paper's
// "MemFreeMean").

#pragma once

#include <string>

#include "event/event.h"
#include "ts/aggregate.h"
#include "ts/time_series.h"

namespace exstream {

/// \brief Identifies one feature: (event type, attribute, aggregate, window).
struct FeatureSpec {
  EventTypeId type = kInvalidEventType;
  size_t attr_index = 0;
  std::string event_type_name;
  std::string attribute_name;
  AggregateKind agg = AggregateKind::kRaw;
  Timestamp window = 0;  ///< aggregate window length; 0 for raw features

  /// Canonical name, e.g. "MemUsage.memFree.mean@10" or "DataIO.dataSize.raw".
  std::string Name() const;

  bool operator==(const FeatureSpec& other) const {
    return type == other.type && attr_index == other.attr_index &&
           event_type_name == other.event_type_name &&
           attribute_name == other.attribute_name && agg == other.agg &&
           window == other.window;
  }
};

/// \brief A feature materialized over one interval.
struct Feature {
  FeatureSpec spec;
  TimeSeries series;
};

}  // namespace exstream
