// XStreamSystem: the integrated architecture of Fig. 1(c) / Fig. 18.
//
//   data source -> CEP engine -> visualization (match tables)
//                -> archive  -> explanation engine (triggered by annotation)
//
// Events stream through OnEvent into both the CEP engine and the archive;
// per-event processing latency is tracked so the Appendix-C efficiency
// experiments can quantify how much a concurrently running explanation
// analysis delays monitoring.

#pragma once

#include <future>
#include <map>
#include <memory>
#include <string>

#include "archive/archive.h"
#include "cep/engine.h"
#include "common/histogram.h"
#include "explain/engine.h"
#include "explain/partition_table.h"
#include "event/stream.h"

namespace exstream {

/// \brief System-level configuration.
struct XStreamConfig {
  ArchiveOptions archive;
  /// Explanation pipeline knobs; `explain.num_threads` sizes the worker pool
  /// every Explain/ExplainAsync call analyzes with (1 = serial).
  ExplainOptions explain;
  /// CEP ingestion knobs; `ingest.ingest_threads` shards batched ingest over
  /// a worker pool (1 = serial batched, 0 = hardware concurrency). Results
  /// are bit-identical for any value.
  CepEngineOptions ingest;
  /// Latency histogram range (seconds).
  double latency_histogram_max = 0.1;
};

/// \brief The full CEP-monitoring + explanation system.
class XStreamSystem : public EventSink {
 public:
  XStreamSystem(const EventTypeRegistry* registry, XStreamConfig config = {});

  /// Registers a monitoring query (Fig. 3 syntax).
  Result<QueryId> AddQuery(std::string_view text, std::string name);

  /// EventSink: routes one event through the engine and the archive,
  /// recording its processing latency.
  void OnEvent(const Event& event) override;

  /// \brief EventSink: the batched throughput path. The engine evaluates the
  /// batch (possibly sharded over its ingest pool), then the archive takes
  /// ownership and moves the events into its chunks — no per-event copy.
  /// Latency histograms record the per-event average of each batch.
  void OnEventBatch(EventBatch batch) override;

  CepEngine& engine() { return engine_; }
  const CepEngine& engine() const { return engine_; }
  EventArchive& archive() { return archive_; }
  PartitionTable& partitions() { return partitions_; }

  /// Rebuilds partition-table records from a query's match table.
  Status IndexPartitions(QueryId query, std::map<std::string, std::string> dimensions);

  /// Monitored-series provider over one query's match table.
  SeriesProvider MakeSeriesProvider(QueryId query, std::string column) const;

  /// \brief Runs the explanation pipeline synchronously.
  ///
  /// \param annotation the user's I_A / I_R annotation
  /// \param monitor_query the query whose visualization was annotated
  /// \param column the visualized derived attribute
  Result<ExplanationReport> Explain(const AnomalyAnnotation& annotation,
                                    QueryId monitor_query, const std::string& column);

  /// Same, on a background thread — monitoring keeps running (Appendix C).
  std::future<Result<ExplanationReport>> ExplainAsync(
      const AnomalyAnnotation& annotation, QueryId monitor_query,
      const std::string& column);

  /// True while a background explanation is executing.
  bool explanation_active() const { return explanation_active_.load(); }

  /// Per-event processing latency while no explanation was running.
  const Histogram& idle_latency() const { return idle_latency_; }
  /// Per-event processing latency while an explanation was running.
  const Histogram& busy_latency() const { return busy_latency_; }

  /// \brief Archive resilience counters (spill I/O retries, quarantines,
  /// degraded scans) — the system's fault-health metrics surface.
  struct FaultStats {
    size_t spill_read_retries = 0;   ///< transient read faults retried away
    size_t spill_write_retries = 0;  ///< transient write faults retried away
    size_t spill_write_failures = 0; ///< spills abandoned (chunk kept resident)
    size_t quarantined_chunks = 0;   ///< chunks renamed *.quarantine
    size_t degraded_scans = 0;       ///< scans that returned partial data
  };
  FaultStats fault_stats() const {
    return FaultStats{archive_.spill_read_retries(), archive_.spill_write_retries(),
                      archive_.spill_write_failures(), archive_.quarantined_chunks(),
                      archive_.degraded_scans()};
  }

 private:
  const EventTypeRegistry* registry_;  // not owned
  XStreamConfig config_;
  EventArchive archive_;
  CepEngine engine_;
  PartitionTable partitions_;
  std::atomic<bool> explanation_active_{false};
  Histogram idle_latency_;
  Histogram busy_latency_;
};

}  // namespace exstream
