// XStreamSystem: the integrated architecture of Fig. 1(c) / Fig. 18.
//
//   data source -> ingest guard -> WAL -> CEP engine -> visualization
//                                      -> archive    -> explanation engine
//
// Events stream through OnEvent into both the CEP engine and the archive;
// per-event processing latency is tracked so the Appendix-C efficiency
// experiments can quantify how much a concurrently running explanation
// analysis delays monitoring.
//
// Durability (all opt-in, off by default so the hot path is unchanged):
//  - an IngestGuard validates/reorders the raw stream and quarantines
//    malformed events instead of aborting;
//  - a write-ahead log records every released batch before it is applied, so
//    a crash loses at most the tail the fsync policy allows;
//  - Checkpoint() snapshots engine + archive + partition state and truncates
//    the WAL; Recover() restores the snapshot and replays the WAL tail,
//    reproducing the uncrashed state bit-for-bit;
//  - a bounded ingest queue with Block/ShedOldest/ShedNewest backpressure
//    decouples producers from processing; shed counts surface in
//    fault_stats() and in the DegradationReport of later explanations.

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "archive/archive.h"
#include "cep/engine.h"
#include "common/histogram.h"
#include "detect/streaming_detector.h"
#include "explain/engine.h"
#include "explain/explain_cache.h"
#include "explain/partition_table.h"
#include "event/stream.h"
#include "features/incremental.h"
#include "io/wal.h"
#include "net/replication_sender.h"
#include "xstream/ingest_guard.h"

namespace exstream {

/// \brief What to do when the bounded ingest queue is full.
enum class BackpressurePolicy {
  kBlock,      ///< wait up to `block_deadline_ms`, then shed the new batch
  kShedOldest, ///< drop queued batches until the new one fits
  kShedNewest, ///< drop the incoming batch
};

/// \brief Write-ahead-log configuration (wal_dir unset = no WAL).
struct DurabilityOptions {
  /// Directory for WAL segments; unset disables logging entirely.
  std::optional<std::string> wal_dir;
  WalFsyncPolicy fsync = WalFsyncPolicy::kInterval;
  int64_t fsync_interval_ms = 50;
  size_t wal_segment_bytes = 4u << 20;
};

/// \brief Bounded ingest queue configuration (capacity 0 = synchronous
/// ingest on the caller's thread, no queue, no shedding).
struct OverloadOptions {
  size_t queue_capacity = 0;  ///< max queued batches
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// kBlock only: longest a producer may stall on a full queue before the
  /// incoming batch is shed anyway (overload must not become deadlock).
  int64_t block_deadline_ms = 100;
};

/// \brief Continuous-serving layer: streaming detection, incremental
/// features, and the keyed Explain result cache (all opt-in; everything off
/// keeps the pre-serving behavior bit for bit).
struct ServingOptions {
  /// Maintain per-type in-memory tails as batches apply, so Explains over
  /// recent intervals skip archive scans (cold prefixes still backfill).
  bool incremental_features = false;
  /// Trailing time kept per type in the incremental tails (0 = unbounded).
  Timestamp incremental_retention = 0;
  /// Completed Explain reports cached, keyed by (annotation, query, column,
  /// options fingerprint, data watermark, degradation state) with
  /// single-flight dedup. 0 disables the cache.
  size_t explain_cache_capacity = 0;
  /// Online z-score/EWMA detection over the monitored series (set = on).
  std::optional<StreamingDetectorOptions> detector;
  /// Query the detector monitors (name passed to AddQuery); empty = the
  /// first query added.
  std::string detect_query;
  /// Match-table column the detector observes (the visualized attribute).
  std::string detect_column;
  /// Auto-run Explain on every finalized detector anomaly, on a background
  /// worker (results via TakeAutoExplanations). Requires `detector`.
  bool auto_explain = false;
  /// Bounded queue between detector and the auto-explain worker; overflow
  /// drops the oldest pending anomaly (counted).
  size_t auto_queue_capacity = 16;
  /// Completed auto-explanations retained (oldest dropped beyond this).
  size_t max_auto_explanations = 32;
};

/// \brief System-level configuration.
struct XStreamConfig {
  ArchiveOptions archive;
  /// Explanation pipeline knobs; `explain.num_threads` sizes the worker pool
  /// every Explain/ExplainAsync call analyzes with (1 = serial).
  ExplainOptions explain;
  /// CEP ingestion knobs; `ingest.ingest_threads` shards batched ingest over
  /// a worker pool (1 = serial batched, 0 = hardware concurrency). Results
  /// are bit-identical for any value.
  CepEngineOptions ingest;
  /// Front-end validation / lateness tolerance / reject quarantine.
  IngestGuardOptions guard;
  /// Write-ahead logging (off unless wal_dir is set).
  DurabilityOptions durability;
  /// Bounded-queue overload protection (off unless queue_capacity > 0).
  OverloadOptions overload;
  /// Parent/child replication: when set, every WAL-durable batch also streams
  /// to the parent node at replication->host:port (net/replication_sender.h).
  std::optional<ReplicationSenderOptions> replication;
  /// Continuous explanation serving (detection, incremental features, result
  /// cache) — all off by default.
  ServingOptions serving;
  /// Latency histogram range (seconds).
  double latency_histogram_max = 0.1;
};

/// \brief The full CEP-monitoring + explanation system.
class XStreamSystem : public EventSink {
 public:
  XStreamSystem(const EventTypeRegistry* registry, XStreamConfig config = {});
  ~XStreamSystem() override;

  /// Registers a monitoring query (Fig. 3 syntax).
  Result<QueryId> AddQuery(std::string_view text, std::string name);

  /// EventSink: routes one event through the engine and the archive,
  /// recording its processing latency.
  void OnEvent(const Event& event) override;

  /// \brief EventSink: the batched throughput path. The guard filters the
  /// batch, the WAL logs what survived, then the engine evaluates it
  /// (possibly sharded over its ingest pool) and the archive takes ownership
  /// of the events — no per-event copy. Latency histograms record the
  /// per-event average of each batch.
  void OnEventBatch(EventBatch batch) override;

  /// EventSink: flushes the lateness buffer and drains the ingest queue.
  void OnStreamEnd() override;

  /// \brief Releases everything the guard holds and waits for the ingest
  /// queue to drain. After Flush() the engine/archive reflect every event
  /// admitted so far. This is a visibility barrier, not a durability point:
  /// the WAL fsyncs on its own policy schedule (and on shutdown/Checkpoint),
  /// so callers that need bytes on disk use Checkpoint() or wal()->Sync().
  void Flush();

  /// \brief Snapshots the complete monitoring state (engine runs, interners,
  /// match tables, archive chunks, partition records, guard watermarks) into
  /// `dir`, then truncates WAL segments the snapshot covers.
  ///
  /// The manifest is written atomically, so a crash mid-checkpoint leaves
  /// the previous checkpoint (and the full WAL) intact. Must not race with
  /// ingestion: callers pause producers first (Flush() is implied).
  Status Checkpoint(const std::string& dir);

  struct RecoveryReport {
    bool manifest_loaded = false;    ///< a valid checkpoint manifest was found
    uint64_t checkpoint_seq = 0;     ///< WAL sequence the manifest covers
    WalReplayStats wal;              ///< replay of the tail past the manifest
  };

  /// \brief Restores a Checkpoint() snapshot from `dir` (pass "" to recover
  /// from the WAL alone) and replays the WAL tail. The system must be fresh:
  /// same queries added in the same order, no events ingested.
  Result<RecoveryReport> Recover(const std::string& checkpoint_dir);

  CepEngine& engine() { return engine_; }
  const CepEngine& engine() const { return engine_; }
  EventArchive& archive() { return archive_; }
  PartitionTable& partitions() { return partitions_; }

  /// The guard's reject counters (malformed / late events).
  RejectReport reject_report() const { return guard_.report(); }

  /// WAL handle for stats inspection; nullptr when durability is off.
  const WriteAheadLog* wal() const { return wal_.get(); }

  /// Fsyncs the WAL now (no-op without one). The replication receiver calls
  /// this before acking so an ACK is a durability promise.
  Status SyncWal() { return wal_ != nullptr ? wal_->Sync() : Status::OK(); }

  /// Replication sender handle for stats/drain; nullptr when replication is
  /// off.
  ReplicationSender* replication() { return repl_sender_.get(); }

  /// Sequence number of the next event to release — the count of events
  /// admitted so far (and, with a WAL, the WAL's cursor).
  uint64_t next_seq() const { return next_seq_; }

  /// Valid events dropped by queue shedding so far.
  size_t shed_events() const { return shed_events_.load(); }

  /// \brief Records events lost *upstream* of this system — a child node
  /// shed them before they could replicate here. They join the shed count so
  /// every later Explain discloses the incomplete coverage in its
  /// DegradationReport, exactly like locally shed events.
  void AddExternalShed(size_t events) { shed_events_ += events; }

  /// Rebuilds partition-table records from a query's match table.
  Status IndexPartitions(QueryId query, std::map<std::string, std::string> dimensions);

  /// Monitored-series provider over one query's match table.
  SeriesProvider MakeSeriesProvider(QueryId query, std::string column) const;

  /// \brief Runs the explanation pipeline synchronously.
  ///
  /// If ingest shed or rejected events before the analysis, the counts are
  /// folded into the report's DegradationReport (shedding marks the
  /// explanation degraded; rejects are informational).
  ///
  /// \param annotation the user's I_A / I_R annotation
  /// \param monitor_query the query whose visualization was annotated
  /// \param column the visualized derived attribute
  Result<ExplanationReport> Explain(const AnomalyAnnotation& annotation,
                                    QueryId monitor_query, const std::string& column);

  /// Same, on a background thread — monitoring keeps running (Appendix C).
  std::future<Result<ExplanationReport>> ExplainAsync(
      const AnomalyAnnotation& annotation, QueryId monitor_query,
      const std::string& column);

  /// True while at least one explanation is executing.
  bool explanation_active() const { return explanations_running_.load() > 0; }

  /// Incremental feature tails; nullptr when serving.incremental_features is
  /// off. Read-only surface for stats and direct FeatureBuilder use.
  const IncrementalFeatureState* incremental() const { return incremental_.get(); }

  /// Explain result cache; nullptr when serving.explain_cache_capacity == 0.
  ExplainResultCache* explain_cache() { return explain_cache_.get(); }
  const ExplainResultCache* explain_cache() const { return explain_cache_.get(); }

  /// Streaming detector; nullptr until the detect query is added (or when
  /// serving.detector is unset).
  StreamingDetector* detector() { return detector_.get(); }
  const StreamingDetector* detector() const { return detector_.get(); }

  /// \brief Count of events applied so far, published by the applying thread
  /// after each batch lands in engine + archive. This is the cache key's data
  /// version: any advance invalidates previously cached explanations. Under
  /// concurrent ingest a reader may observe the pre-batch value for the
  /// in-flight batch (one-batch staleness; quiesce with Flush() for exact
  /// reads).
  uint64_t data_watermark() const {
    return data_watermark_.load(std::memory_order_acquire);
  }

  /// \brief One completed auto-triggered explanation.
  struct AutoExplanation {
    StreamAnomaly anomaly;
    std::shared_ptr<const Result<ExplanationReport>> report;
  };

  /// Drains completed auto-explanations (serving.auto_explain).
  std::vector<AutoExplanation> TakeAutoExplanations();

  /// Auto-explanations completed since start.
  size_t auto_explains_completed() const { return auto_explains_completed_.load(); }
  /// Detector anomalies dropped by the bounded auto-explain queue.
  size_t auto_anomalies_dropped() const { return auto_anomalies_dropped_.load(); }

  /// \brief Blocks until every detector anomaly emitted so far has been
  /// auto-explained (no-op without auto-explain). Call after Flush() so the
  /// detector has seen the full stream.
  void DrainAutoExplains();

  /// \brief Closes every detector excursion still open and forwards the
  /// resulting anomalies to the auto-explain worker. An excursion whose
  /// series stays elevated through the last event never sees the cooldown
  /// that normally closes it; this is the end-of-stream hook that flushes
  /// those incidents. Call after the final Flush() and before
  /// DrainAutoExplains(); not part of DrainAutoExplains itself because
  /// draining is legal mid-stream, where force-closing live excursions would
  /// split one incident into several. Returns the number of excursions
  /// closed (no-op returning 0 without a detector).
  size_t FinalizeDetector();

  /// Per-event processing latency while no explanation was running.
  const Histogram& idle_latency() const { return idle_latency_; }
  /// Per-event processing latency while an explanation was running.
  const Histogram& busy_latency() const { return busy_latency_; }

  /// \brief Resilience counters across the ingest front-end, WAL, and
  /// archive — the system's fault-health metrics surface.
  struct FaultStats {
    size_t spill_read_retries = 0;   ///< transient read faults retried away
    size_t spill_write_retries = 0;  ///< transient write faults retried away
    size_t spill_write_failures = 0; ///< spills abandoned (chunk kept resident)
    size_t quarantined_chunks = 0;   ///< chunks renamed *.quarantine
    size_t degraded_scans = 0;       ///< scans that returned partial data
    size_t quarantine_evictions = 0; ///< quarantine files evicted by the cap
    size_t rejected_events = 0;      ///< malformed/late events quarantined
    size_t shed_events = 0;          ///< valid events dropped by backpressure
    size_t shed_batches = 0;         ///< batches those events arrived in
    size_t wal_append_failures = 0;  ///< WAL appends that failed (I/O)
    size_t wal_sync_failures = 0;    ///< fsyncs that failed
    size_t repl_shed_events = 0;     ///< events dropped by the bounded
                                     ///< replication queue (parent outage)
    size_t repl_shed_chunks = 0;     ///< replication chunks those events filled
    size_t repl_reconnects = 0;      ///< replication sessions torn down by
                                     ///< link faults
  };
  FaultStats fault_stats() const;

 private:
  /// The processing stage: engine + archive + latency histograms. Runs on
  /// the caller with no queue, on the worker thread otherwise.
  void ApplyBatch(EventBatch batch);
  /// WAL-logs a released batch and hands it to the queue or ApplyBatch.
  void Dispatch(EventBatch released);
  void Enqueue(EventBatch batch);
  void WorkerLoop();
  /// Blocks until the queue is empty and the worker idle.
  void DrainQueue();
  /// The uncached pipeline body (what Explain wraps with the result cache).
  Result<ExplanationReport> ExplainUncached(const AnomalyAnnotation& annotation,
                                            QueryId monitor_query,
                                            const std::string& column);
  /// Folds the scan-health counters into the cache key's degradation state.
  uint64_t DegradationStateFingerprint() const;
  /// Installs the streaming detector on the engine's match callback.
  void BindDetector(QueryId query, const std::string& name);
  /// Moves finalized detector anomalies into the auto-explain queue.
  void ForwardDetectorAnomalies();
  void AutoExplainLoop();

  const EventTypeRegistry* registry_;  // not owned
  XStreamConfig config_;
  EventArchive archive_;
  CepEngine engine_;
  PartitionTable partitions_;
  IngestGuard guard_;
  std::unique_ptr<WriteAheadLog> wal_;
  /// Child half of parent/child replication (null when off). Fed by
  /// ApplyBatch with WAL-durable batches; its pin_seq() clamps WAL
  /// truncation at Checkpoint time.
  std::unique_ptr<ReplicationSender> repl_sender_;
  /// True while Recover() replays the WAL tail: replayed batches are already
  /// on disk, so ApplyBatch must not re-append them to the live log (that
  /// would duplicate the tail and desync the sequence cursor).
  std::atomic<bool> replaying_{false};
  /// Sequence number of the next event to release (== events released so
  /// far); WAL records are stamped with it. Producer-thread only.
  uint64_t next_seq_ = 0;
  /// Query texts in AddQuery order, for checkpoint-manifest validation.
  std::vector<std::pair<std::string, std::string>> query_texts_;

  // Bounded ingest queue (only used when overload.queue_capacity > 0).
  std::mutex queue_mu_;
  std::condition_variable queue_push_cv_;  ///< space available / drained
  std::condition_variable queue_pop_cv_;   ///< work available / stopping
  std::deque<EventBatch> queue_;
  bool worker_busy_ = false;
  bool stopping_ = false;
  std::thread worker_;
  std::atomic<size_t> shed_events_{0};
  std::atomic<size_t> shed_batches_{0};

  std::atomic<int> explanations_running_{0};
  Histogram idle_latency_;
  Histogram busy_latency_;

  // Continuous-serving state (all null/idle unless config_.serving opts in).
  std::unique_ptr<IncrementalFeatureState> incremental_;
  std::unique_ptr<ExplainResultCache> explain_cache_;
  std::unique_ptr<StreamingDetector> detector_;
  QueryId detect_query_id_ = 0;
  int detect_column_index_ = -1;
  /// Data version for cache keys; published by the applying thread after
  /// each batch is visible in engine + archive.
  std::atomic<uint64_t> data_watermark_{0};

  // Auto-explain worker (runs only with serving.auto_explain + detector).
  std::mutex auto_mu_;
  std::condition_variable auto_cv_;       ///< work available / stopping
  std::condition_variable auto_done_cv_;  ///< queue drained + worker idle
  std::deque<StreamAnomaly> auto_queue_;
  bool auto_busy_ = false;
  bool auto_stopping_ = false;
  std::vector<AutoExplanation> auto_results_;
  std::thread auto_worker_;
  std::atomic<size_t> auto_explains_completed_{0};
  std::atomic<size_t> auto_anomalies_dropped_{0};
};

}  // namespace exstream
