// IngestGuard: the front-end hardening layer between the data source and the
// durable ingest pipeline (WAL -> engine + archive).
//
// A hostile or buggy producer must not be able to wedge monitoring: malformed
// events (unknown type, wrong arity, string-vs-number confusion, non-finite
// doubles, sentinel timestamps) are rejected into a bounded `*.quarantine`
// event log with per-reason counters, instead of corrupting the archive or
// aborting ingestion. Mildly out-of-order streams are tolerated via a
// lateness watermark: events are held back up to `lateness_slack` ticks and
// released in timestamp order; events arriving later than that are rejected
// as late (they can no longer be emitted in order).
//
// Everything released by the guard is orderly and well-formed — exactly the
// stream the WAL logs and a recovery replays.

#pragma once

#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "event/event.h"
#include "event/registry.h"

namespace exstream {

/// \brief Why the guard rejected an event.
enum class RejectReason {
  kUnknownType,
  kArityMismatch,
  kValueKindMismatch,  ///< string value on a numeric attribute or vice versa
  kNonFiniteValue,     ///< NaN/Inf double on a declared-double attribute
  kInvalidTimestamp,   ///< INT64_MIN/MAX sentinel (the "NaN timestamp")
  kLate,               ///< older than the lateness watermark allows
};

/// \brief Per-reason reject counters (the ingest-health surface).
struct RejectReport {
  size_t unknown_type = 0;
  size_t arity_mismatch = 0;
  size_t value_kind_mismatch = 0;
  size_t non_finite = 0;
  size_t invalid_timestamp = 0;
  size_t late = 0;
  size_t reject_files_written = 0;   ///< `rejects-*.quarantine` files emitted
  size_t reject_file_evictions = 0;  ///< of those, later evicted by the cap

  size_t total() const {
    return unknown_type + arity_mismatch + value_kind_mismatch + non_finite +
           invalid_timestamp + late;
  }
  std::string ToString() const;
};

struct IngestGuardOptions {
  /// Validate events against the registry schema (off = trust the producer).
  bool validate = true;
  /// Out-of-order tolerance: hold events up to this many ticks behind the
  /// maximum seen timestamp and release them sorted. nullopt = no reordering
  /// (events pass through in arrival order, like the pre-guard pipeline).
  std::optional<Timestamp> lateness_slack;
  /// Where rejected events are logged (`rejects-<n>.quarantine`, readable by
  /// ReadEventsFile). nullopt = count only.
  std::optional<std::string> reject_dir;
  /// Cap on quarantine files in `reject_dir` (oldest-first eviction).
  size_t max_reject_files = 64;
  /// Rejected events buffered before a quarantine file is cut.
  size_t reject_file_events = 1024;
};

/// \brief Validating, reordering admission filter. One producer thread calls
/// Admit/Drain; the report is readable from any thread.
class IngestGuard {
 public:
  IngestGuard(const EventTypeRegistry* registry, IngestGuardOptions options);
  ~IngestGuard();

  /// \brief Filters (and, with a lateness slack, reorders) one batch.
  /// Returns the events released for processing — with reordering active
  /// they come back in non-decreasing timestamp order, possibly including
  /// events from earlier batches and withholding recent ones.
  EventBatch Admit(EventBatch batch);

  /// Single-event fast path: returns false if the event was rejected. Only
  /// valid without a lateness slack (no buffer to hold the event).
  bool AdmitOne(const Event& event);

  /// Releases everything still buffered (stream end / checkpoint), sorted,
  /// and flushes any partial reject log.
  EventBatch Drain();

  /// Events currently held back by the watermark.
  size_t buffered() const { return buffer_.size(); }

  RejectReport report() const;

  /// Checkpoint support: watermark state + held-back events + counters.
  void SaveState(BytesWriter* out) const;
  Status RestoreState(BytesReader* in);

 private:
  /// Schema validation only (no lateness); `why` set on failure.
  bool Validate(const Event& event, RejectReason* why) const;
  void Reject(const Event& event, RejectReason why);
  void FlushRejectLogLocked();

  const EventTypeRegistry* registry_;  // not owned
  IngestGuardOptions options_;

  // Reject bookkeeping (mu_ guards it: Explain reads the report from worker
  // threads while the producer keeps rejecting).
  mutable std::mutex mu_;
  RejectReport report_;
  std::vector<Event> reject_buffer_;
  size_t reject_file_seq_ = 0;

  // Lateness machinery; producer-thread only.
  EventBatch buffer_;
  Timestamp watermark_ = std::numeric_limits<Timestamp>::min();
  Timestamp last_released_ = std::numeric_limits<Timestamp>::min();
};

}  // namespace exstream
