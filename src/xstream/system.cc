#include "xstream/system.h"

#include <unistd.h>

#include <chrono>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "io/file_util.h"

namespace exstream {

namespace {

constexpr uint32_t kManifestMagic = 0x45584350;  // "EXCP"
// v2: engine snapshots carry per-query mid-stream-add flags (merge-plan
// replay on restore); v1 manifests are rejected rather than misparsed.
constexpr uint32_t kManifestVersion = 2;

}  // namespace

XStreamSystem::XStreamSystem(const EventTypeRegistry* registry, XStreamConfig config)
    : registry_(registry),
      config_(std::move(config)),
      archive_(registry, config_.archive),
      engine_(registry, config_.ingest),
      guard_(registry, config_.guard),
      idle_latency_(0.0, config_.latency_histogram_max, 64),
      busy_latency_(0.0, config_.latency_histogram_max, 64) {
  if (config_.durability.wal_dir.has_value()) {
    WalOptions wopts;
    wopts.dir = *config_.durability.wal_dir;
    wopts.segment_bytes = config_.durability.wal_segment_bytes;
    wopts.fsync = config_.durability.fsync;
    wopts.fsync_interval_ms = config_.durability.fsync_interval_ms;
    auto wal = WriteAheadLog::Open(std::move(wopts));
    if (wal.ok()) {
      wal_ = std::move(*wal);
      next_seq_ = wal_->next_seq();
    } else {
      // Monitoring availability beats durability: keep ingesting without a
      // log rather than refusing to start. The failure stays visible here
      // and through wal() == nullptr.
      EXSTREAM_LOG(Error) << "WAL disabled: cannot open "
                          << *config_.durability.wal_dir << ": "
                          << wal.status().ToString();
    }
  }
  if (config_.replication.has_value()) {
    repl_sender_ = std::make_unique<ReplicationSender>(*config_.replication);
    repl_sender_->Start();
  }
  if (config_.serving.incremental_features) {
    incremental_ = std::make_unique<IncrementalFeatureState>(
        registry_, config_.serving.incremental_retention);
  }
  if (config_.serving.explain_cache_capacity > 0) {
    explain_cache_ = std::make_unique<ExplainResultCache>(
        config_.serving.explain_cache_capacity);
  }
  data_watermark_.store(next_seq_, std::memory_order_release);
  if (config_.overload.queue_capacity > 0) {
    worker_ = std::thread(&XStreamSystem::WorkerLoop, this);
  }
}

XStreamSystem::~XStreamSystem() {
  if (auto_worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(auto_mu_);
      auto_stopping_ = true;
    }
    auto_cv_.notify_all();
    auto_worker_.join();
  }
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stopping_ = true;
    }
    queue_pop_cv_.notify_all();
    queue_push_cv_.notify_all();
    worker_.join();
  }
  // After the worker: the last applied batches must reach the sender's spool
  // before its thread stops. Unacked data is not lost — the WAL keeps it
  // (truncate pin) for the next run's resume.
  if (repl_sender_ != nullptr) repl_sender_->Stop();
}

Result<QueryId> XStreamSystem::AddQuery(std::string_view text, std::string name) {
  EXSTREAM_ASSIGN_OR_RETURN(const QueryId id,
                            engine_.AddQueryText(text, std::string(name)));
  if (config_.serving.detector.has_value() && detector_ == nullptr &&
      (config_.serving.detect_query.empty() ||
       config_.serving.detect_query == name)) {
    BindDetector(id, name);
  }
  query_texts_.emplace_back(std::string(text), std::move(name));
  return id;
}

void XStreamSystem::BindDetector(QueryId query, const std::string& name) {
  // Empty detect_column follows the visualization default: the last derived
  // column of the match table (what the CLI charts).
  if (config_.serving.detect_column.empty()) {
    const auto& names = engine_.match_table(query).column_names();
    if (names.empty()) return;
    config_.serving.detect_column = names.back();
  }
  const auto column_index =
      engine_.match_table(query).ColumnIndex(config_.serving.detect_column);
  if (!column_index.ok()) {
    EXSTREAM_LOG(Error) << "streaming detector disabled: query '" << name
                        << "' has no column '" << config_.serving.detect_column
                        << "': " << column_index.status().ToString();
    return;
  }
  detect_query_id_ = query;
  detect_column_index_ = static_cast<int>(*column_index);
  detector_ =
      std::make_unique<StreamingDetector>(name, *config_.serving.detector);
  StreamingDetector* detector = detector_.get();
  const size_t col = *column_index;
  // Fires on the applying thread, after each batch, in deterministic
  // (event, query) order — so detection is reproducible for a fixed stream.
  engine_.SetMatchCallback([detector, query, col](const MatchNotification& n) {
    if (n.query != query || col >= n.row.values.size()) return;
    detector->Observe(n.partition, n.row.ts, n.row.values[col].AsDouble());
  });
  if (config_.serving.auto_explain) {
    auto_worker_ = std::thread(&XStreamSystem::AutoExplainLoop, this);
  }
}

void XStreamSystem::OnEvent(const Event& event) {
  // With reordering, logging, or queueing active the single event must flow
  // through the shared release pipeline; otherwise keep the zero-copy
  // per-event fast path (validation only).
  if (config_.guard.lateness_slack.has_value() || wal_ != nullptr ||
      config_.overload.queue_capacity > 0) {
    EventBatch batch;
    batch.push_back(event);
    OnEventBatch(std::move(batch));
    return;
  }
  if (config_.guard.validate && !guard_.AdmitOne(event)) return;
  ++next_seq_;
  Stopwatch timer;
  engine_.OnEvent(event);
  if (incremental_ != nullptr) incremental_->OnEvent(event);
  archive_.OnEvent(event);
  const double elapsed = timer.ElapsedSeconds();
  if (explanations_running_.load(std::memory_order_relaxed) > 0) {
    busy_latency_.Add(elapsed);
  } else {
    idle_latency_.Add(elapsed);
  }
  data_watermark_.store(next_seq_, std::memory_order_release);
  if (detector_ != nullptr) ForwardDetectorAnomalies();
}

void XStreamSystem::OnEventBatch(EventBatch batch) {
  if (batch.empty()) return;
  Dispatch(guard_.Admit(std::move(batch)));
}

void XStreamSystem::Dispatch(EventBatch released) {
  if (released.empty()) return;
  if (config_.overload.queue_capacity > 0) {
    Enqueue(std::move(released));
  } else {
    ApplyBatch(std::move(released));
  }
}

void XStreamSystem::Enqueue(EventBatch batch) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  const size_t cap = config_.overload.queue_capacity;
  if (queue_.size() >= cap || stopping_) {
    switch (stopping_ ? BackpressurePolicy::kShedNewest : config_.overload.policy) {
      case BackpressurePolicy::kBlock: {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.overload.block_deadline_ms);
        queue_push_cv_.wait_until(
            lock, deadline, [&] { return queue_.size() < cap || stopping_; });
        if (queue_.size() >= cap || stopping_) {
          // Overload must not become deadlock: past the deadline the batch
          // is shed and the producer keeps running.
          shed_events_ += batch.size();
          ++shed_batches_;
          return;
        }
        break;
      }
      case BackpressurePolicy::kShedOldest:
        while (queue_.size() >= cap) {
          shed_events_ += queue_.front().size();
          ++shed_batches_;
          queue_.pop_front();
        }
        break;
      case BackpressurePolicy::kShedNewest:
        shed_events_ += batch.size();
        ++shed_batches_;
        return;
    }
  }
  queue_.push_back(std::move(batch));
  queue_pop_cv_.notify_one();
}

void XStreamSystem::WorkerLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_pop_cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
    if (queue_.empty() && stopping_) return;
    EventBatch batch = std::move(queue_.front());
    queue_.pop_front();
    worker_busy_ = true;
    queue_push_cv_.notify_all();
    lock.unlock();
    ApplyBatch(std::move(batch));
    lock.lock();
    worker_busy_ = false;
    queue_push_cv_.notify_all();
  }
}

void XStreamSystem::DrainQueue() {
  if (!worker_.joinable()) return;
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_push_cv_.wait(lock, [&] { return queue_.empty() && !worker_busy_; });
}

void XStreamSystem::ApplyBatch(EventBatch batch) {
  if (batch.empty()) return;
  // The WAL append rides on the applying thread, just before the engine sees
  // the batch. Log-before-apply keeps recovery exact (anything in engine or
  // archive state is replayable), and with a bounded ingest queue the
  // serialize+CRC+write runs on the worker, overlapped with the producer's
  // validation of the next batch. Appending after the queue also means shed
  // batches never reach the log, so replay cannot resurrect events the
  // overload policy dropped.
  const uint64_t first_seq = next_seq_;
  // Replication follows durability: only batches the WAL holds (or, without
  // a WAL, every applied batch) feed the sender, so the replicated seq
  // stream matches what crash recovery can rebuild. During WAL replay the
  // sender is fed directly by Recover() with the original seqs.
  bool replicate =
      repl_sender_ != nullptr && !replaying_.load(std::memory_order_relaxed);
  if (wal_ != nullptr && !replaying_.load(std::memory_order_relaxed)) {
    const Status st = wal_->Append(next_seq_, batch);
    if (!st.ok()) {
      EXSTREAM_LOG(Error) << "WAL append failed (events stay in memory but "
                             "will not survive a crash): "
                          << st.ToString();
      // A batch the log lost must not replicate either: the next successful
      // append reuses these sequence numbers for different events.
      replicate = false;
    }
    // Mirror the WAL's own cursor: a failed append does not advance it, so
    // the on-disk stream stays contiguous and replayable.
    next_seq_ = wal_->next_seq();
  } else {
    next_seq_ += batch.size();
  }
  if (replicate) repl_sender_->OnBatch(first_seq, batch);
  Stopwatch timer;
  const size_t n = batch.size();
  engine_.IngestBatch(batch);
  // The incremental tails must see exactly the archive's event order, so the
  // feed sits between engine evaluation and the archive taking ownership.
  if (incremental_ != nullptr) incremental_->OnEventBatch(batch);
  archive_.OnEventBatch(std::move(batch));
  // One histogram sample per event, at the batch's per-event average, so the
  // Appendix-C latency accounting keeps its per-event denominator.
  const double per_event = timer.ElapsedSeconds() / static_cast<double>(n);
  Histogram& hist = explanations_running_.load(std::memory_order_relaxed) > 0
                        ? busy_latency_
                        : idle_latency_;
  for (size_t i = 0; i < n; ++i) hist.Add(per_event);
  // Publish the new data version only after the batch is visible everywhere;
  // cache keys built from it then name state that actually exists.
  data_watermark_.store(next_seq_, std::memory_order_release);
  if (detector_ != nullptr) ForwardDetectorAnomalies();
}

void XStreamSystem::OnStreamEnd() { Flush(); }

void XStreamSystem::Flush() {
  // A visibility barrier, not a durability point: the WAL keeps its own
  // fsync schedule (policy / background flusher / shutdown sync). Callers
  // that need bytes on disk take a Checkpoint or call wal()->Sync().
  Dispatch(guard_.Drain());
  DrainQueue();
}

Status XStreamSystem::Checkpoint(const std::string& dir) {
  // The snapshot must capture a quiescent pipeline: everything dispatched is
  // applied first. The guard's lateness buffer is NOT released — it is saved
  // verbatim so recovery resumes with the same watermark state.
  DrainQueue();
  EXSTREAM_RETURN_NOT_OK(EnsureDir(dir));
  BytesWriter w;
  w.Put<uint32_t>(kManifestMagic);
  w.Put<uint32_t>(kManifestVersion);
  w.Put<uint64_t>(next_seq_);
  w.Put<uint32_t>(static_cast<uint32_t>(query_texts_.size()));
  for (const auto& [text, name] : query_texts_) {
    w.PutString(text);
    w.PutString(name);
  }
  guard_.SaveState(&w);
  engine_.SaveState(&w);
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t chunk_epoch,
                            archive_.CheckpointTo(dir, &w));
  partitions_.SaveState(&w);
  const std::string payload = w.Take();
  BytesWriter framed;
  framed.Put<uint32_t>(Crc32(payload.data(), payload.size()));
  framed.PutRaw(payload);
  EXSTREAM_RETURN_NOT_OK(WriteFileAtomic(dir + "/MANIFEST", framed.Take()));
  // The superseded epoch's chunk files become garbage only now that the new
  // manifest is durably in place; until the rename they backed the previous
  // checkpoint. Reclamation is best-effort — leaked files are retried by the
  // next checkpoint's sweep.
  const Status gc = EventArchive::RemoveStaleCheckpointChunks(dir, chunk_epoch);
  if (!gc.ok()) {
    EXSTREAM_LOG(Warn) << "checkpoint chunk GC in " << dir
                       << " incomplete: " << gc.ToString();
  }
  if (wal_ != nullptr) {
    // Only after the manifest is durably in place may the WAL drop segments
    // it covers; a crash anywhere above leaves the previous checkpoint plus
    // the full log, which recovery handles. With replication, segments the
    // parent has not acked survive even though the checkpoint covers them —
    // they are the resume source after a child crash.
    if (repl_sender_ != nullptr) {
      wal_->SetTruncatePin(repl_sender_->pin_seq());
    }
    EXSTREAM_RETURN_NOT_OK(wal_->Sync());
    EXSTREAM_RETURN_NOT_OK(wal_->TruncateThrough(next_seq_).status());
  }
  return Status::OK();
}

Result<XStreamSystem::RecoveryReport> XStreamSystem::Recover(
    const std::string& checkpoint_dir) {
  if (engine_.events_processed() != 0 || archive_.TotalEvents() != 0) {
    return Status::InvalidArgument(
        "Recover requires a fresh system: no events ingested yet");
  }
  RecoveryReport rep;
  uint64_t from_seq = 0;
  const std::string manifest_path =
      checkpoint_dir.empty() ? std::string() : checkpoint_dir + "/MANIFEST";
  if (!manifest_path.empty() && ::access(manifest_path.c_str(), F_OK) == 0) {
    EXSTREAM_ASSIGN_OR_RETURN(const std::string framed,
                              ReadFileToString(manifest_path));
    BytesReader fr(framed);
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t stored_crc, fr.Get<uint32_t>());
    const std::string_view payload =
        std::string_view(framed).substr(sizeof(uint32_t));
    if (Crc32(payload.data(), payload.size()) != stored_crc) {
      return Status::Corruption("checkpoint manifest checksum mismatch: " +
                                manifest_path);
    }
    BytesReader in(payload);
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t magic, in.Get<uint32_t>());
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t version, in.Get<uint32_t>());
    if (magic != kManifestMagic || version != kManifestVersion) {
      return Status::Corruption("unrecognized checkpoint manifest header in " +
                                manifest_path);
    }
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t seq, in.Get<uint64_t>());
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_queries, in.Get<uint32_t>());
    if (n_queries != query_texts_.size()) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint has %u queries, this system has %zu: add the same "
          "queries in the same order before Recover",
          n_queries, query_texts_.size()));
    }
    for (uint32_t i = 0; i < n_queries; ++i) {
      EXSTREAM_ASSIGN_OR_RETURN(const std::string text, in.GetString());
      EXSTREAM_ASSIGN_OR_RETURN(const std::string name, in.GetString());
      if (text != query_texts_[i].first || name != query_texts_[i].second) {
        return Status::InvalidArgument(
            StrFormat("checkpoint query %u ('%s') does not match this "
                      "system's query %u ('%s')",
                      i, name.c_str(), i, query_texts_[i].second.c_str()));
      }
    }
    EXSTREAM_RETURN_NOT_OK(guard_.RestoreState(&in));
    EXSTREAM_RETURN_NOT_OK(engine_.RestoreState(&in));
    EXSTREAM_RETURN_NOT_OK(archive_.RestoreFrom(&in));
    EXSTREAM_RETURN_NOT_OK(partitions_.RestoreState(&in));
    rep.manifest_loaded = true;
    rep.checkpoint_seq = seq;
    from_seq = seq;
  }
  if (incremental_ != nullptr) {
    incremental_->Reset();
    if (rep.manifest_loaded) {
      // The restored archive holds events the incremental tails never saw;
      // coverage floors must start strictly above the first replayed event
      // (checkpoint boundaries can split equal timestamps).
      incremental_->MarkExternalData();
    }
  }
  if (config_.durability.wal_dir.has_value()) {
    // The replayed batches are already in the log: flag the replay so
    // ApplyBatch skips the WAL append (re-appending would duplicate the tail
    // into new segments and run the sequence cursor past the live WAL's,
    // making the first post-recovery append fail and a second crash replay
    // the same events twice).
    replaying_.store(true, std::memory_order_relaxed);
    // With replication, replay from the WAL's oldest surviving record — not
    // just the checkpoint tail. Segments below the checkpoint survive only
    // because the truncate pin held them back for an unacked parent, and
    // they rebuild the sender's spool/pending state here. The engine/archive
    // still apply only the tail past the checkpoint.
    const uint64_t replay_from = repl_sender_ != nullptr ? 0 : from_seq;
    auto replay = WriteAheadLog::ReplayWithSeq(
        *config_.durability.wal_dir, replay_from,
        [this, from_seq](uint64_t first_seq, EventBatch batch) {
          if (repl_sender_ != nullptr) {
            repl_sender_->OnBatch(first_seq, batch);
          }
          if (first_seq + batch.size() <= from_seq) return;  // checkpointed
          if (first_seq < from_seq) {
            batch.erase(batch.begin(),
                        batch.begin() +
                            static_cast<ptrdiff_t>(from_seq - first_seq));
          }
          ApplyBatch(std::move(batch));
        });
    replaying_.store(false, std::memory_order_relaxed);
    EXSTREAM_RETURN_NOT_OK(replay.status());
    rep.wal = std::move(*replay);
    next_seq_ = std::max(from_seq, rep.wal.next_seq);
    if (wal_ != nullptr) {
      // Resume from the live WAL's own cursor (it scanned the same segments
      // at Open) so the next Append continues the on-disk stream exactly.
      next_seq_ = std::max(next_seq_, wal_->next_seq());
    }
  } else {
    next_seq_ = from_seq;
  }
  // No explanation computed before the restore may survive it: the cache's
  // watermark dimension cannot distinguish a pre-crash sequence space from
  // the recovered one.
  if (explain_cache_ != nullptr) explain_cache_->Clear();
  data_watermark_.store(next_seq_, std::memory_order_release);
  return rep;
}

Status XStreamSystem::IndexPartitions(QueryId query,
                                      std::map<std::string, std::string> dimensions) {
  const MatchTable& matches = engine_.match_table(query);
  const std::string& query_name = engine_.compiled(query).query().name;
  for (const std::string& partition : matches.Partitions()) {
    const std::vector<MatchRow> rows = matches.Rows(partition);
    if (rows.empty()) continue;
    PartitionRecord rec;
    rec.query_name = query_name;
    rec.partition = partition;
    rec.dimensions = dimensions;
    rec.start_ts = rows.front().ts;
    rec.end_ts = rows.back().ts;
    rec.num_points = rows.size();
    partitions_.Upsert(std::move(rec));
  }
  return Status::OK();
}

SeriesProvider XStreamSystem::MakeSeriesProvider(QueryId query,
                                                 std::string column) const {
  const CepEngine* engine_ptr = &engine_;
  const std::string query_name = engine_.compiled(query).query().name;
  return [engine_ptr, query, query_name, column](
             const std::string& q, const std::string& partition) -> Result<TimeSeries> {
    if (q != query_name) {
      return Status::NotFound("no monitored series for query '" + q + "'");
    }
    return engine_ptr->match_table(query).ExtractSeries(partition, column);
  };
}

Result<ExplanationReport> XStreamSystem::Explain(const AnomalyAnnotation& annotation,
                                                 QueryId monitor_query,
                                                 const std::string& column) {
  if (explain_cache_ != nullptr) {
    const std::string key =
        ExplainCacheKey(annotation, monitor_query, column, config_.explain,
                        data_watermark(), DegradationStateFingerprint());
    const ExplainResultCache::ResultPtr result = explain_cache_->GetOrCompute(
        key, [&] { return ExplainUncached(annotation, monitor_query, column); });
    return *result;
  }
  return ExplainUncached(annotation, monitor_query, column);
}

uint64_t XStreamSystem::DegradationStateFingerprint() const {
  // Any change here must miss the cache: a scan after a quarantine or a
  // tier-0 eviction can return different (degraded) data for the same
  // interval, and shed/rejected counts are folded into every report.
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(archive_.quarantined_chunks());
  mix(archive_.tier0_evictions());
  mix(shed_events_.load());
  mix(guard_.report().total());
  return h;
}

Result<ExplanationReport> XStreamSystem::ExplainUncached(
    const AnomalyAnnotation& annotation, QueryId monitor_query,
    const std::string& column) {
  ExplanationEngine explainer(&archive_, &partitions_,
                              MakeSeriesProvider(monitor_query, column),
                              config_.explain, incremental_.get());
  explanations_running_.fetch_add(1);
  auto result = explainer.Explain(annotation);
  explanations_running_.fetch_sub(1);
  if (result.ok()) {
    // Ingest-side losses make the analyzed data incomplete in ways the
    // archive scans cannot see; fold them into the degradation accounting.
    const size_t shed = shed_events_.load();
    const size_t rejected = guard_.report().total();
    if (shed > 0 || rejected > 0) {
      result->degradation.events_shed += shed;
      result->degradation.events_rejected += rejected;
      if (result->degradation.degraded()) {
        result->explanation.MarkDegraded(result->degradation.ToString());
      }
    }
  }
  return result;
}

std::future<Result<ExplanationReport>> XStreamSystem::ExplainAsync(
    const AnomalyAnnotation& annotation, QueryId monitor_query,
    const std::string& column) {
  return std::async(std::launch::async, [this, annotation, monitor_query, column] {
    return Explain(annotation, monitor_query, column);
  });
}

void XStreamSystem::ForwardDetectorAnomalies() {
  // Only the auto-explain worker consumes through here; without it, callers
  // drain detector()->TakeReady() themselves.
  if (!auto_worker_.joinable()) return;
  std::vector<StreamAnomaly> ready = detector_->TakeReady();
  if (ready.empty()) return;
  {
    std::lock_guard<std::mutex> lock(auto_mu_);
    for (StreamAnomaly& anomaly : ready) {
      auto_queue_.push_back(std::move(anomaly));
      while (auto_queue_.size() > config_.serving.auto_queue_capacity) {
        // Ingest must never block on explanation throughput: overflow drops
        // the oldest pending anomaly (the newest describes the live incident).
        auto_queue_.pop_front();
        auto_anomalies_dropped_.fetch_add(1);
      }
    }
  }
  auto_cv_.notify_one();
}

void XStreamSystem::AutoExplainLoop() {
  std::unique_lock<std::mutex> lock(auto_mu_);
  for (;;) {
    auto_cv_.wait(lock, [&] { return !auto_queue_.empty() || auto_stopping_; });
    if (auto_queue_.empty() && auto_stopping_) return;
    StreamAnomaly anomaly = std::move(auto_queue_.front());
    auto_queue_.pop_front();
    auto_busy_ = true;
    lock.unlock();
    // Through the cached path: repeated excursions over one incident, or an
    // interactive user re-exploring what the detector flagged, share one
    // computation.
    auto report = std::make_shared<const Result<ExplanationReport>>(Explain(
        anomaly.annotation, detect_query_id_, config_.serving.detect_column));
    lock.lock();
    auto_results_.push_back(AutoExplanation{std::move(anomaly), std::move(report)});
    while (auto_results_.size() > config_.serving.max_auto_explanations) {
      auto_results_.erase(auto_results_.begin());
    }
    auto_busy_ = false;
    auto_explains_completed_.fetch_add(1);
    auto_done_cv_.notify_all();
  }
}

std::vector<XStreamSystem::AutoExplanation> XStreamSystem::TakeAutoExplanations() {
  std::lock_guard<std::mutex> lock(auto_mu_);
  std::vector<AutoExplanation> out = std::move(auto_results_);
  auto_results_.clear();
  return out;
}

size_t XStreamSystem::FinalizeDetector() {
  if (detector_ == nullptr) return 0;
  const size_t closed = detector_->FinalizeOpenExcursions();
  ForwardDetectorAnomalies();
  return closed;
}

void XStreamSystem::DrainAutoExplains() {
  if (detector_ == nullptr || !auto_worker_.joinable()) return;
  ForwardDetectorAnomalies();
  std::unique_lock<std::mutex> lock(auto_mu_);
  auto_done_cv_.wait(lock, [&] { return auto_queue_.empty() && !auto_busy_; });
}

XStreamSystem::FaultStats XStreamSystem::fault_stats() const {
  FaultStats s;
  s.spill_read_retries = archive_.spill_read_retries();
  s.spill_write_retries = archive_.spill_write_retries();
  s.spill_write_failures = archive_.spill_write_failures();
  s.quarantined_chunks = archive_.quarantined_chunks();
  s.degraded_scans = archive_.degraded_scans();
  const RejectReport rejects = guard_.report();
  s.quarantine_evictions =
      archive_.quarantine_evictions() + rejects.reject_file_evictions;
  s.rejected_events = rejects.total();
  s.shed_events = shed_events_.load();
  s.shed_batches = shed_batches_.load();
  if (wal_ != nullptr) {
    const WriteAheadLog::Stats wal_stats = wal_->stats();
    s.wal_append_failures = wal_stats.append_failures;
    s.wal_sync_failures = wal_stats.sync_failures;
  }
  if (repl_sender_ != nullptr) {
    const ReplicationSender::Stats repl = repl_sender_->stats();
    s.repl_shed_events = repl.shed_events;
    s.repl_shed_chunks = repl.shed_chunks;
    s.repl_reconnects = repl.reconnects;
  }
  return s;
}

}  // namespace exstream
