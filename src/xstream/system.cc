#include "xstream/system.h"

#include "common/stopwatch.h"

namespace exstream {

XStreamSystem::XStreamSystem(const EventTypeRegistry* registry, XStreamConfig config)
    : registry_(registry),
      config_(std::move(config)),
      archive_(registry, config_.archive),
      engine_(registry, config_.ingest),
      idle_latency_(0.0, config_.latency_histogram_max, 64),
      busy_latency_(0.0, config_.latency_histogram_max, 64) {}

Result<QueryId> XStreamSystem::AddQuery(std::string_view text, std::string name) {
  return engine_.AddQueryText(text, std::move(name));
}

void XStreamSystem::OnEvent(const Event& event) {
  Stopwatch timer;
  engine_.OnEvent(event);
  archive_.OnEvent(event);
  const double elapsed = timer.ElapsedSeconds();
  if (explanation_active_.load(std::memory_order_relaxed)) {
    busy_latency_.Add(elapsed);
  } else {
    idle_latency_.Add(elapsed);
  }
}

void XStreamSystem::OnEventBatch(EventBatch batch) {
  if (batch.empty()) return;
  Stopwatch timer;
  const size_t n = batch.size();
  engine_.IngestBatch(batch);
  archive_.OnEventBatch(std::move(batch));
  // One histogram sample per event, at the batch's per-event average, so the
  // Appendix-C latency accounting keeps its per-event denominator.
  const double per_event = timer.ElapsedSeconds() / static_cast<double>(n);
  Histogram& hist = explanation_active_.load(std::memory_order_relaxed)
                        ? busy_latency_
                        : idle_latency_;
  for (size_t i = 0; i < n; ++i) hist.Add(per_event);
}

Status XStreamSystem::IndexPartitions(QueryId query,
                                      std::map<std::string, std::string> dimensions) {
  const MatchTable& matches = engine_.match_table(query);
  const std::string& query_name = engine_.compiled(query).query().name;
  for (const std::string& partition : matches.Partitions()) {
    const std::vector<MatchRow> rows = matches.Rows(partition);
    if (rows.empty()) continue;
    PartitionRecord rec;
    rec.query_name = query_name;
    rec.partition = partition;
    rec.dimensions = dimensions;
    rec.start_ts = rows.front().ts;
    rec.end_ts = rows.back().ts;
    rec.num_points = rows.size();
    partitions_.Upsert(std::move(rec));
  }
  return Status::OK();
}

SeriesProvider XStreamSystem::MakeSeriesProvider(QueryId query,
                                                 std::string column) const {
  const CepEngine* engine_ptr = &engine_;
  const std::string query_name = engine_.compiled(query).query().name;
  return [engine_ptr, query, query_name, column](
             const std::string& q, const std::string& partition) -> Result<TimeSeries> {
    if (q != query_name) {
      return Status::NotFound("no monitored series for query '" + q + "'");
    }
    return engine_ptr->match_table(query).ExtractSeries(partition, column);
  };
}

Result<ExplanationReport> XStreamSystem::Explain(const AnomalyAnnotation& annotation,
                                                 QueryId monitor_query,
                                                 const std::string& column) {
  ExplanationEngine explainer(&archive_, &partitions_,
                              MakeSeriesProvider(monitor_query, column),
                              config_.explain);
  explanation_active_.store(true);
  auto result = explainer.Explain(annotation);
  explanation_active_.store(false);
  return result;
}

std::future<Result<ExplanationReport>> XStreamSystem::ExplainAsync(
    const AnomalyAnnotation& annotation, QueryId monitor_query,
    const std::string& column) {
  return std::async(std::launch::async, [this, annotation, monitor_query, column] {
    return Explain(annotation, monitor_query, column);
  });
}

}  // namespace exstream
