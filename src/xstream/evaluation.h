// Method-comparison evaluation shared by the Fig. 14/15/16 (Hadoop) and
// Fig. 22/23/24 (supply chain) benchmark harnesses.
//
// Runs XStream (without Step 3), XStream-cluster (full pipeline), logistic
// regression, decision tree, majority voting, and data fusion on one
// workload, measuring consistency, conciseness, and prediction power exactly
// as Sec. 6.2 defines them.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "sim/workloads.h"

namespace exstream {

/// \brief One method's scores on one workload.
struct MethodResult {
  std::string method;
  std::vector<std::string> selected;  ///< selected/explanation features
  size_t explanation_size = 0;        ///< conciseness, Fig. 15 (|selected|)
  double consistency = 0.0;           ///< F-measure vs ground truth, Fig. 14
  double prediction_f1 = 0.0;         ///< F-measure on held-out data, Fig. 16
};

/// \brief All methods' scores plus workload-level context.
struct MethodComparison {
  std::vector<MethodResult> results;
  size_t feature_space_size = 0;
  size_t ground_truth_size = 0;
  size_t ground_truth_clusters = 0;  ///< Fig. 15's "ground truth cluster" bar
};

/// Canonical method names, in the order benches print them.
inline constexpr const char* kMethodXStream = "XStream";
inline constexpr const char* kMethodXStreamCluster = "XStream-cluster";
inline constexpr const char* kMethodLogReg = "logistic-regression";
inline constexpr const char* kMethodDTree = "decision-tree";
inline constexpr const char* kMethodVote = "majority-voting";
inline constexpr const char* kMethodFusion = "data-fusion";

/// \brief Runs every method on the workload's train annotation and scores it
/// on the held-out test annotation.
Result<MethodComparison> CompareMethods(const WorkloadRun& run);

/// \brief Finds a MethodResult by name; dies if absent (bench-side helper).
const MethodResult& FindMethod(const MethodComparison& cmp, const std::string& name);

/// \brief Cluster-aware consistency for explanations produced with Step 3
/// enabled: a selected representative covers any ground-truth feature living
/// in its correlation cluster (the same equivalence Fig. 15 applies when it
/// compares sizes against the clustered ground truth).
double ClusterAwareConsistency(const ExplanationReport& report,
                               const std::vector<std::string>& ground_truth);

}  // namespace exstream
