// TenantHub: the per-tenant serving registry behind multi-child fan-in
// replication.
//
// One parent process serves N tenants; each tenant owns a full XStreamSystem
// (engine, archive, WAL, partition table), so two tenants' events can never
// co-mingle in archive chunks, match tables, or Explain results — isolation
// is structural, not filtered. The hub is the directory over those systems
// plus the cross-tenant policy that must NOT live in any one system:
//
//  - the per-tenant *apply lock*: XStreamSystem's synchronous ingest is
//    single-producer, so concurrent child sessions of one tenant serialize
//    their applies here (different tenants proceed in parallel);
//  - per-tenant ingest quotas riding the backpressure model: a token bucket
//    over wire bytes/sec plus a bounded queue share capping bytes a tenant's
//    sessions may hold in flight while waiting for the apply lock. Over-quota
//    frames are shed by the receiver and disclosed through the owning
//    tenant's fault_stats()/DegradationReport only — a noisy neighbor can
//    starve itself, never a sibling;
//  - the federated read surface: per-tenant Explain / fault stats / partition
//    listings, with partition keys qualified by tenant namespace
//    (QualifyTenantKey, cep/interner.h) wherever tenants share one output.
//
// Register every tenant (fully recovered) before the receiver starts; a
// HELLO for an unknown tenant is rejected at the handshake.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "xstream/system.h"

namespace exstream {

/// \brief Per-tenant ingest quota. Zeros disable the respective limit.
struct TenantQuota {
  /// Token-bucket refill rate over replicated wire bytes (0 = unlimited).
  uint64_t bytes_per_sec = 0;
  /// Bucket depth: the largest burst admitted at once.
  uint64_t burst_bytes = 1u << 20;
  /// Cap on bytes the tenant's sessions may hold in flight awaiting the
  /// apply lock (0 = unlimited). A tenant with nothing in flight is always
  /// admitted, so the share bounds fan-in amplification without starvation.
  uint64_t queue_share_bytes = 0;
};

class TenantHub {
 public:
  /// Milliseconds on a monotonic clock; injectable so quota tests are
  /// deterministic. Default: std::chrono::steady_clock.
  using ClockMillisFn = std::function<int64_t()>;

  explicit TenantHub(ClockMillisFn clock = {});
  ~TenantHub();

  TenantHub(const TenantHub&) = delete;
  TenantHub& operator=(const TenantHub&) = delete;

  /// Registers `system` (not owned, must outlive the hub) as tenant `name`.
  /// Fails on duplicates. The system should be recovered before the
  /// replication receiver starts, so ledger reconciliation sees its true seq.
  Status AddTenant(const std::string& name, XStreamSystem* system,
                   TenantQuota quota = {});

  bool HasTenant(const std::string& name) const;
  XStreamSystem* system(const std::string& name) const;
  std::vector<std::string> tenants() const;

  /// Replaces the tenant's quota (tokens reset to a full bucket).
  Status SetQuota(const std::string& name, TenantQuota quota);

  // --- Receiver-facing admission surface -----------------------------------

  /// Charges `bytes` against the tenant's token bucket; false = shed.
  bool TryChargeQuota(const std::string& name, uint64_t bytes);

  /// Enters the tenant's fan-in queue with `bytes` in flight; false = the
  /// queue share is exhausted (shed; the caller must NOT LeaveQueue).
  bool TryEnterQueue(const std::string& name, uint64_t bytes);
  void LeaveQueue(const std::string& name, uint64_t bytes);

  /// The tenant's apply lock: hold it across watermark arithmetic + apply so
  /// concurrent sessions of one tenant serialize. Unknown tenant = no lock.
  std::unique_lock<std::mutex> LockApply(const std::string& name);

  /// Records a quota shed for the tenant's stats (the receiver also routes
  /// the events into the tenant system's AddExternalShed for disclosure).
  void NoteQuotaShed(const std::string& name, uint64_t events,
                     bool queue_share);

  struct TenantStats {
    uint64_t quota_shed_frames = 0;  ///< frames shed by the token bucket
    uint64_t quota_shed_events = 0;
    uint64_t queue_shed_frames = 0;  ///< frames shed by the queue share
    uint64_t queue_shed_events = 0;
    uint64_t queued_bytes = 0;       ///< currently in flight
  };
  TenantStats tenant_stats(const std::string& name) const;

  // --- Federated per-tenant read surface -----------------------------------

  /// Runs the tenant's Explain — over its own archive and match tables only,
  /// so the result (including its DegradationReport) is exactly what the
  /// tenant's single-node system would produce.
  Result<ExplanationReport> Explain(const std::string& name,
                                    const AnomalyAnnotation& annotation,
                                    QueryId monitor_query,
                                    const std::string& column);

  Result<XStreamSystem::FaultStats> fault_stats(const std::string& name) const;

  /// The tenant's partition keys for `query`, tenant-qualified
  /// ("tenant/key") so cross-tenant listings can never collide.
  Result<std::vector<std::string>> QualifiedPartitions(const std::string& name,
                                                       QueryId query) const;

  /// Filesystem-safe form of a wire-supplied tenant name for deriving
  /// per-tenant state/WAL subdirectories: every byte outside [A-Za-z0-9._-]
  /// becomes '_' (and an empty name becomes "_"), so no tenant string can
  /// traverse outside its parent directory.
  static std::string SanitizeTenantForPath(std::string_view tenant);

 private:
  struct Tenant {
    XStreamSystem* system = nullptr;  // not owned
    std::mutex apply_mu;
    mutable std::mutex state_mu;  ///< quota/stat state below
    TenantQuota quota;
    double tokens = 0;            ///< current bucket level (bytes)
    int64_t last_refill_ms = 0;
    TenantStats stats;
  };

  Tenant* Find(const std::string& name) const;
  int64_t NowMs() const;

  ClockMillisFn clock_;
  mutable std::mutex mu_;  ///< guards the registry map
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace exstream
