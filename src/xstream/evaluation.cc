#include "xstream/evaluation.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/stats.h"
#include "explain/correlation_filter.h"
#include "ml/data_fusion.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/majority_vote.h"
#include "ml/metrics.h"

namespace exstream {

namespace {

// Builds the labeled dataset for one annotation (train or test).
Result<Dataset> DatasetForAnnotation(const FeatureBuilder& builder,
                                     const std::vector<FeatureSpec>& specs,
                                     const AnomalyAnnotation& annotation) {
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Feature> abnormal,
                            builder.Build(specs, annotation.abnormal.range));
  EXSTREAM_ASSIGN_OR_RETURN(std::vector<Feature> reference,
                            builder.Build(specs, annotation.reference.range));
  return BuildDataset(abnormal, reference, /*samples_per_interval=*/64);
}

// Evaluates an explanation as a predictor over a labeled dataset.
double ExplanationPredictionF1(const Explanation& explanation, const Dataset& test) {
  std::vector<int> predictions;
  predictions.reserve(test.num_rows());
  std::map<std::string, double> row_values;
  for (const auto& row : test.rows) {
    row_values.clear();
    for (size_t f = 0; f < test.num_features(); ++f) {
      row_values[test.feature_names[f]] = row[f];
    }
    predictions.push_back(explanation.Eval(row_values) ? 1 : 0);
  }
  return EvaluatePredictions(test.labels, predictions).F1();
}

// Number of correlation clusters among the ground-truth signals, for the
// Fig. 15 "ground truth cluster" series: materialize one representative
// feature per signal over the annotated intervals and cluster them.
Result<size_t> GroundTruthClusters(const WorkloadRun& run,
                                   const std::vector<RankedFeature>& ranked) {
  std::vector<RankedFeature> truth_features;
  for (const std::string& signal : run.ground_truth) {
    for (const RankedFeature& f : ranked) {
      if (SameUnderlyingSignal(f.spec.Name(), signal)) {
        truth_features.push_back(f);
        break;  // ranked is reward-sorted: first match is the best aggregate
      }
    }
  }
  if (truth_features.empty()) return size_t{0};
  const CorrelationFilterResult clusters = CorrelationClusterFilter(truth_features);
  return static_cast<size_t>(clusters.num_clusters);
}

}  // namespace

// Cluster-aware consistency for XStream-cluster (Fig. 14): Step 3 keeps one
// representative per correlation cluster, so a representative "covers" any
// ground-truth feature living in its cluster — the same equivalence Fig. 15
// applies when it compares explanation sizes against the *clustered* ground
// truth.
double ClusterAwareConsistency(const ExplanationReport& report,
                               const std::vector<std::string>& ground_truth) {
  if (report.final_features.empty() || ground_truth.empty()) {
    return report.final_features.empty() && ground_truth.empty() ? 1.0 : 0.0;
  }
  const auto& features = report.after_validation;
  const auto& labels = report.clustering.cluster_labels;

  // Clusters that contain at least one ground-truth-signal feature.
  std::vector<int> truth_clusters;
  for (size_t i = 0; i < features.size() && i < labels.size(); ++i) {
    for (const std::string& g : ground_truth) {
      if (SameUnderlyingSignal(features[i].spec.Name(), g)) {
        truth_clusters.push_back(labels[i]);
        break;
      }
    }
  }
  auto is_truth_cluster = [&](int c) {
    return std::find(truth_clusters.begin(), truth_clusters.end(), c) !=
           truth_clusters.end();
  };

  // Precision: selected representatives whose cluster holds a truth feature.
  size_t tp_selected = 0;
  for (const RankedFeature& rep : report.final_features) {
    for (size_t i = 0; i < features.size(); ++i) {
      if (features[i].spec.Name() == rep.spec.Name()) {
        if (is_truth_cluster(labels[i])) ++tp_selected;
        break;
      }
    }
  }
  // Recall: truth signals whose cluster got a selected representative. Step 3
  // selects one representative per cluster, so a truth signal is covered iff
  // it survived into after_validation at all.
  size_t covered = 0;
  for (const std::string& g : ground_truth) {
    for (size_t i = 0; i < features.size() && i < labels.size(); ++i) {
      if (SameUnderlyingSignal(features[i].spec.Name(), g)) {
        ++covered;
        break;
      }
    }
  }
  const double precision = static_cast<double>(tp_selected) /
                           static_cast<double>(report.final_features.size());
  const double recall =
      static_cast<double>(covered) / static_cast<double>(ground_truth.size());
  return FMeasure(precision, recall);
}

namespace {

MethodResult ScoreMethod(const std::string& name, std::vector<std::string> selected,
                         double prediction_f1,
                         const std::vector<std::string>& ground_truth) {
  MethodResult r;
  r.method = name;
  r.selected = std::move(selected);
  r.explanation_size = r.selected.size();
  r.consistency = ExplanationConsistency(r.selected, ground_truth);
  r.prediction_f1 = prediction_f1;
  return r;
}

}  // namespace

Result<MethodComparison> CompareMethods(const WorkloadRun& run) {
  MethodComparison out;

  const FeatureSpaceOptions fs_options = run.FeatureSpace();
  const std::vector<FeatureSpec> specs =
      GenerateFeatureSpecs(*run.registry, fs_options);
  out.feature_space_size = specs.size();
  out.ground_truth_size = run.ground_truth.size();

  FeatureBuilder builder(run.archive.get());
  EXSTREAM_ASSIGN_OR_RETURN(Dataset train,
                            DatasetForAnnotation(builder, specs, run.annotation));
  EXSTREAM_ASSIGN_OR_RETURN(Dataset test,
                            DatasetForAnnotation(builder, specs, run.test_annotation));

  // --- XStream (no Step-3 clustering) and XStream-cluster (full) -----------
  for (const bool clustering : {false, true}) {
    ExplainOptions options = run.DefaultExplainOptions();
    options.enable_clustering = clustering;
    ExplanationEngine engine = run.MakeExplanationEngine(options);
    EXSTREAM_ASSIGN_OR_RETURN(ExplanationReport report, engine.Explain(run.annotation));
    const double f1 = ExplanationPredictionF1(report.explanation, test);
    MethodResult result = ScoreMethod(
        clustering ? kMethodXStreamCluster : kMethodXStream,
        report.SelectedFeatureNames(), f1, run.ground_truth);
    if (clustering) {
      result.consistency = ClusterAwareConsistency(report, run.ground_truth);
    } else {
      EXSTREAM_ASSIGN_OR_RETURN(out.ground_truth_clusters,
                                GroundTruthClusters(run, report.ranked));
    }
    out.results.push_back(std::move(result));
  }

  // --- Logistic regression --------------------------------------------------
  {
    EXSTREAM_ASSIGN_OR_RETURN(const LogisticRegression model,
                              LogisticRegression::Fit(train));
    const double f1 = EvaluatePredictions(test.labels, model.Predict(test)).F1();
    out.results.push_back(
        ScoreMethod(kMethodLogReg, model.SelectedFeatures(), f1, run.ground_truth));
  }

  // --- Decision tree ---------------------------------------------------------
  {
    EXSTREAM_ASSIGN_OR_RETURN(const DecisionTree model, DecisionTree::Fit(train));
    const double f1 = EvaluatePredictions(test.labels, model.Predict(test)).F1();
    out.results.push_back(
        ScoreMethod(kMethodDTree, model.SelectedFeatures(), f1, run.ground_truth));
  }

  // --- Majority voting -------------------------------------------------------
  {
    EXSTREAM_ASSIGN_OR_RETURN(const MajorityVote model, MajorityVote::Fit(train));
    const double f1 = EvaluatePredictions(test.labels, model.Predict(test)).F1();
    out.results.push_back(
        ScoreMethod(kMethodVote, model.SelectedFeatures(), f1, run.ground_truth));
  }

  // --- Data fusion -----------------------------------------------------------
  {
    EXSTREAM_ASSIGN_OR_RETURN(const DataFusion model, DataFusion::Fit(train));
    const double f1 = EvaluatePredictions(test.labels, model.Predict(test)).F1();
    out.results.push_back(
        ScoreMethod(kMethodFusion, model.SelectedFeatures(), f1, run.ground_truth));
  }

  return out;
}

const MethodResult& FindMethod(const MethodComparison& cmp, const std::string& name) {
  for (const MethodResult& r : cmp.results) {
    if (r.method == name) return r;
  }
  assert(false && "unknown method name");
  static const MethodResult kEmpty;
  return kEmpty;
}

}  // namespace exstream
