#include "xstream/tenant_hub.h"

#include <algorithm>
#include <chrono>

#include "cep/interner.h"

namespace exstream {

TenantHub::TenantHub(ClockMillisFn clock) : clock_(std::move(clock)) {}

TenantHub::~TenantHub() = default;

int64_t TenantHub::NowMs() const {
  if (clock_) return clock_();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status TenantHub::AddTenant(const std::string& name, XStreamSystem* system,
                            TenantQuota quota) {
  if (name.empty()) return Status::InvalidArgument("tenant name is empty");
  if (system == nullptr) {
    return Status::InvalidArgument("tenant '" + name + "' has no system");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.emplace(name, nullptr);
  if (!inserted) {
    return Status::InvalidArgument("tenant '" + name + "' already registered");
  }
  auto tenant = std::make_unique<Tenant>();
  tenant->system = system;
  tenant->quota = quota;
  tenant->tokens = static_cast<double>(quota.burst_bytes);
  tenant->last_refill_ms = NowMs();
  it->second = std::move(tenant);
  return Status::OK();
}

TenantHub::Tenant* TenantHub::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it != tenants_.end() ? it->second.get() : nullptr;
}

bool TenantHub::HasTenant(const std::string& name) const {
  return Find(name) != nullptr;
}

XStreamSystem* TenantHub::system(const std::string& name) const {
  Tenant* t = Find(name);
  return t != nullptr ? t->system : nullptr;
}

std::vector<std::string> TenantHub::tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

Status TenantHub::SetQuota(const std::string& name, TenantQuota quota) {
  Tenant* t = Find(name);
  if (t == nullptr) return Status::NotFound("unknown tenant '" + name + "'");
  std::lock_guard<std::mutex> lock(t->state_mu);
  t->quota = quota;
  t->tokens = static_cast<double>(quota.burst_bytes);
  t->last_refill_ms = NowMs();
  return Status::OK();
}

bool TenantHub::TryChargeQuota(const std::string& name, uint64_t bytes) {
  Tenant* t = Find(name);
  if (t == nullptr) return false;
  std::lock_guard<std::mutex> lock(t->state_mu);
  if (t->quota.bytes_per_sec == 0) return true;
  const int64_t now = NowMs();
  if (now > t->last_refill_ms) {
    const double refill = static_cast<double>(now - t->last_refill_ms) *
                          static_cast<double>(t->quota.bytes_per_sec) / 1000.0;
    t->tokens = std::min(static_cast<double>(t->quota.burst_bytes),
                         t->tokens + refill);
  }
  t->last_refill_ms = now;
  // A frame larger than the whole bucket is admitted when the bucket is
  // full — otherwise it could never pass and the child would shed forever.
  const double need = std::min(static_cast<double>(bytes),
                               static_cast<double>(t->quota.burst_bytes));
  if (t->tokens < need) return false;
  t->tokens = std::max(0.0, t->tokens - static_cast<double>(bytes));
  return true;
}

bool TenantHub::TryEnterQueue(const std::string& name, uint64_t bytes) {
  Tenant* t = Find(name);
  if (t == nullptr) return false;
  std::lock_guard<std::mutex> lock(t->state_mu);
  if (t->quota.queue_share_bytes > 0 && t->stats.queued_bytes > 0 &&
      t->stats.queued_bytes + bytes > t->quota.queue_share_bytes) {
    return false;
  }
  t->stats.queued_bytes += bytes;
  return true;
}

void TenantHub::LeaveQueue(const std::string& name, uint64_t bytes) {
  Tenant* t = Find(name);
  if (t == nullptr) return;
  std::lock_guard<std::mutex> lock(t->state_mu);
  t->stats.queued_bytes -= std::min(t->stats.queued_bytes, bytes);
}

std::unique_lock<std::mutex> TenantHub::LockApply(const std::string& name) {
  Tenant* t = Find(name);
  if (t == nullptr) return std::unique_lock<std::mutex>();
  return std::unique_lock<std::mutex>(t->apply_mu);
}

void TenantHub::NoteQuotaShed(const std::string& name, uint64_t events,
                              bool queue_share) {
  Tenant* t = Find(name);
  if (t == nullptr) return;
  std::lock_guard<std::mutex> lock(t->state_mu);
  if (queue_share) {
    ++t->stats.queue_shed_frames;
    t->stats.queue_shed_events += events;
  } else {
    ++t->stats.quota_shed_frames;
    t->stats.quota_shed_events += events;
  }
}

TenantHub::TenantStats TenantHub::tenant_stats(const std::string& name) const {
  Tenant* t = Find(name);
  if (t == nullptr) return TenantStats{};
  std::lock_guard<std::mutex> lock(t->state_mu);
  return t->stats;
}

Result<ExplanationReport> TenantHub::Explain(const std::string& name,
                                             const AnomalyAnnotation& annotation,
                                             QueryId monitor_query,
                                             const std::string& column) {
  Tenant* t = Find(name);
  if (t == nullptr) return Status::NotFound("unknown tenant '" + name + "'");
  return t->system->Explain(annotation, monitor_query, column);
}

Result<XStreamSystem::FaultStats> TenantHub::fault_stats(
    const std::string& name) const {
  Tenant* t = Find(name);
  if (t == nullptr) return Status::NotFound("unknown tenant '" + name + "'");
  return t->system->fault_stats();
}

Result<std::vector<std::string>> TenantHub::QualifiedPartitions(
    const std::string& name, QueryId query) const {
  Tenant* t = Find(name);
  if (t == nullptr) return Status::NotFound("unknown tenant '" + name + "'");
  if (query >= t->system->engine().num_queries()) {
    return Status::InvalidArgument("tenant '" + name + "' has no such query");
  }
  std::vector<std::string> out;
  for (const std::string& key :
       t->system->engine().match_table(query).Partitions()) {
    out.push_back(QualifyTenantKey(name, key));
  }
  return out;
}

std::string TenantHub::SanitizeTenantForPath(std::string_view tenant) {
  std::string out;
  out.reserve(tenant.size());
  for (const char c : tenant) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    out += safe ? c : '_';
  }
  if (out.empty()) out = "_";
  // "." / ".." would escape the parent directory even with safe bytes.
  if (out == "." || out == "..") out = "_" + out;
  return out;
}

}  // namespace exstream
