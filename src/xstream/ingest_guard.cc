#include "xstream/ingest_guard.h"

#include <algorithm>
#include <cmath>

#include "archive/serialization.h"
#include "common/logging.h"
#include "common/strings.h"
#include "event/codec.h"
#include "io/file_util.h"
#include "io/quarantine_dir.h"

namespace exstream {

namespace {

constexpr Timestamp kTsMin = std::numeric_limits<Timestamp>::min();
constexpr Timestamp kTsMax = std::numeric_limits<Timestamp>::max();

bool TimestampOrder(const Event& a, const Event& b) { return a.ts < b.ts; }

}  // namespace

std::string RejectReport::ToString() const {
  if (total() == 0) return "no rejects";
  std::string out = StrFormat("%zu rejected (", total());
  const char* sep = "";
  auto add = [&](size_t n, const char* label) {
    if (n == 0) return;
    out += StrFormat("%s%zu %s", sep, n, label);
    sep = ", ";
  };
  add(unknown_type, "unknown type");
  add(arity_mismatch, "arity mismatch");
  add(value_kind_mismatch, "value kind mismatch");
  add(non_finite, "non-finite value");
  add(invalid_timestamp, "invalid timestamp");
  add(late, "late");
  out += ")";
  return out;
}

IngestGuard::IngestGuard(const EventTypeRegistry* registry,
                         IngestGuardOptions options)
    : registry_(registry), options_(std::move(options)) {}

IngestGuard::~IngestGuard() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushRejectLogLocked();
}

bool IngestGuard::Validate(const Event& event, RejectReason* why) const {
  if (event.ts == kTsMin || event.ts == kTsMax) {
    *why = RejectReason::kInvalidTimestamp;
    return false;
  }
  if (event.type >= registry_->size()) {
    *why = RejectReason::kUnknownType;
    return false;
  }
  const EventSchema& schema = registry_->schema(event.type);
  if (event.values.size() != schema.num_attributes()) {
    *why = RejectReason::kArityMismatch;
    return false;
  }
  const auto& attrs = schema.attributes();
  for (size_t i = 0; i < attrs.size(); ++i) {
    const Value& v = event.values[i];
    const bool want_string = attrs[i].type == ValueType::kString;
    if (v.is_string() != want_string) {
      *why = RejectReason::kValueKindMismatch;
      return false;
    }
    if (v.type() == ValueType::kDouble && !std::isfinite(v.AsDouble())) {
      *why = RejectReason::kNonFiniteValue;
      return false;
    }
  }
  return true;
}

void IngestGuard::Reject(const Event& event, RejectReason why) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (why) {
    case RejectReason::kUnknownType:
      ++report_.unknown_type;
      break;
    case RejectReason::kArityMismatch:
      ++report_.arity_mismatch;
      break;
    case RejectReason::kValueKindMismatch:
      ++report_.value_kind_mismatch;
      break;
    case RejectReason::kNonFiniteValue:
      ++report_.non_finite;
      break;
    case RejectReason::kInvalidTimestamp:
      ++report_.invalid_timestamp;
      break;
    case RejectReason::kLate:
      ++report_.late;
      break;
  }
  if (!options_.reject_dir.has_value()) return;
  reject_buffer_.push_back(event);
  if (reject_buffer_.size() >= options_.reject_file_events) {
    FlushRejectLogLocked();
  }
}

void IngestGuard::FlushRejectLogLocked() {
  if (reject_buffer_.empty() || !options_.reject_dir.has_value()) return;
  const std::string& dir = *options_.reject_dir;
  Status st = EnsureDir(dir);
  if (st.ok()) {
    const std::string path =
        StrFormat("%s/rejects-%06zu.quarantine", dir.c_str(), reject_file_seq_);
    st = WriteEventsFile(path, reject_buffer_);
  }
  if (st.ok()) {
    ++reject_file_seq_;
    ++report_.reject_files_written;
    auto evicted = EnforceQuarantineCap(dir, options_.max_reject_files);
    if (evicted.ok()) {
      report_.reject_file_evictions += *evicted;
    } else {
      EXSTREAM_LOG(Warn) << "quarantine cap enforcement failed: "
                         << evicted.status().ToString();
    }
  } else {
    EXSTREAM_LOG(Warn) << "failed to write reject quarantine log: "
                       << st.ToString();
  }
  // Dropped either way: the quarantine log is best-effort, the counters are
  // the durable signal.
  reject_buffer_.clear();
}

EventBatch IngestGuard::Admit(EventBatch batch) {
  if (!options_.validate && !options_.lateness_slack.has_value()) {
    return batch;  // passthrough: nothing to check, nothing to reorder
  }
  EventBatch kept;
  kept.reserve(batch.size());
  RejectReason why;
  for (Event& e : batch) {
    if (options_.validate && !Validate(e, &why)) {
      Reject(e, why);
      continue;
    }
    kept.push_back(std::move(e));
  }
  if (!options_.lateness_slack.has_value()) return kept;

  const Timestamp slack = *options_.lateness_slack;
  for (Event& e : kept) {
    if (e.ts < last_released_) {
      Reject(e, RejectReason::kLate);
      continue;
    }
    if (e.ts > watermark_) watermark_ = e.ts;
    buffer_.push_back(std::move(e));
  }
  // Release the prefix that can no longer be reordered past: everything at
  // least `slack` behind the newest timestamp seen. Saturate the threshold so
  // a huge slack near the timestamp floor cannot wrap.
  std::stable_sort(buffer_.begin(), buffer_.end(), TimestampOrder);
  size_t release = 0;
  if (watermark_ >= kTsMin + slack) {
    const Timestamp threshold = watermark_ - slack;
    while (release < buffer_.size() && buffer_[release].ts <= threshold) {
      ++release;
    }
  }
  EventBatch out(std::make_move_iterator(buffer_.begin()),
                 std::make_move_iterator(buffer_.begin() + release));
  buffer_.erase(buffer_.begin(), buffer_.begin() + release);
  if (!out.empty()) last_released_ = out.back().ts;
  return out;
}

bool IngestGuard::AdmitOne(const Event& event) {
  RejectReason why;
  if (options_.validate && !Validate(event, &why)) {
    Reject(event, why);
    return false;
  }
  return true;
}

EventBatch IngestGuard::Drain() {
  std::stable_sort(buffer_.begin(), buffer_.end(), TimestampOrder);
  EventBatch out = std::move(buffer_);
  buffer_.clear();
  if (!out.empty()) last_released_ = out.back().ts;
  std::lock_guard<std::mutex> lock(mu_);
  FlushRejectLogLocked();
  return out;
}

RejectReport IngestGuard::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

void IngestGuard::SaveState(BytesWriter* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->Put<int64_t>(watermark_);
  out->Put<int64_t>(last_released_);
  out->Put<uint32_t>(static_cast<uint32_t>(buffer_.size()));
  for (const Event& e : buffer_) PutEvent(out, e);
  out->Put<uint64_t>(report_.unknown_type);
  out->Put<uint64_t>(report_.arity_mismatch);
  out->Put<uint64_t>(report_.value_kind_mismatch);
  out->Put<uint64_t>(report_.non_finite);
  out->Put<uint64_t>(report_.invalid_timestamp);
  out->Put<uint64_t>(report_.late);
  out->Put<uint64_t>(reject_file_seq_);
}

Status IngestGuard::RestoreState(BytesReader* in) {
  std::lock_guard<std::mutex> lock(mu_);
  EXSTREAM_ASSIGN_OR_RETURN(watermark_, in->Get<int64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(last_released_, in->Get<int64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_buffered, in->Get<uint32_t>());
  buffer_.clear();
  buffer_.reserve(n_buffered);
  for (uint32_t i = 0; i < n_buffered; ++i) {
    EXSTREAM_ASSIGN_OR_RETURN(Event e, GetEvent(in));
    buffer_.push_back(std::move(e));
  }
  auto get_count = [&](size_t* field) -> Status {
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t v, in->Get<uint64_t>());
    *field = static_cast<size_t>(v);
    return Status::OK();
  };
  EXSTREAM_RETURN_NOT_OK(get_count(&report_.unknown_type));
  EXSTREAM_RETURN_NOT_OK(get_count(&report_.arity_mismatch));
  EXSTREAM_RETURN_NOT_OK(get_count(&report_.value_kind_mismatch));
  EXSTREAM_RETURN_NOT_OK(get_count(&report_.non_finite));
  EXSTREAM_RETURN_NOT_OK(get_count(&report_.invalid_timestamp));
  EXSTREAM_RETURN_NOT_OK(get_count(&report_.late));
  EXSTREAM_RETURN_NOT_OK(get_count(&reject_file_seq_));
  return Status::OK();
}

}  // namespace exstream
