#include "sim/chaos.h"

#include <limits>

namespace exstream {

void MalformingSink::MaybeMalform(Event* event) {
  if (options_.malformed_fraction <= 0.0 ||
      !rng_.Chance(options_.malformed_fraction)) {
    return;
  }
  // Cycle the corruption kinds so every run exercises all of them at any
  // fraction, rather than sampling kinds at random.
  const MalformKind kind = static_cast<MalformKind>(next_kind_ % 4);
  next_kind_ = static_cast<uint8_t>((next_kind_ + 1) % 4);
  switch (kind) {
    case MalformKind::kUnknownType:
      event->type = options_.num_known_types + 17;
      break;
    case MalformKind::kDropAttribute:
      if (!event->values.empty()) {
        event->values.pop_back();
      } else {
        event->type = options_.num_known_types + 17;  // nothing to drop
      }
      break;
    case MalformKind::kNaNValue: {
      bool poisoned = false;
      for (Value& v : event->values) {
        if (v.type() == ValueType::kDouble) {
          v = Value(std::numeric_limits<double>::quiet_NaN());
          poisoned = true;
          break;
        }
      }
      if (!poisoned) event->ts = std::numeric_limits<Timestamp>::max();
      break;
    }
    case MalformKind::kStaleTimestamp:
      event->ts = std::numeric_limits<Timestamp>::max();
      break;
  }
  ++malformed_emitted_;
}

void MalformingSink::OnEvent(const Event& event) {
  Event copy = event;
  MaybeMalform(&copy);
  inner_->OnEvent(copy);
}

void MalformingSink::OnEventBatch(EventBatch batch) {
  for (Event& e : batch) MaybeMalform(&e);
  inner_->OnEventBatch(std::move(batch));
}

void CrashingSink::OnEvent(const Event& event) {
  if (remaining_ == 0) {
    ++events_lost_;
    return;
  }
  --remaining_;
  inner_->OnEvent(event);
}

void CrashingSink::OnEventBatch(EventBatch batch) {
  if (remaining_ == 0) {
    events_lost_ += batch.size();
    return;
  }
  if (batch.size() <= remaining_) {
    remaining_ -= batch.size();
    inner_->OnEventBatch(std::move(batch));
    return;
  }
  // The crash lands mid-batch: deliver the prefix, lose the rest.
  EventBatch prefix(std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.begin() + remaining_));
  events_lost_ += batch.size() - remaining_;
  remaining_ = 0;
  inner_->OnEventBatch(std::move(prefix));
}

}  // namespace exstream
