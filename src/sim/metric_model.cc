#include "sim/metric_model.h"

#include <algorithm>

namespace exstream {

double MetricModel::Step(double target_shift) {
  const double target = config_.baseline + target_shift;
  value_ += config_.reversion * (target - value_) +
            rng_->Gaussian(0.0, config_.noise);
  value_ = std::clamp(value_, config_.min_value, config_.max_value);
  return value_;
}

}  // namespace exstream
