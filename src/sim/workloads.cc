#include "sim/workloads.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "event/stream.h"

namespace exstream {

namespace {

constexpr char kHadoopQueryName[] = "Q1";
constexpr char kHadoopQueryText[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) "
    "WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";
constexpr char kHadoopColumn[] = "sum_dataSize";

constexpr char kScQueryName[] = "Qsc";
constexpr char kScQueryText[] =
    "PATTERN SEQ(ProductStart a, ProductProgress+ b[], ProductEnd c) "
    "WHERE [productId] "
    "RETURN (b[i].timestamp, a.productId, avg(b[1..i].quality))";
constexpr char kScColumn[] = "avg_quality";

// Fills the partition table from the monitoring query's match table.
void IndexPartitions(const CepEngine& engine, QueryId query,
                     const std::string& query_name,
                     const std::map<std::string, std::string>& dimensions,
                     PartitionTable* table) {
  const MatchTable& matches = engine.match_table(query);
  for (const std::string& partition : matches.Partitions()) {
    const std::vector<MatchRow> rows = matches.Rows(partition);
    if (rows.empty()) continue;
    PartitionRecord rec;
    rec.query_name = query_name;
    rec.partition = partition;
    rec.dimensions = dimensions;
    rec.start_ts = rows.front().ts;
    rec.end_ts = rows.back().ts;
    rec.num_points = rows.size();
    table->Upsert(std::move(rec));
  }
}

Result<std::unique_ptr<WorkloadRun>> BuildHadoopRun(const WorkloadDef& def,
                                                    const WorkloadRunOptions& options) {
  auto run = std::make_unique<WorkloadRun>();
  run->def = def;
  run->registry = std::make_unique<EventTypeRegistry>();
  EXSTREAM_RETURN_NOT_OK(HadoopClusterSim::RegisterEventTypes(run->registry.get()));
  run->archive = std::make_unique<EventArchive>(run->registry.get());
  run->engine = std::make_unique<CepEngine>(run->registry.get());
  EXSTREAM_ASSIGN_OR_RETURN(
      run->monitor_query,
      run->engine->AddQueryText(kHadoopQueryText, kHadoopQueryName));
  run->monitor_query_name = kHadoopQueryName;
  run->monitor_column = kHadoopColumn;

  HadoopSimConfig sim_config;
  sim_config.num_nodes = options.num_nodes;
  sim_config.seed = options.seed + static_cast<uint64_t>(def.id) * 1000003;
  HadoopClusterSim sim(sim_config, run->registry.get());

  auto make_job = [&](const std::string& id, Timestamp start) {
    HadoopJobConfig job;
    job.job_id = id;
    job.program = def.program;
    job.dataset = def.dataset;
    job.start_time = start;
    return job;
  };

  Timestamp t = 0;
  for (int i = 0; i < options.num_normal_jobs; ++i) {
    sim.AddJob(make_job(StrFormat("job-%03d", i), t));
    t += options.job_spacing;
  }
  const Timestamp train_start = t;
  sim.AddJob(make_job("job-anomaly", train_start));
  t += options.job_spacing;
  const Timestamp test_start = t;
  sim.AddJob(make_job("job-anomaly-test", test_start));

  // The interfering program runs during the early-to-middle phase of each
  // anomalous job (paper Sec. 6.1).
  for (const Timestamp start : {train_start, test_start}) {
    AnomalySpec anomaly;
    anomaly.type = def.hadoop_anomaly;
    anomaly.start = start + 60;
    anomaly.end = start + 360;
    anomaly.severity = 1.0;
    sim.AddAnomaly(anomaly);
  }

  FanOutSink fanout;
  fanout.Attach(run->archive.get());
  fanout.Attach(run->engine.get());
  EXSTREAM_ASSIGN_OR_RETURN(const auto completions, sim.Run(&fanout));

  run->partitions = std::make_unique<PartitionTable>();
  IndexPartitions(*run->engine, run->monitor_query, run->monitor_query_name,
                  {{"program", def.program}, {"dataset", def.dataset}},
                  run->partitions.get());

  auto job_end = [&](const std::string& id) -> Timestamp {
    for (const auto& [job, end] : completions) {
      if (job == id) return end;
    }
    return 0;
  };

  auto annotate = [&](const std::string& job, Timestamp start) {
    AnomalyAnnotation a;
    a.abnormal = {kHadoopQueryName, {start + 60, start + 360}, job};
    a.reference = {kHadoopQueryName, {start + 420, job_end(job)}, job};
    return a;
  };
  run->annotation = annotate("job-anomaly", train_start);
  run->test_annotation = annotate("job-anomaly-test", test_start);
  run->ground_truth = AnomalyGroundTruthSignals(def.hadoop_anomaly);
  return run;
}

Result<std::unique_ptr<WorkloadRun>> BuildSupplyChainRun(
    const WorkloadDef& def, const WorkloadRunOptions& options) {
  auto run = std::make_unique<WorkloadRun>();
  run->def = def;
  run->registry = std::make_unique<EventTypeRegistry>();

  SupplyChainConfig config;
  config.num_sensors = options.sc_num_sensors;
  config.num_machines = options.sc_num_machines;
  config.num_products = options.sc_num_products;
  config.seed = options.seed + static_cast<uint64_t>(def.id) * 7919;
  EXSTREAM_RETURN_NOT_OK(
      SupplyChainSim::RegisterEventTypes(run->registry.get(), config));

  run->archive = std::make_unique<EventArchive>(run->registry.get());
  run->engine = std::make_unique<CepEngine>(run->registry.get());
  EXSTREAM_ASSIGN_OR_RETURN(run->monitor_query,
                            run->engine->AddQueryText(kScQueryText, kScQueryName));
  run->monitor_query_name = kScQueryName;
  run->monitor_column = kScColumn;

  SupplyChainSim sim(config, run->registry.get());
  const int train_product = 2;
  const int test_product = 4;
  for (const int product : {train_product, test_product}) {
    ScAnomalySpec spec;
    spec.type = def.sc_anomaly;
    spec.product_index = product;
    spec.targets = def.sc_targets;
    sim.AddAnomaly(spec);
  }

  FanOutSink fanout;
  fanout.Attach(run->archive.get());
  fanout.Attach(run->engine.get());
  EXSTREAM_ASSIGN_OR_RETURN(const std::vector<ProductWindow> products,
                            sim.Run(&fanout));

  run->partitions = std::make_unique<PartitionTable>();
  IndexPartitions(*run->engine, run->monitor_query, run->monitor_query_name,
                  {{"line", "assembly-1"}}, run->partitions.get());

  auto annotate = [&](int abnormal_product, int reference_product) {
    const ProductWindow& a = products[static_cast<size_t>(abnormal_product)];
    const ProductWindow& r = products[static_cast<size_t>(reference_product)];
    AnomalyAnnotation out;
    out.abnormal = {kScQueryName, {a.start, a.end}, a.product_id};
    out.reference = {kScQueryName, {r.start, r.end}, r.product_id};
    return out;
  };
  run->annotation = annotate(train_product, 1);
  run->test_annotation = annotate(test_product, 3);

  ScAnomalySpec truth_spec;
  truth_spec.type = def.sc_anomaly;
  truth_spec.targets = def.sc_targets;
  run->ground_truth = ScGroundTruthSignals(truth_spec);
  return run;
}

}  // namespace

std::vector<WorkloadDef> HadoopWorkloads() {
  std::vector<WorkloadDef> out;
  auto add = [&](int id, AnomalyType anomaly, const char* program,
                 const char* dataset) {
    WorkloadDef def;
    def.id = id;
    def.hadoop_anomaly = anomaly;
    def.program = program;
    def.dataset = dataset;
    def.name = StrFormat("W%d %s %s", id,
                         std::string(AnomalyTypeToString(anomaly)).c_str(), program);
    out.push_back(std::move(def));
  };
  // Fig. 13: the 8 (anomaly, Hadoop workload) combinations.
  add(1, AnomalyType::kHighMemory, "WC-frequent-users", "worldcup");
  add(2, AnomalyType::kHighMemory, "WC-sessions", "worldcup");
  add(3, AnomalyType::kBusyDisk, "WC-frequent-users", "worldcup");
  add(4, AnomalyType::kHighCpu, "WC-frequent-users", "worldcup");
  add(5, AnomalyType::kHighCpu, "WC-sessions", "worldcup");
  add(6, AnomalyType::kHighCpu, "Twitter-trigram", "twitter");
  add(7, AnomalyType::kBusyNetwork, "WC-sessions", "worldcup");
  add(8, AnomalyType::kBusyNetwork, "Twitter-trigram", "twitter");
  return out;
}

std::vector<WorkloadDef> SupplyChainWorkloads() {
  std::vector<WorkloadDef> out;
  auto add = [&](int id, ScAnomalyType anomaly, std::vector<int> targets) {
    WorkloadDef def;
    def.id = id;
    def.is_supply_chain = true;
    def.sc_anomaly = anomaly;
    def.sc_targets = std::move(targets);
    def.name = StrFormat("SC%d %s (%zu targets)", id,
                         std::string(ScAnomalyTypeToString(anomaly)).c_str(),
                         def.sc_targets.size());
    out.push_back(std::move(def));
  };
  // Appendix D.3: "the first three use cases are about missing monitoring,
  // and the last three use cases are about sub-par materials."
  add(1, ScAnomalyType::kMissingMonitoring, {0, 1});
  add(2, ScAnomalyType::kMissingMonitoring, {2});
  add(3, ScAnomalyType::kMissingMonitoring, {3, 4, 5});
  add(4, ScAnomalyType::kSubParMaterial, {0});
  add(5, ScAnomalyType::kSubParMaterial, {1, 2});
  add(6, ScAnomalyType::kSubParMaterial, {3});
  return out;
}

Result<std::unique_ptr<WorkloadRun>> BuildWorkloadRun(const WorkloadDef& def,
                                                      WorkloadRunOptions options) {
  if (def.is_supply_chain) return BuildSupplyChainRun(def, options);
  return BuildHadoopRun(def, options);
}

SeriesProvider WorkloadRun::MakeSeriesProvider() const {
  const CepEngine* engine_ptr = engine.get();
  const QueryId query = monitor_query;
  const std::string query_name = monitor_query_name;
  const std::string column = monitor_column;
  return [engine_ptr, query, query_name, column](
             const std::string& q, const std::string& partition) -> Result<TimeSeries> {
    if (q != query_name) {
      return Status::NotFound("no monitored series for query '" + q + "'");
    }
    return engine_ptr->match_table(query).ExtractSeries(partition, column);
  };
}

FeatureSpaceOptions WorkloadRun::FeatureSpace() const {
  FeatureSpaceOptions opts;
  if (def.is_supply_chain) {
    opts.windows = {30, 60};
    // The monitored query's own input stream should not explain itself.
    opts.exclude_event_types = {"ProductProgress", "ProductStart", "ProductEnd"};
  } else {
    opts.windows = {10, 30};
  }
  return opts;
}

ExplainOptions WorkloadRun::DefaultExplainOptions() const {
  ExplainOptions opts;
  opts.feature_space = FeatureSpace();
  return opts;
}

ExplanationEngine WorkloadRun::MakeExplanationEngine(ExplainOptions options) const {
  return ExplanationEngine(archive.get(), partitions.get(), MakeSeriesProvider(),
                           std::move(options));
}

}  // namespace exstream
