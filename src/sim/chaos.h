// Chaos adapters for the simulators: a malformed-event producer and a
// mid-stream crash, both deterministic, both usable in front of any sink.
//
// The ingest-guard and WAL-recovery tests drive either simulator through
// these adapters instead of teaching each simulator about corruption: the
// simulator stays a clean event source, and the adapter models the hostile
// producer (MalformingSink) or the process that dies mid-stream
// (CrashingSink).

#pragma once

#include <cstdint>

#include "common/rng.h"
#include "event/stream.h"

namespace exstream {

/// \brief Corruption kinds MalformingSink cycles through, in order.
enum class MalformKind : uint8_t {
  kUnknownType,     ///< type id past the registry
  kDropAttribute,   ///< one value short of the schema arity
  kNaNValue,        ///< a NaN double in the first numeric slot
  kStaleTimestamp,  ///< the INT64_MAX sentinel timestamp
};

struct MalformingSinkOptions {
  /// Fraction of events corrupted (Bernoulli per event, seeded).
  double malformed_fraction = 0.0;
  uint64_t seed = 1;
  /// Type ids at or past this count as unknown (pass the registry size).
  uint32_t num_known_types = 0;
};

/// \brief Corrupts a deterministic fraction of the stream before forwarding —
/// the "buggy producer" the ingest guard must survive. Corrupted events stay
/// in the stream (the guard is expected to reject them); the clean remainder
/// is forwarded untouched.
class MalformingSink : public EventSink {
 public:
  MalformingSink(EventSink* inner, MalformingSinkOptions options)
      : inner_(inner), options_(options), rng_(options.seed) {}

  void OnEvent(const Event& event) override;
  void OnEventBatch(EventBatch batch) override;
  void OnStreamEnd() override { inner_->OnStreamEnd(); }

  /// Events corrupted so far.
  size_t malformed_emitted() const { return malformed_emitted_; }

 private:
  void MaybeMalform(Event* event);

  EventSink* inner_;  // not owned
  MalformingSinkOptions options_;
  Rng rng_;
  size_t malformed_emitted_ = 0;
  uint8_t next_kind_ = 0;
};

/// \brief Forwards exactly `events_before_crash` events, then goes silent —
/// the crash point for recovery tests. A crashed process never flushes, so
/// OnStreamEnd is also swallowed after the crash.
class CrashingSink : public EventSink {
 public:
  CrashingSink(EventSink* inner, size_t events_before_crash)
      : inner_(inner), remaining_(events_before_crash) {}

  void OnEvent(const Event& event) override;
  void OnEventBatch(EventBatch batch) override;
  void OnStreamEnd() override {
    if (!crashed()) inner_->OnStreamEnd();
  }

  bool crashed() const { return remaining_ == 0; }
  /// Events that were dropped on the floor after the crash point.
  size_t events_lost() const { return events_lost_; }

 private:
  EventSink* inner_;  // not owned
  size_t remaining_;
  size_t events_lost_ = 0;
};

}  // namespace exstream
