#include "sim/hadoop_sim.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"
#include "sim/metric_model.h"

namespace exstream {

std::string_view AnomalyTypeToString(AnomalyType type) {
  switch (type) {
    case AnomalyType::kNone:
      return "none";
    case AnomalyType::kHighMemory:
      return "high-memory";
    case AnomalyType::kHighCpu:
      return "high-cpu";
    case AnomalyType::kBusyDisk:
      return "busy-disk";
    case AnomalyType::kBusyNetwork:
      return "busy-network";
  }
  return "?";
}

std::vector<std::string> AnomalyGroundTruthSignals(AnomalyType type) {
  switch (type) {
    case AnomalyType::kHighMemory:
      return {"MemUsage.memFree", "MemUsage.swapFree"};
    case AnomalyType::kHighCpu:
      // A CPU hog shows up as high usage, low idle, and high load; an expert
      // would accept any of the three as the explanation.
      return {"CpuUsage.cpuUsage", "CpuUsage.cpuIdle", "CpuUsage.load"};
    case AnomalyType::kBusyDisk:
      return {"DiskUsage.diskIOPercent", "DiskUsage.bytesWritten"};
    case AnomalyType::kBusyNetwork:
      return {"NetUsage.bytesIn", "NetUsage.bytesOut"};
    case AnomalyType::kNone:
      return {};
  }
  return {};
}

namespace {

const ValueType kI = ValueType::kInt64;
const ValueType kD = ValueType::kDouble;
const ValueType kS = ValueType::kString;

EventSchema JobEventSchema(const std::string& name) {
  return EventSchema(name, {{"eventType", kS},
                            {"eventId", kI},
                            {"jobId", kS},
                            {"clusterNodeNumber", kI}});
}

EventSchema TaskEventSchema(const std::string& name) {
  return EventSchema(name, {{"eventType", kS},
                            {"eventId", kI},
                            {"jobId", kS},
                            {"taskId", kI},
                            {"clusterNodeNumber", kI}});
}

}  // namespace

Status HadoopClusterSim::RegisterEventTypes(EventTypeRegistry* registry) {
  if (registry->Contains("JobStart")) return Status::OK();  // idempotent

  auto reg = [&](EventSchema schema) -> Status {
    EXSTREAM_RETURN_NOT_OK(registry->Register(std::move(schema)).status());
    return Status::OK();
  };

  EXSTREAM_RETURN_NOT_OK(reg(JobEventSchema("JobStart")));
  EXSTREAM_RETURN_NOT_OK(reg(JobEventSchema("JobEnd")));
  EXSTREAM_RETURN_NOT_OK(reg(EventSchema("DataIO", {{"eventType", kS},
                                                    {"eventId", kI},
                                                    {"jobId", kS},
                                                    {"taskId", kI},
                                                    {"attemptId", kI},
                                                    {"clusterNodeNumber", kI},
                                                    {"dataSize", kD}})));
  EXSTREAM_RETURN_NOT_OK(reg(TaskEventSchema("MapStart")));
  EXSTREAM_RETURN_NOT_OK(reg(TaskEventSchema("MapFinish")));
  EXSTREAM_RETURN_NOT_OK(reg(TaskEventSchema("PullStart")));
  EXSTREAM_RETURN_NOT_OK(reg(TaskEventSchema("PullFinish")));
  // `uptime` is a deliberate false-positive source: it separates any earlier
  // interval from any later one perfectly within a partition, but the
  // separation does not replicate across related partitions — exactly the
  // Sec. 5.2 motivating example for validation.
  EXSTREAM_RETURN_NOT_OK(reg(EventSchema("CpuUsage", {{"clusterNodeNumber", kI},
                                                      {"cpuUsage", kD},
                                                      {"cpuIdle", kD},
                                                      {"load", kD},
                                                      {"uptime", kD}})));
  EXSTREAM_RETURN_NOT_OK(reg(EventSchema("MemUsage", {{"clusterNodeNumber", kI},
                                                      {"memFree", kD},
                                                      {"memCached", kD},
                                                      {"memBuffers", kD},
                                                      {"swapFree", kD},
                                                      {"swapTotal", kD},
                                                      {"memTotal", kD},
                                                      {"procTotal", kD}})));
  EXSTREAM_RETURN_NOT_OK(reg(EventSchema("DiskUsage", {{"clusterNodeNumber", kI},
                                                       {"diskIOPercent", kD},
                                                       {"diskFree", kD},
                                                       {"bytesWritten", kD}})));
  EXSTREAM_RETURN_NOT_OK(reg(EventSchema("NetUsage", {{"clusterNodeNumber", kI},
                                                      {"bytesIn", kD},
                                                      {"bytesOut", kD},
                                                      {"pktsIn", kD},
                                                      {"pktsOut", kD}})));
  return Status::OK();
}

HadoopClusterSim::HadoopClusterSim(HadoopSimConfig config,
                                   const EventTypeRegistry* registry)
    : config_(config), registry_(registry) {}

double HadoopClusterSim::SlowdownAt(Timestamp t) const {
  double factor = 1.0;
  for (const AnomalySpec& a : anomalies_) {
    if (a.type == AnomalyType::kNone) continue;
    if (t >= a.start && t <= a.end) factor += 2.0 * a.severity;
  }
  return factor;
}

double HadoopClusterSim::AnomalyShift(AnomalyType relevant, int node, Timestamp t,
                                      double magnitude) const {
  double shift = 0.0;
  for (const AnomalySpec& a : anomalies_) {
    if (a.type != relevant) continue;
    if (t < a.start || t > a.end) continue;
    if (!a.nodes.empty() &&
        std::find(a.nodes.begin(), a.nodes.end(), node) == a.nodes.end()) {
      continue;
    }
    shift += magnitude * a.severity;
  }
  return shift;
}

Result<std::vector<std::pair<std::string, Timestamp>>> HadoopClusterSim::Run(
    EventSink* sink) {
  Rng rng(config_.seed);
  std::vector<Event> events;
  int64_t next_event_id = 1;

  auto type_id = [&](const char* name) -> EventTypeId {
    return registry_->IdOf(name).ValueOrDie();
  };
  const EventTypeId t_job_start = type_id("JobStart");
  const EventTypeId t_job_end = type_id("JobEnd");
  const EventTypeId t_data_io = type_id("DataIO");
  const EventTypeId t_map_start = type_id("MapStart");
  const EventTypeId t_map_finish = type_id("MapFinish");
  const EventTypeId t_pull_start = type_id("PullStart");
  const EventTypeId t_pull_finish = type_id("PullFinish");
  const EventTypeId t_cpu = type_id("CpuUsage");
  const EventTypeId t_mem = type_id("MemUsage");
  const EventTypeId t_disk = type_id("DiskUsage");
  const EventTypeId t_net = type_id("NetUsage");

  // ---- Job execution (1-second ticks) -------------------------------------
  struct JobState {
    const HadoopJobConfig* cfg;
    double map_rate_mb_s;
    double reduce_rate_mb_s;
    double map_done = 0.0;
    double reduce_done = 0.0;
    double map_pending = 0.0;     ///< produced but not yet emitted as DataIO
    double reduce_pending = 0.0;  ///< consumed but not yet emitted as DataIO
    int maps_started = 0;
    int maps_finished = 0;
    int pulls_finished = 0;
    Timestamp pull_started_at = -1;
    bool started = false;
    bool ended = false;
    Timestamp end_ts = 0;
  };
  std::vector<JobState> states;
  states.reserve(jobs_.size());
  for (const HadoopJobConfig& job : jobs_) {
    JobState st;
    st.cfg = &job;
    st.map_rate_mb_s =
        job.total_map_output_mb / static_cast<double>(job.map_phase_duration);
    // Reducers drain the queue a little slower than mappers fill it, giving
    // the Fig. 1(a) shape: early peak, slow decline, drop to zero at the end.
    const double reduce_span = static_cast<double>(job.map_phase_duration -
                                                   job.reducer_start_delay) +
                               80.0;
    st.reduce_rate_mb_s = job.total_map_output_mb / reduce_span;
    states.push_back(st);
  }

  std::vector<std::pair<std::string, Timestamp>> completions;
  Timestamp horizon = config_.duration;

  Rng job_rng = rng.Fork();
  for (JobState& st : states) {
    const HadoopJobConfig& cfg = *st.cfg;
    const double map_quota =
        cfg.total_map_output_mb / static_cast<double>(cfg.num_mappers);
    const double pull_quota =
        cfg.total_map_output_mb / static_cast<double>(cfg.num_reducers * 4);
    const Timestamp hard_stop = cfg.start_time + 20 * cfg.map_phase_duration;

    auto job_event = [&](EventTypeId type, Timestamp ts, const char* etype,
                         int node) {
      events.emplace_back(type, ts,
                          MakeValues(etype, next_event_id++, cfg.job_id,
                                     static_cast<int64_t>(node)));
    };
    auto task_event = [&](EventTypeId type, Timestamp ts, const char* etype,
                          int64_t task, int node) {
      events.emplace_back(type, ts,
                          MakeValues(etype, next_event_id++, cfg.job_id, task,
                                     static_cast<int64_t>(node)));
    };

    job_event(t_job_start, cfg.start_time, "JobStart", 0);
    st.started = true;

    for (Timestamp t = cfg.start_time;; ++t) {
      if (t > hard_stop) {  // safety net against runaway configs
        st.end_ts = t;
        break;
      }
      const double slow = SlowdownAt(t);

      // Map progress. Intermediate data is emitted as fixed-size DataIO
      // chunks, so the *event rate* tracks actual progress: a slowed job
      // produces DataIO events less frequently — the signal that the paper's
      // interval labeling keys on (Fig. 11(b)'s "3.7 vs 50.1" frequencies).
      constexpr double kChunkMb = 2.0;
      if (st.map_done < cfg.total_map_output_mb) {
        const double produced = std::min(st.map_rate_mb_s / slow,
                                         cfg.total_map_output_mb - st.map_done);
        st.map_done += produced;
        st.map_pending += produced;
        const bool final_map_tick = st.map_done >= cfg.total_map_output_mb - 1e-9;
        while (st.map_pending >= kChunkMb || (final_map_tick && st.map_pending > 1e-9)) {
          const double chunk = std::min(kChunkMb, st.map_pending);
          st.map_pending -= chunk;
          const int node = static_cast<int>(job_rng.UniformInt(0, config_.num_nodes - 1));
          events.emplace_back(
              t_data_io, t,
              MakeValues("DataIO", next_event_id++, cfg.job_id,
                         static_cast<int64_t>(st.maps_started),
                         static_cast<int64_t>(1), static_cast<int64_t>(node),
                         chunk));
        }
        // Mapper lifecycle events at quota crossings.
        while (st.maps_started < cfg.num_mappers &&
               st.map_done > map_quota * static_cast<double>(st.maps_started) + 1e-9) {
          task_event(t_map_start, t, "MapStart", st.maps_started,
                     st.maps_started % config_.num_nodes);
          ++st.maps_started;
        }
        while (st.maps_finished < cfg.num_mappers &&
               st.map_done >=
                   map_quota * static_cast<double>(st.maps_finished + 1) - 1e-9) {
          task_event(t_map_finish, t, "MapFinish", st.maps_finished,
                     st.maps_finished % config_.num_nodes);
          ++st.maps_finished;
        }
      }

      // Reduce progress (starts after the configured delay).
      if (t >= cfg.start_time + cfg.reducer_start_delay &&
          st.reduce_done < st.map_done) {
        const double consumed =
            std::min(st.reduce_rate_mb_s / slow, st.map_done - st.reduce_done);
        st.reduce_done += consumed;
        st.reduce_pending += consumed;
        if (consumed > 0) {
          const bool final_reduce_tick =
              st.reduce_done >= cfg.total_map_output_mb - 1e-9;
          while (st.reduce_pending >= kChunkMb ||
                 (final_reduce_tick && st.reduce_pending > 1e-9)) {
            const double chunk = std::min(kChunkMb, st.reduce_pending);
            st.reduce_pending -= chunk;
            const int node =
                static_cast<int>(job_rng.UniformInt(0, config_.num_nodes - 1));
            events.emplace_back(
                t_data_io, t,
                MakeValues("DataIO", next_event_id++, cfg.job_id,
                           static_cast<int64_t>(st.pulls_finished),
                           static_cast<int64_t>(1), static_cast<int64_t>(node),
                           -chunk));
          }
          if (st.pull_started_at < 0) {
            st.pull_started_at = t;
            task_event(t_pull_start, t, "PullStart", st.pulls_finished,
                       st.pulls_finished % config_.num_nodes);
          }
          while (st.reduce_done >
                 pull_quota * static_cast<double>(st.pulls_finished + 1) - 1e-9) {
            task_event(t_pull_finish, t, "PullFinish", st.pulls_finished,
                       st.pulls_finished % config_.num_nodes);
            ++st.pulls_finished;
            st.pull_started_at = -1;
          }
        }
      }

      // Completion: all data produced and consumed.
      if (st.map_done >= cfg.total_map_output_mb - 1e-9 &&
          st.reduce_done >= cfg.total_map_output_mb - 1e-9) {
        st.end_ts = t + 1;
        break;
      }
    }
    job_event(t_job_end, st.end_ts, "JobEnd", 0);
    st.ended = true;
    completions.emplace_back(cfg.job_id, st.end_ts);
    horizon = std::max(horizon, st.end_ts + 2 * config_.metric_period);
  }

  // ---- Node metrics --------------------------------------------------------
  struct NodeModels {
    MetricModel cpu_usage, cpu_idle, load;
    MetricModel mem_free, mem_cached, mem_buffers, swap_free, proc_total;
    MetricModel disk_io, disk_free, bytes_written;
    MetricModel bytes_in, bytes_out, pkts_in, pkts_out;
  };
  std::vector<Rng> node_rngs;
  std::vector<NodeModels> nodes;
  node_rngs.reserve(static_cast<size_t>(config_.num_nodes));
  for (int n = 0; n < config_.num_nodes; ++n) node_rngs.push_back(rng.Fork());
  for (int n = 0; n < config_.num_nodes; ++n) {
    Rng* r = &node_rngs[static_cast<size_t>(n)];
    auto m = [&](double base, double noise, double lo, double hi) {
      return MetricModel({base, noise, 0.3, lo, hi}, r);
    };
    nodes.push_back(NodeModels{
        m(25, 4, 0, 100), m(70, 4, 0, 100), m(2, 0.4, 0, 64),
        m(9000, 250, 0, 16000), m(3000, 120, 0, 16000), m(800, 40, 0, 16000),
        m(3800, 40, 0, 4000), m(180, 6, 0, 4000),
        m(12, 3, 0, 100), m(200000, 800, 0, 1e9), m(20, 4, 0, 1e6),
        m(30, 6, 0, 1e6), m(30, 6, 0, 1e6), m(2500, 300, 0, 1e8),
        m(2400, 300, 0, 1e8)});
  }

  const double kSwapTotal = 4000.0;
  const double kMemTotal = 16000.0;
  // Metrics are *reported* at one-decimal precision, like the Ganglia gmond
  // feed the paper consumed — a collector never ships full 52-bit mantissas.
  // The AR model state stays full-precision; only the emitted sample is
  // rounded, which also lets the v4 spill codec store these columns as
  // scaled-integer deltas instead of raw XOR residue.
  const auto report = [](double v) { return std::round(v * 10.0) / 10.0; };
  for (Timestamp t = 0; t <= horizon; t += config_.metric_period) {
    for (int n = 0; n < config_.num_nodes; ++n) {
      NodeModels& nm = nodes[static_cast<size_t>(n)];
      const auto node64 = static_cast<int64_t>(n);
      const double mem_shift = AnomalyShift(AnomalyType::kHighMemory, n, t, 1.0);
      const double cpu_shift = AnomalyShift(AnomalyType::kHighCpu, n, t, 1.0);
      const double disk_shift = AnomalyShift(AnomalyType::kBusyDisk, n, t, 1.0);
      const double net_shift = AnomalyShift(AnomalyType::kBusyNetwork, n, t, 1.0);

      events.emplace_back(
          t_cpu, t,
          MakeValues(node64, report(nm.cpu_usage.Step(55 * cpu_shift)),
                     report(nm.cpu_idle.Step(-55 * cpu_shift)),
                     report(nm.load.Step(6 * cpu_shift)),
                     static_cast<double>(t)));
      events.emplace_back(
          t_mem, t,
          MakeValues(node64, report(nm.mem_free.Step(-7500 * mem_shift)),
                     report(nm.mem_cached.Step(-1500 * mem_shift)),
                     report(nm.mem_buffers.Step(-500 * mem_shift)),
                     report(nm.swap_free.Step(-3400 * mem_shift)), kSwapTotal,
                     kMemTotal, report(nm.proc_total.Step(60 * mem_shift))));
      events.emplace_back(
          t_disk, t,
          MakeValues(node64, report(nm.disk_io.Step(70 * disk_shift)),
                     report(nm.disk_free.Step(-5000 * disk_shift)),
                     report(nm.bytes_written.Step(120 * disk_shift))));
      events.emplace_back(
          t_net, t,
          MakeValues(node64, report(nm.bytes_in.Step(200 * net_shift)),
                     report(nm.bytes_out.Step(200 * net_shift)),
                     report(nm.pkts_in.Step(15000 * net_shift)),
                     report(nm.pkts_out.Step(15000 * net_shift))));
    }
  }

  VectorEventSource source(std::move(events));
  source.SortByTime();
  // Batched move replay: the source is discarded afterwards, so the events
  // transfer into the sink (and through it into the archive) without copies.
  source.ReplayMove(sink);
  return completions;
}

}  // namespace exstream
