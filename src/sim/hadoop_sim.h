// Hadoop cluster simulator: the substitute for the paper's 30-node production
// cluster (see DESIGN.md, substitution table).
//
// Emits the event types of Fig. 2 (JobStart, JobEnd, DataIO) plus shuffle
// events (MapStart/MapFinish/PullStart/PullFinish) and Ganglia-style node
// metrics (CpuUsage, MemUsage, DiskUsage, NetUsage). Supports the four
// anomaly injectors of Sec. 6.1: high memory, high CPU, busy disk, busy
// network — each shifts the relevant node metrics AND slows the interfered
// job, reproducing the Fig. 1(b) "slow queuing growth" signature.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "event/registry.h"
#include "event/stream.h"

namespace exstream {

/// \brief The four injected anomaly types of Fig. 13.
enum class AnomalyType : uint8_t {
  kNone = 0,
  kHighMemory,
  kHighCpu,
  kBusyDisk,
  kBusyNetwork,
};

std::string_view AnomalyTypeToString(AnomalyType type);

/// \brief Ground-truth signals (EventType.attribute prefixes) an expert would
/// name for each anomaly type — the consistency reference of Fig. 14.
std::vector<std::string> AnomalyGroundTruthSignals(AnomalyType type);

/// \brief One interfering program run (Sec. 6.1: "running additional programs
/// to interfere with resource consumption").
struct AnomalySpec {
  AnomalyType type = AnomalyType::kNone;
  Timestamp start = 0;
  Timestamp end = 0;
  double severity = 1.0;          ///< scales both the metric shift and slowdown
  std::vector<int> nodes;         ///< affected nodes; empty = all nodes
};

/// \brief Configuration of one simulated MapReduce job.
struct HadoopJobConfig {
  std::string job_id;
  std::string program;   ///< e.g. "WC-frequent-users" (partition dimension)
  std::string dataset;   ///< e.g. "worldcup" (partition dimension)
  Timestamp start_time = 0;
  int num_mappers = 20;
  int num_reducers = 8;
  double total_map_output_mb = 400.0;  ///< total intermediate data volume
  Timestamp map_phase_duration = 400;  ///< nominal seconds of map work
  Timestamp reducer_start_delay = 120; ///< reducers start after this delay
};

/// \brief Cluster-level configuration.
struct HadoopSimConfig {
  int num_nodes = 8;
  Timestamp metric_period = 5;  ///< node-metric sampling period (seconds)
  Timestamp duration = 0;       ///< 0 = run until all jobs finish
  uint64_t seed = 42;
};

/// \brief Generates the full event stream of a simulated cluster run.
class HadoopClusterSim {
 public:
  /// Registers the simulator's event types (idempotent per registry).
  static Status RegisterEventTypes(EventTypeRegistry* registry);

  HadoopClusterSim(HadoopSimConfig config, const EventTypeRegistry* registry);

  void AddJob(HadoopJobConfig job) { jobs_.push_back(std::move(job)); }
  void AddAnomaly(AnomalySpec anomaly) { anomalies_.push_back(std::move(anomaly)); }

  /// \brief Runs the simulation, pushing all events to `sink` in time order.
  ///
  /// Returns the per-job completion times (jobId -> JobEnd timestamp).
  Result<std::vector<std::pair<std::string, Timestamp>>> Run(EventSink* sink);

 private:
  /// Combined slowdown factor (>= 1) a job on all nodes experiences at `t`.
  double SlowdownAt(Timestamp t) const;

  /// Anomaly-induced shift of a node metric at time t (0 when unaffected).
  double AnomalyShift(AnomalyType relevant, int node, Timestamp t,
                      double magnitude) const;

  HadoopSimConfig config_;
  const EventTypeRegistry* registry_;  // not owned
  std::vector<HadoopJobConfig> jobs_;
  std::vector<AnomalySpec> anomalies_;
};

}  // namespace exstream
