#include "sim/supply_chain_sim.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "sim/metric_model.h"

namespace exstream {

std::string_view ScAnomalyTypeToString(ScAnomalyType type) {
  switch (type) {
    case ScAnomalyType::kMissingMonitoring:
      return "missing-monitoring";
    case ScAnomalyType::kSubParMaterial:
      return "sub-par-material";
  }
  return "?";
}

namespace {

std::string SensorTypeName(int k) { return StrFormat("Sensor%02d", k); }
std::string MachineTypeName(int k) { return StrFormat("Material%02d", k); }

}  // namespace

std::vector<std::string> ScGroundTruthSignals(const ScAnomalySpec& spec) {
  std::vector<std::string> out;
  for (int k : spec.targets) {
    if (spec.type == ScAnomalyType::kMissingMonitoring) {
      out.push_back(SensorTypeName(k) + ".value");
    } else {
      out.push_back(MachineTypeName(k) + ".quality");
    }
  }
  return out;
}

Status SupplyChainSim::RegisterEventTypes(EventTypeRegistry* registry,
                                          const SupplyChainConfig& config) {
  if (registry->Contains("ProductStart")) return Status::OK();  // idempotent
  const ValueType kD = ValueType::kDouble;
  const ValueType kS = ValueType::kString;

  EXSTREAM_RETURN_NOT_OK(
      registry->Register(EventSchema("ProductStart", {{"productId", kS}})).status());
  EXSTREAM_RETURN_NOT_OK(
      registry->Register(EventSchema("ProductEnd", {{"productId", kS}})).status());
  EXSTREAM_RETURN_NOT_OK(
      registry
          ->Register(EventSchema("ProductProgress",
                                 {{"productId", kS}, {"quality", kD}}))
          .status());
  for (int k = 0; k < config.num_sensors; ++k) {
    EXSTREAM_RETURN_NOT_OK(
        registry->Register(EventSchema(SensorTypeName(k), {{"value", kD}})).status());
  }
  for (int k = 0; k < config.num_machines; ++k) {
    EXSTREAM_RETURN_NOT_OK(
        registry
            ->Register(EventSchema(MachineTypeName(k),
                                   {{"productId", kS}, {"quality", kD}}))
            .status());
  }
  return Status::OK();
}

SupplyChainSim::SupplyChainSim(SupplyChainConfig config,
                               const EventTypeRegistry* registry)
    : config_(config), registry_(registry) {}

Result<std::vector<ProductWindow>> SupplyChainSim::Run(EventSink* sink) {
  Rng rng(config_.seed);
  std::vector<Event> events;

  // Product windows laid out back to back.
  std::vector<ProductWindow> products;
  Timestamp t = 0;
  for (int p = 0; p < config_.num_products; ++p) {
    ProductWindow w;
    w.product_id = StrFormat("product-%03d", p);
    w.start = t;
    w.end = t + config_.product_duration;
    products.push_back(w);
    t = w.end + config_.product_gap;
  }
  const Timestamp horizon = t;

  auto anomaly_for = [&](int product_index,
                         ScAnomalyType type) -> const ScAnomalySpec* {
    for (const ScAnomalySpec& a : anomalies_) {
      if (a.product_index == product_index && a.type == type) return &a;
    }
    return nullptr;
  };
  auto product_at = [&](Timestamp ts) -> int {
    for (size_t p = 0; p < products.size(); ++p) {
      if (ts >= products[p].start && ts <= products[p].end) return static_cast<int>(p);
    }
    return -1;
  };

  // ---- Sensors: fixed-rate monitoring -------------------------------------
  for (int k = 0; k < config_.num_sensors; ++k) {
    Rng srng = rng.Fork();
    const EventTypeId type = registry_->IdOf(SensorTypeName(k)).ValueOrDie();
    // Each sensor has its own operating point (e.g. temperature, humidity).
    MetricModel model({20.0 + static_cast<double>(k % 10) * 3.0, 0.5, 0.3, -1e9, 1e9},
                      &srng);
    for (Timestamp ts = 0; ts <= horizon; ts += config_.sensor_period) {
      const int p = product_at(ts);
      if (p >= 0) {
        const ScAnomalySpec* a = anomaly_for(p, ScAnomalyType::kMissingMonitoring);
        if (a != nullptr &&
            std::find(a->targets.begin(), a->targets.end(), k) != a->targets.end()) {
          model.Step();  // the world evolves; the sensor just fails to report
          continue;
        }
      }
      events.emplace_back(type, ts, MakeValues(model.Step()));
    }
  }

  // ---- Machines: variable-rate material records ---------------------------
  const EventTypeId t_progress = registry_->IdOf("ProductProgress").ValueOrDie();
  const EventTypeId t_start = registry_->IdOf("ProductStart").ValueOrDie();
  const EventTypeId t_end = registry_->IdOf("ProductEnd").ValueOrDie();

  for (size_t p = 0; p < products.size(); ++p) {
    const ProductWindow& w = products[p];
    events.emplace_back(t_start, w.start, MakeValues(w.product_id));
    events.emplace_back(t_end, w.end, MakeValues(w.product_id));

    const ScAnomalySpec* subpar =
        anomaly_for(static_cast<int>(p), ScAnomalyType::kSubParMaterial);

    for (int k = 0; k < config_.num_machines; ++k) {
      Rng mrng = rng.Fork();
      const EventTypeId type = registry_->IdOf(MachineTypeName(k)).ValueOrDie();
      const bool is_subpar =
          subpar != nullptr && std::find(subpar->targets.begin(), subpar->targets.end(),
                                         k) != subpar->targets.end();
      double ts = static_cast<double>(w.start) +
                  mrng.Exponential(1.0 / config_.material_mean_interval);
      while (ts < static_cast<double>(w.end)) {
        const double mean =
            is_subpar ? config_.subpar_quality_mean : config_.quality_mean;
        const double quality = mrng.Gaussian(mean, config_.quality_noise);
        const Timestamp its = static_cast<Timestamp>(std::llround(ts));
        events.emplace_back(type, its, MakeValues(w.product_id, quality));
        events.emplace_back(t_progress, its, MakeValues(w.product_id, quality));
        ts += mrng.Exponential(1.0 / config_.material_mean_interval);
      }
    }
  }

  VectorEventSource source(std::move(events));
  source.SortByTime();
  // Batched move replay: events transfer into the sink without copies.
  source.ReplayMove(sink);
  return products;
}

}  // namespace exstream
