// Mean-reverting stochastic metric model for simulated node metrics.
//
// Real Ganglia metrics (free memory, idle CPU, network bytes) hover around an
// operating point with autocorrelated noise and shift when something happens
// on the node. An Ornstein-Uhlenbeck-style discrete process captures exactly
// that: x_{t+1} = x_t + theta*(mu - x_t) + sigma*N(0,1), clamped to a range,
// with the target mu movable by anomaly injectors.

#pragma once

#include "common/rng.h"

namespace exstream {

/// \brief Configuration of one simulated metric.
struct MetricModelConfig {
  double baseline = 0.0;      ///< normal operating point (mu)
  double noise = 1.0;         ///< per-step noise sigma
  double reversion = 0.25;    ///< mean-reversion strength theta in (0,1]
  double min_value = 0.0;     ///< hard clamp
  double max_value = 1e18;    ///< hard clamp
};

/// \brief One mean-reverting metric instance.
class MetricModel {
 public:
  MetricModel(MetricModelConfig config, Rng* rng)
      : config_(config), rng_(rng), value_(config.baseline) {}

  /// Advances one step toward the current target and returns the new value.
  ///
  /// \param target_shift additive displacement of the operating point, used
  ///        by anomaly injectors (e.g. -0.8 * memTotal while a memory hog
  ///        runs); 0 during normal operation.
  double Step(double target_shift = 0.0);

  double value() const { return value_; }
  const MetricModelConfig& config() const { return config_; }

 private:
  MetricModelConfig config_;
  Rng* rng_;  // not owned
  double value_;
};

}  // namespace exstream
