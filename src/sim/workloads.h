// Workload harnesses: one-call construction of a full monitoring + archive +
// annotation scenario for each evaluation workload (Fig. 13 and Appendix D).
//
// A WorkloadRun owns the registry, archive, CEP engine, and partition table
// produced by simulating a workload, plus the train/test anomaly annotations
// and the expert ground-truth feature signals. Benches, tests, and examples
// all consume this one structure.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "cep/engine.h"
#include "explain/annotation.h"
#include "explain/engine.h"
#include "explain/partition_table.h"
#include "features/feature_space.h"
#include "sim/hadoop_sim.h"
#include "sim/supply_chain_sim.h"

namespace exstream {

/// \brief One row of Fig. 13 (Hadoop) or the Appendix-D table (supply chain).
struct WorkloadDef {
  int id = 0;
  std::string name;
  // Hadoop workloads
  AnomalyType hadoop_anomaly = AnomalyType::kNone;
  std::string program;
  std::string dataset;
  // Supply-chain workloads
  bool is_supply_chain = false;
  ScAnomalyType sc_anomaly = ScAnomalyType::kMissingMonitoring;
  std::vector<int> sc_targets;
};

/// \brief The 8 Hadoop workloads of Fig. 13.
std::vector<WorkloadDef> HadoopWorkloads();

/// \brief The 6 supply-chain workloads of Appendix D.3.
std::vector<WorkloadDef> SupplyChainWorkloads();

/// \brief Scale knobs for workload construction.
struct WorkloadRunOptions {
  uint64_t seed = 42;
  int num_nodes = 6;           ///< Hadoop cluster size
  int num_normal_jobs = 4;     ///< related partitions for Step-2 validation
  Timestamp job_spacing = 750; ///< seconds between job submissions
  int sc_num_sensors = 12;     ///< supply-chain scale
  int sc_num_machines = 12;
  int sc_num_products = 6;
};

/// \brief A fully constructed monitoring scenario.
struct WorkloadRun {
  WorkloadDef def;
  std::unique_ptr<EventTypeRegistry> registry;
  std::unique_ptr<EventArchive> archive;
  std::unique_ptr<CepEngine> engine;
  std::unique_ptr<PartitionTable> partitions;

  QueryId monitor_query = 0;
  std::string monitor_query_name;
  std::string monitor_column;  ///< visualized derived attribute

  AnomalyAnnotation annotation;       ///< the training annotation
  AnomalyAnnotation test_annotation;  ///< held-out anomaly for prediction power
  std::vector<std::string> ground_truth;  ///< expert signals ("Type.attr")

  /// Monitored-series accessor backed by the engine's match table.
  SeriesProvider MakeSeriesProvider() const;

  /// Feature-space options appropriate for this scenario.
  FeatureSpaceOptions FeatureSpace() const;

  /// Constructs an ExplanationEngine over this run's archive/partitions.
  ExplanationEngine MakeExplanationEngine(ExplainOptions options) const;

  /// Default pipeline options for this scenario (feature space pre-filled).
  ExplainOptions DefaultExplainOptions() const;
};

/// \brief Builds, simulates, and indexes one workload.
Result<std::unique_ptr<WorkloadRun>> BuildWorkloadRun(const WorkloadDef& def,
                                                      WorkloadRunOptions options = {});

}  // namespace exstream
