// Supply-chain manufacturing simulator (paper Appendix D, Table 1).
//
// Two event categories:
//  * Monitoring: per-sensor fixed-rate environmental measurements
//    (Sensor<k> events with a `value` attribute).
//  * Materials:  per-machine variable-rate material quality records
//    (Material<k> events with `productId` and `quality`), plus a generic
//    ProductProgress stream consumed by the monitoring CEP query.
//
// Anomalies (Appendix D.2):
//  * Missing monitoring — selected sensors stop reporting during a product's
//    manufacturing window (their count/frequency features drop to zero).
//  * Sub-par material — selected machines emit quality below the valid bar.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "event/registry.h"
#include "event/stream.h"

namespace exstream {

/// \brief Supply-chain anomaly categories (the two use cases of Appendix D).
enum class ScAnomalyType : uint8_t {
  kMissingMonitoring = 0,
  kSubParMaterial,
};

std::string_view ScAnomalyTypeToString(ScAnomalyType type);

/// \brief An injected manufacturing defect.
struct ScAnomalySpec {
  ScAnomalyType type = ScAnomalyType::kMissingMonitoring;
  int product_index = 0;      ///< which product is affected
  std::vector<int> targets;   ///< sensor indices or machine indices
};

/// \brief Simulator configuration (Table 1 scaled down; counts configurable).
struct SupplyChainConfig {
  int num_sensors = 16;
  int num_machines = 16;
  int num_products = 6;
  Timestamp product_duration = 600;  ///< manufacturing window per product
  Timestamp product_gap = 60;        ///< idle time between products
  Timestamp sensor_period = 10;      ///< fixed monitoring rate
  double material_mean_interval = 20.0;  ///< variable (exponential) rate
  double quality_mean = 80.0;
  double quality_noise = 3.0;
  double quality_bar = 70.0;         ///< values >= bar satisfy the standard
  double subpar_quality_mean = 55.0;
  uint64_t seed = 17;
};

/// \brief A simulated product's manufacturing window.
struct ProductWindow {
  std::string product_id;
  Timestamp start = 0;
  Timestamp end = 0;
};

/// \brief Ground-truth signals for one supply-chain anomaly.
std::vector<std::string> ScGroundTruthSignals(const ScAnomalySpec& spec);

/// \brief Generates the event stream of a manufacturing run.
class SupplyChainSim {
 public:
  /// Registers ProductStart/ProductEnd/ProductProgress plus the per-sensor
  /// and per-machine event types implied by `config`.
  static Status RegisterEventTypes(EventTypeRegistry* registry,
                                   const SupplyChainConfig& config);

  SupplyChainSim(SupplyChainConfig config, const EventTypeRegistry* registry);

  void AddAnomaly(ScAnomalySpec spec) { anomalies_.push_back(std::move(spec)); }

  /// Runs the simulation; returns the product windows in order.
  Result<std::vector<ProductWindow>> Run(EventSink* sink);

 private:
  SupplyChainConfig config_;
  const EventTypeRegistry* registry_;  // not owned
  std::vector<ScAnomalySpec> anomalies_;
};

}  // namespace exstream
