#include "viz/ascii_chart.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace exstream {

namespace {

// Plot grid (height rows x width cols) for the resampled series; returns the
// row index (0 = top) for each column, or -1 for no point.
std::vector<int> ColumnRows(const TimeSeries& resampled, size_t height) {
  std::vector<int> rows(resampled.size(), -1);
  if (resampled.empty()) return rows;
  double lo = resampled.value(0);
  double hi = lo;
  for (double v : resampled.values()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  for (size_t c = 0; c < resampled.size(); ++c) {
    const double frac = span > 0 ? (resampled.value(c) - lo) / span : 0.5;
    const int row = static_cast<int>(std::lround(
        (1.0 - frac) * static_cast<double>(height - 1)));
    rows[c] = std::clamp(row, 0, static_cast<int>(height) - 1);
  }
  return rows;
}

}  // namespace

std::string RenderSeries(const TimeSeries& series, const ChartOptions& options) {
  return RenderAnnotatedSeries(series, {}, options);
}

std::string RenderAnnotatedSeries(const TimeSeries& series,
                                  const std::vector<TimeInterval>& annotations,
                                  const ChartOptions& options, char highlight_mark) {
  const size_t width = std::max<size_t>(options.width, 8);
  const size_t height = std::max<size_t>(options.height, 3);
  const TimeSeries resampled = series.Resample(width);
  const std::vector<int> rows = ColumnRows(resampled, height);

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (size_t c = 0; c < rows.size(); ++c) {
    if (rows[c] >= 0) grid[static_cast<size_t>(rows[c])][c] = options.mark;
  }
  // Annotation highlights along the bottom row.
  std::string baseline(width, ' ');
  for (size_t c = 0; c < resampled.size(); ++c) {
    const Timestamp t = resampled.time(c);
    for (const TimeInterval& iv : annotations) {
      if (iv.Contains(t)) baseline[c] = highlight_mark;
    }
  }

  double lo = 0;
  double hi = 0;
  if (!resampled.empty()) {
    lo = *std::min_element(resampled.values().begin(), resampled.values().end());
    hi = *std::max_element(resampled.values().begin(), resampled.values().end());
  }

  std::string out;
  if (options.show_axes) {
    out += StrFormat("%10.4g +", hi);
    out += grid[0] + "\n";
    for (size_t r = 1; r < height; ++r) {
      out += std::string(10, ' ') + (r + 1 == height ? "+" : "|") + grid[r] + "\n";
    }
    out += StrFormat("%10.4g  ", lo);
    out += baseline + "\n";
    if (!resampled.empty()) {
      out += std::string(11, ' ') +
             StrFormat("t: [%lld .. %lld]\n",
                       static_cast<long long>(resampled.start_time()),
                       static_cast<long long>(resampled.end_time()));
    }
  } else {
    for (const std::string& row : grid) out += row + "\n";
    if (!annotations.empty()) out += baseline + "\n";
  }
  return out;
}

std::string RenderSparkline(const TimeSeries& series, size_t width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (series.empty() || width == 0) return "";
  const TimeSeries resampled = series.Resample(width);
  double lo = *std::min_element(resampled.values().begin(), resampled.values().end());
  double hi = *std::max_element(resampled.values().begin(), resampled.values().end());
  const double span = hi - lo;
  std::string out;
  for (double v : resampled.values()) {
    const double frac = span > 0 ? (v - lo) / span : 0.5;
    const int level = std::clamp(static_cast<int>(frac * 7.999), 0, 7);
    out += kLevels[level];
  }
  return out;
}

}  // namespace exstream
