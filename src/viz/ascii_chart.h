// Text rendering of monitored series — the visualization module of the
// architecture (Fig. 18) for terminal dashboards, examples, and benches.

#pragma once

#include <string>

#include "event/event.h"
#include "ts/time_series.h"

namespace exstream {

/// \brief Rendering options for RenderSeries.
struct ChartOptions {
  size_t width = 72;      ///< character columns of the plot area
  size_t height = 12;     ///< character rows of the plot area
  char mark = '*';        ///< data-point glyph
  bool show_axes = true;  ///< draw the frame and min/max labels
};

/// \brief Renders a time series as an ASCII chart (time on X, value on Y).
///
/// The series is resampled to the chart width; an empty series renders an
/// empty frame. Returns a multi-line string ending in '\n'.
std::string RenderSeries(const TimeSeries& series, const ChartOptions& options = {});

/// \brief Renders a series with one or more highlighted time intervals (the
/// annotation rectangles of Fig. 4): columns inside an interval use
/// `highlight_mark` on the baseline row.
std::string RenderAnnotatedSeries(const TimeSeries& series,
                                  const std::vector<TimeInterval>& annotations,
                                  const ChartOptions& options = {},
                                  char highlight_mark = '#');

/// \brief One-line sparkline using block glyphs (8 levels), `width` columns.
std::string RenderSparkline(const TimeSeries& series, size_t width = 60);

}  // namespace exstream
